#!/usr/bin/env python3
"""Quickstart: deploy a word-count topology on Typhoon and watch it run.

Builds the Fig. 2 pipeline (sentence source -> split -> count), submits it
to a three-host Typhoon cluster, lets it process for 30 virtual seconds,
then prints per-worker throughput and the current top words.

Run with::

    python examples/quickstart.py
"""

from repro import Engine, TopologyBuilder, TopologyConfig, TyphoonCluster
from repro.workloads import CountBolt, SentenceSpout, SplitBolt, Vocabulary


def main() -> None:
    engine = Engine()
    typhoon = TyphoonCluster(engine, num_hosts=3, seed=42)

    # -- declare the application with the framework API -------------------
    vocabulary = Vocabulary(size=200, skew=1.1)  # mildly skewed words
    builder = TopologyBuilder(
        "quickstart-wordcount",
        TopologyConfig(batch_size=100, max_spout_rate=5000),
    )
    builder.set_spout("sentences", lambda: SentenceSpout(vocabulary, 4), 1)
    builder.set_bolt("split", SplitBolt, 2).shuffle_grouping("sentences")
    builder.set_bolt("count", CountBolt, 4,
                     stateful=True).fields_grouping("split", [0])
    topology = builder.build()

    # -- deploy and run -----------------------------------------------------
    physical = typhoon.submit(topology)
    print("deployed %d workers across hosts: %s"
          % (len(physical.assignments), ", ".join(physical.hosts())))
    engine.run(until=30.0)

    # -- inspect ---------------------------------------------------------------
    print("\nper-worker throughput (tuples/s, t=10..30):")
    for component in ("sentences", "split", "count"):
        for executor in typhoon.executors_for("quickstart-wordcount",
                                              component):
            rate = executor.processed_meter.rate(10, 30)
            if component == "sentences":
                rate = executor.emitted_meter.rate(10, 30)
            print("  %-10s worker %-3d on %-7s  %10.0f"
                  % (component, executor.worker_id,
                     executor.assignment.hostname, rate))

    merged = {}
    for executor in typhoon.executors_for("quickstart-wordcount", "count"):
        for word, count in executor.component.counts.items():
            merged[word] = merged.get(word, 0) + count
    top = sorted(merged.items(), key=lambda kv: -kv[1])[:5]
    print("\ntop words:")
    for word, count in top:
        print("  %-10s %d" % (word, count))

    switches = typhoon.fabric.switches()
    print("\nSDN data plane: %d switches, %d flow rules, %d packets forwarded"
          % (len(switches), sum(len(s.flows) for s in switches),
             sum(s.packets_forwarded for s in switches)))


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""The Yahoo advertisement-analytics pipeline (Fig. 13) end to end.

Stands up the full substrate stack — Kafka-like broker for ingestion,
Redis-like store for the join table and windowed results — deploys the
six-stage pipeline on Typhoon, and then performs the paper's Fig. 14
experiment: hot-swapping the filter from view-only to view+click while
the pipeline keeps running, roughly doubling the windowed counts.

Run with::

    python examples/yahoo_analytics.py
"""

from repro import Engine, TopologyConfig, TyphoonCluster
from repro.ext import KafkaBroker, RedisStore
from repro.sim.rng import SeedFactory
from repro.workloads import (
    AdEventGenerator,
    EVENTS_TOPIC,
    make_filter_factory,
    produce_events,
    yahoo_topology,
)


def store_rate(typhoon, t0, t1) -> float:
    record = typhoon.manager.topologies["yahoo-ads"]
    worker_id = record.physical.worker_ids_for("store")[0]
    meter = typhoon.metrics.meter("yahoo-ads.store.%d.processed" % worker_id)
    return meter.rate(t0, t1)


def main() -> None:
    engine = Engine()
    typhoon = TyphoonCluster(engine, num_hosts=3, seed=3)

    # -- substrate: Kafka ingestion + Redis state --------------------------
    broker = KafkaBroker(engine, num_partitions=4)
    broker.create_topic(EVENTS_TOPIC)
    redis = RedisStore()
    generator = AdEventGenerator(SeedFactory(3).rng("ads"),
                                 num_campaigns=50, ads_per_campaign=10)
    generator.seed_redis(redis)  # ad -> campaign join table
    typhoon.services["kafka"] = broker
    typhoon.services["redis"] = redis
    produce_events(engine, broker, EVENTS_TOPIC, generator, rate=4000)

    # -- the Fig. 13 pipeline ----------------------------------------------
    topology = yahoo_topology("yahoo-ads", TopologyConfig(batch_size=50),
                              allowed_events=("view",))
    typhoon.submit(topology)
    engine.run(until=60.0)

    before = store_rate(typhoon, 20, 58)
    print("t=60   store-stage input rate (views only): %8.0f tuples/s"
          % before)

    # -- Fig. 14: swap the filter logic at runtime -----------------------------
    print("       hot-swapping filter: view -> view+click ...")
    request = typhoon.replace_computation(
        "yahoo-ads", "filter", make_filter_factory(("view", "click")))
    engine.run(until=120.0)
    assert request.triggered and not request.failed
    after = store_rate(typhoon, 80, 118)
    print("t=120  store-stage input rate (views+clicks): %7.0f tuples/s"
          % after)
    print("       ratio after/before: %.2fx (expected ~2x: two of three "
          "event types now pass)" % (after / before))

    aggregator = typhoon.executors_for("yahoo-ads", "store")[0].component
    windows = redis.keys("window:")
    print("\nwindowed campaign counts persisted to Redis: %d windows"
          % len(windows))
    sample = windows[:3]
    for key in sample:
        print("  %-28s %s" % (key, redis.get(key)))
    joins = typhoon.executors_for("yahoo-ads", "join")
    hits = sum(j.component.cache_hits for j in joins)
    misses = sum(j.component.cache_misses for j in joins)
    print("join cache: %d hits / %d misses (key-based routing keeps the "
          "cache hot)" % (hits, misses))


if __name__ == "__main__":
    main()

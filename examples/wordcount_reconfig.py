#!/usr/bin/env python3
"""Runtime reconfiguration tour: every §3.2 reconfiguration on one live app.

Deploys a word-count pipeline and then — while tuples keep flowing —

1. scales the split stage from 2 to 4 workers (per-node parallelism),
2. hot-swaps the split logic for an uppercasing variant (computation
   logic), and
3. switches source->split routing policy parameters at runtime.

After each step it verifies no tuples were lost at the SDN layer.

Run with::

    python examples/wordcount_reconfig.py
"""

from repro import Engine, Grouping, TopologyConfig, TyphoonCluster
from repro.workloads import SplitBolt, word_count_topology


class UppercaseSplit(SplitBolt):
    """The 'improved algorithm' we deploy mid-flight."""

    def execute(self, stream_tuple, collector):
        for word in stream_tuple[0].split():
            collector.emit((word.upper(), 1), anchor=stream_tuple)


def loss_report(typhoon) -> str:
    switches = typhoon.fabric.switches()
    return ("drops=%d table_misses=%d"
            % (sum(s.packets_dropped for s in switches),
               sum(s.table_misses for s in switches)))


def split_summary(typhoon) -> str:
    splits = typhoon.executors_for("wc", "split")
    return ", ".join(
        "w%d(%s,%s)" % (s.worker_id, s.assignment.hostname,
                        type(s.component).__name__)
        for s in splits
    )


def main() -> None:
    engine = Engine()
    typhoon = TyphoonCluster(engine, num_hosts=3, seed=7)
    config = TopologyConfig(batch_size=100, max_spout_rate=4000)
    typhoon.submit(word_count_topology("wc", config, splits=2, counts=4,
                                       words_per_sentence=3))
    engine.run(until=10.0)
    print("t=10   initial splits: %s" % split_summary(typhoon))

    # 1. per-node parallelism --------------------------------------------
    request = typhoon.set_parallelism("wc", "split", 4)
    engine.run(until=25.0)
    assert request.triggered and not request.failed
    print("t=25   after scale-up:  %s" % split_summary(typhoon))
    print("       %s" % loss_report(typhoon))

    # 2. computation logic -------------------------------------------------
    request = typhoon.replace_computation("wc", "split", UppercaseSplit)
    engine.run(until=40.0)
    assert request.triggered and not request.failed
    print("t=40   after hot-swap:  %s" % split_summary(typhoon))
    count = typhoon.executors_for("wc", "count")[0]
    upper = [w for w in count.component.counts if w.isupper()]
    print("       uppercase words now flowing downstream: %s..."
          % ", ".join(sorted(upper)[:4]))

    # 3. routing policy ------------------------------------------------------
    request = typhoon.set_grouping("wc", "source", "split",
                                   Grouping("shuffle"))
    engine.run(until=50.0)
    assert request.triggered and not request.failed
    source = typhoon.executors_for("wc", "source")[0]
    router = source.routers[("split", 0)]
    print("t=50   routing policy on source->split: %s over %d next hops"
          % (router.grouping.kind, router.num_next_hops))
    print("       %s" % loss_report(typhoon))
    print("\nreconfigurations completed without shutdown or data loss")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Live debugging and fault recovery: two SDN control-plane apps (§4).

Part 1 deploys a pipeline, taps the source with the live debugger
(network-level packet mirroring — no extra serialization at the source,
cf. Fig. 12 and Table 5), inspects captured tuples with a custom filter,
and detaches.

Part 2 injects a worker fault and shows the fault detector redirecting
traffic to the surviving worker within milliseconds — no 30-second
heartbeat timeout (cf. Fig. 10).

Run with::

    python examples/live_debugging.py
"""

from repro import Engine, FaultDetector, LiveDebugger, TopologyConfig, TyphoonCluster
from repro.core.apps import CollectingDebugBolt
from repro.workloads import word_count_topology


def main() -> None:
    engine = Engine()
    typhoon = TyphoonCluster(engine, num_hosts=3, seed=9)
    debugger = typhoon.register_app(LiveDebugger(typhoon))
    detector = typhoon.register_app(FaultDetector(typhoon))

    config = TopologyConfig(batch_size=100, max_spout_rate=3000)
    typhoon.submit(word_count_topology("wc", config, splits=2, counts=4,
                                       words_per_sentence=3,
                                       fault_time=40.0))  # part 2's fault
    engine.run(until=10.0)

    # -- part 1: live debugging -------------------------------------------
    print("t=10   tapping 'source' with a custom predicate (sentences "
          "containing 'word0001')")
    debugger.tap("wc", "source", debug_factory=lambda: CollectingDebugBolt(
        keep_last=5, predicate=lambda t: "word0001" in t[0]))
    engine.run(until=20.0)
    debug = debugger.debug_executor("wc", "source")
    bolt = debug.component
    print("t=20   debug worker %d on %s saw %d tuples, %d matched; sample:"
          % (debug.worker_id, debug.assignment.hostname, bolt.seen,
             bolt.matched))
    for values in bolt.window[-3:]:
        print("         %r" % (values[0][:60],))
    source = typhoon.executors_for("wc", "source")[0]
    transport = typhoon.transports[source.worker_id]
    print("       source serializations == emissions (%d == %d): mirroring "
          "costs the source nothing" % (transport.serializations,
                                        source.stats.emitted))
    debugger.untap("wc", "source")
    print("t=20   tap removed; mirror rules deleted, debug worker retired")

    # -- part 2: fault detection -------------------------------------------------
    engine.run(until=39.0)
    splits = typhoon.executors_for("wc", "split")
    healthy = [s for s in splits if s.assignment.task_index != 0][0]
    rate_before = healthy.processed_meter.rate(30, 39)
    print("\nt=39   healthy split worker rate before fault: %6.0f tuples/s"
          % rate_before)
    engine.run(until=60.0)
    rate_after = healthy.processed_meter.rate(45, 59)
    print("t=60   fault injected at t=40; detections=%d"
          % detector.detections)
    print("       healthy split worker rate after redirect: %6.0f tuples/s "
          "(took over the full stream)" % rate_after)
    counts = typhoon.executors_for("wc", "count")
    aggregate = sum(c.processed_meter.rate(45, 59) for c in counts)
    print("       aggregate count-stage throughput maintained: %6.0f "
          "tuples/s" % aggregate)


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Interactive data mining on a live pipeline (§1 motivation).

Dynamically constructed queries are plugged into an existing streaming
pipeline, observe it for a while, and are unplugged — all without
touching the main computation. This exercises the dynamic topology
manager's ``attach_component`` / ``detach_component``: the query workers
are launched at runtime, the SDN controller wires flow rules for the new
edge, and ROUTING control tuples add (then remove) the edge in the
source workers' routing state.

Run with::

    python examples/interactive_mining.py
"""

from repro import Engine, Grouping, TopologyConfig, TyphoonCluster
from repro.streaming import Bolt
from repro.workloads import word_count_topology


class TrendingWordsQuery(Bolt):
    """Ad-hoc query: top words in the most recent 10-second window."""

    def __init__(self, window_seconds: float = 10.0):
        self.window_seconds = window_seconds
        self.windows = {}
        self._now = lambda: 0.0

    def open(self, ctx):
        self._now = ctx.services.get("now", lambda: 0.0)

    def execute(self, stream_tuple, collector):
        window = int(self._now() // self.window_seconds)
        bucket = self.windows.setdefault(window, {})
        word = stream_tuple[0]
        bucket[word] = bucket.get(word, 0) + 1

    def trending(self, top=3):
        if not self.windows:
            return []
        latest = self.windows[max(self.windows)]
        return sorted(latest.items(), key=lambda kv: -kv[1])[:top]


class SentenceLengthQuery(Bolt):
    """Second ad-hoc query, attached at a different point."""

    def __init__(self):
        self.histogram = {}

    def execute(self, stream_tuple, collector):
        length = len(stream_tuple[0].split())
        self.histogram[length] = self.histogram.get(length, 0) + 1


def main() -> None:
    engine = Engine()
    typhoon = TyphoonCluster(engine, num_hosts=3, seed=21)
    config = TopologyConfig(batch_size=100, max_spout_rate=3000)
    typhoon.submit(word_count_topology("wc", config, splits=2, counts=4,
                                       vocabulary_size=300, skew=1.2,
                                       words_per_sentence=4))
    engine.run(until=10.0)
    print("t=10   main pipeline running; plugging in two mining queries")

    # Query 1: key-partitioned trending-words over the split output.
    typhoon.attach_component(
        "wc", "trending", TrendingWordsQuery, subscribe_to="split",
        grouping=Grouping("fields", (0,)), parallelism=2, stateful=True)
    # Query 2: sentence-length histogram over the raw source.
    typhoon.attach_component(
        "wc", "lengths", SentenceLengthQuery, subscribe_to="source",
        grouping=Grouping("shuffle"))
    engine.run(until=40.0)

    trending = typhoon.executors_for("wc", "trending")
    merged = {}
    for executor in trending:
        for word, count in executor.component.trending(5):
            merged[word] = merged.get(word, 0) + count
    top = sorted(merged.items(), key=lambda kv: -kv[1])[:3]
    print("t=40   trending words (last window): %s"
          % ", ".join("%s=%d" % wc for wc in top))
    lengths = typhoon.executors_for("wc", "lengths")[0]
    print("       sentence length histogram: %s"
          % dict(sorted(lengths.component.histogram.items())))

    # Unplug both queries; the main pipeline never noticed.
    typhoon.detach_component("wc", "trending")
    typhoon.detach_component("wc", "lengths")
    engine.run(until=60.0)
    assert typhoon.executors_for("wc", "trending") == []
    assert typhoon.executors_for("wc", "lengths") == []
    counts = typhoon.executors_for("wc", "count")
    rate = sum(c.processed_meter.rate(50, 59) for c in counts)
    print("t=60   queries detached; count-stage throughput still %.0f "
          "tuples/s" % rate)
    switches = typhoon.fabric.switches()
    print("       switch drops: %d, table misses after warm-up: stable"
          % sum(s.packets_dropped for s in switches))


if __name__ == "__main__":
    main()

"""Fig. 9: one-to-many (broadcast) throughput vs fan-out.

Paper's shape: Storm's per-sink throughput degrades roughly as 1/k with
k sink workers (one serialization per destination), while Typhoon stays
flat thanks to network-level replication — the gap widens with k.
"""

import pytest

from repro.bench import fig9_broadcast

from conftest import run_once, show

SINKS = (2, 3, 4, 5, 6)


def test_fig9_one_to_many(benchmark):
    result = run_once(benchmark, fig9_broadcast, SINKS)
    show(result)
    scalars = result.scalars
    for placement in ("local", "remote"):
        storm = [scalars["storm_%s_%d" % (placement, k)] for k in SINKS]
        typhoon = [scalars["typhoon_%s_%d" % (placement, k)] for k in SINKS]

        # Storm degrades monotonically and substantially (>=2x from k=2
        # to k=6; the ideal serialization-bound slope is 3x).
        assert all(earlier > later for earlier, later
                   in zip(storm, storm[1:]))
        assert storm[0] / storm[-1] > 2.0

        # Typhoon stays flat (within 15% across the sweep).
        assert max(typhoon) / min(typhoon) < 1.15

        # Typhoon wins everywhere, and the gap widens with fan-out.
        gaps = [t / s for t, s in zip(typhoon, storm)]
        assert all(gap > 1.3 for gap in gaps)
        assert gaps[-1] > gaps[0] * 2

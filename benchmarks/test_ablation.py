"""Ablations for Typhoon's design choices (beyond the paper's figures).

1. **I/O batch size** — the configurable batching of §3.3.1 trades JNI /
   per-packet overhead amortization against latency. Tiny batches must
   visibly hurt throughput (each batch pays a JNI crossing and packet
   costs for few tuples); large batches converge.
2. **Locality-aware scheduler (§5)** — replacing Storm's round-robin
   scheduler with Typhoon's block scheduler must reduce the bytes pushed
   through inter-host TCP tunnels on a deep pipeline.
"""

import pytest

from repro.core import TyphoonCluster
from repro.bench.harness import ExperimentResult
from repro.sim import Engine
from repro.streaming import (
    Bolt,
    RoundRobinScheduler,
    Spout,
    TopologyBuilder,
    TopologyConfig,
)

from conftest import run_once, show


class _MaxSpout(Spout):
    def __init__(self):
        self.seq = 0

    def next_tuple(self, collector):
        collector.emit(("payload-string-for-ablation", self.seq))
        self.seq += 1


class _Forward(Bolt):
    def execute(self, stream_tuple, collector):
        collector.emit(stream_tuple.values, anchor=stream_tuple)


class _Sink(Bolt):
    def execute(self, stream_tuple, collector):
        pass


def _batch_ablation():
    result = ExperimentResult("Ablation: Typhoon I/O batch size")
    rows = []
    for batch in (1, 5, 25, 100, 500):
        engine = Engine()
        cluster = TyphoonCluster(engine, num_hosts=1, seed=0)
        builder = TopologyBuilder("ab", TopologyConfig(batch_size=batch))
        builder.set_spout("source", _MaxSpout, 1)
        builder.set_bolt("sink", _Sink, 1).shuffle_grouping("source")
        cluster.submit(builder.build())
        engine.run(until=2.5)
        sink = cluster.executors_for("ab", "sink")[0]
        before = sink.stats.processed
        engine.run(until=2.9)
        rate = (sink.stats.processed - before) / 0.4
        rows.append([batch, "%.0f" % rate])
        result.scalars["batch_%d" % batch] = rate
    result.add_table("throughput vs batch size",
                     ["batch", "tuples/sec"], rows)
    return result


def test_ablation_batch_size_amortization(benchmark):
    result = run_once(benchmark, _batch_ablation)
    show(result)
    # Unbatched I/O pays a JNI crossing + packet per tuple: much slower.
    assert result.scalars["batch_1"] < 0.5 * result.scalars["batch_100"]
    # Amortization saturates: 100 vs 500 within 10%.
    assert result.scalars["batch_500"] == pytest.approx(
        result.scalars["batch_100"], rel=0.10)
    # Monotone improvement up to the plateau.
    assert (result.scalars["batch_1"] < result.scalars["batch_5"]
            < result.scalars["batch_25"] < result.scalars["batch_100"])


def _pipeline(stages=6, parallelism=2):
    builder = TopologyBuilder("pipe", TopologyConfig(max_spout_rate=5000))
    builder.set_spout("stage0", _MaxSpout, parallelism)
    for index in range(1, stages):
        builder.set_bolt("stage%d" % index,
                         _Forward if index < stages - 1 else _Sink,
                         parallelism).shuffle_grouping("stage%d" % (index - 1))
    return builder.build()


def _tunnel_bytes(scheduler):
    engine = Engine()
    cluster = TyphoonCluster(engine, num_hosts=2, seed=0,
                             scheduler=scheduler)
    cluster.submit(_pipeline())
    engine.run(until=12.0)
    total = 0
    seen = set()
    for fabric in cluster.fabric.hosts.values():
        for tunnel in fabric.tunnels.values():
            if id(tunnel) in seen:
                continue
            seen.add(id(tunnel))
            total += tunnel.total_bytes
    return total


def _scheduler_ablation():
    result = ExperimentResult("Ablation: locality scheduler vs round robin")
    round_robin = _tunnel_bytes(RoundRobinScheduler())
    locality = _tunnel_bytes(None)  # default TyphoonScheduler
    result.scalars["round_robin_tunnel_bytes"] = round_robin
    result.scalars["locality_tunnel_bytes"] = locality
    result.add_table(
        "inter-host tunnel traffic on a 6-stage pipeline",
        ["scheduler", "tunnel bytes"],
        [["round-robin (Storm default)", round_robin],
         ["Typhoon locality-aware", locality]])
    return result


def test_ablation_locality_scheduler(benchmark):
    result = run_once(benchmark, _scheduler_ablation)
    show(result)
    # Round-robin scatters every stage across both hosts, so each of the
    # 5 edges is ~50% remote (2.5 edge-volumes). Block placement keeps 3
    # consecutive stages per host: one fully-remote boundary (1.0).
    # Expected ratio ~0.4; assert comfortably below round-robin.
    assert (result.scalars["locality_tunnel_bytes"]
            < 0.6 * result.scalars["round_robin_tunnel_bytes"])

"""Fig. 11: auto-scaling under sustained overload.

Paper's shape: with the split stage driven past its capacity,
(a) Storm suffers periodic throughput collapses — each overloaded split
    eventually dies with OutOfMemoryError, restarts with an empty queue
    and the cycle repeats;
(b) Typhoon's auto-scaler detects the rising queue level, launches a
    third split worker, and throughput is much more stable afterwards;
(c) the new split worker visibly shares the load after the scale-up.
"""

import pytest

from repro.bench import fig11_autoscale

from conftest import run_once, show

_cache = {}


def _run(system):
    if system not in _cache:
        _cache[system] = fig11_autoscale(system)
    return _cache[system]


def test_fig11a_storm_oom_cycles(benchmark):
    result = run_once(benchmark, _run, "storm")
    show(result)
    # Repeated OOM deaths -> repeated supervisor restarts.
    assert result.scalars["worker_restarts"] >= 2
    # The count stage cannot sustain the input rate (splits cap it).
    assert result.scalars["aggregate_late"] < 5800


def test_fig11bc_typhoon_scales_up(benchmark):
    result = run_once(benchmark, _run, "typhoon")
    show(result)
    assert result.scalars["scale_ups"] >= 1
    assert result.scalars["final_split_parallelism"] == 3
    # After scaling, the pipeline keeps up with the input rate.
    assert result.scalars["aggregate_late"] == pytest.approx(6000, rel=0.1)
    # No OOM crash-restart cycles once scaled.
    assert result.scalars["worker_restarts"] <= 1


def test_fig11_typhoon_more_stable_than_storm(benchmark):
    storm = _run("storm")
    typhoon = run_once(benchmark, _run, "typhoon")
    assert (typhoon.scalars["aggregate_late"]
            > storm.scalars["aggregate_late"])
    assert (typhoon.scalars["worker_restarts"]
            < storm.scalars["worker_restarts"])

"""Fig. 13/14: the Yahoo analytics pipeline and runtime logic update.

Paper's shape: at the reconfiguration point the filter logic is swapped
from view-only to view+click *without shutdown or hot-swap of the
topology*; the windowed count at the store stage roughly doubles (two of
the three uniformly distributed event types now pass) while the parse
stage's rate is unchanged.
"""

import pytest

from repro.bench import fig14_reconfig

from conftest import run_once, show


def test_fig14_runtime_logic_update(benchmark):
    result = run_once(benchmark, fig14_reconfig)
    show(result)
    scalars = result.scalars
    assert scalars["reconfig_ok"] == 1.0
    # Parse input is unaffected by the downstream filter change.
    assert scalars["parse_post"] == pytest.approx(scalars["parse_pre"],
                                                  rel=0.1)
    # Store-stage input roughly doubles (1/3 -> 2/3 of events admitted).
    assert scalars["store_post_over_pre"] == pytest.approx(2.0, rel=0.2)

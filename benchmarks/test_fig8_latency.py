"""Fig. 8(c)/(d): end-to-end tuple latency CDFs (local / remote).

Paper's shape: latency shrinks with the Typhoon I/O batch size; with
batches smaller than 500, Typhoon's latency is below Storm's.
"""

import pytest

from repro.bench import fig8cd_latency

from conftest import run_once, show


def _assert_shape(result):
    scalars = result.scalars
    storm = scalars["storm_p50_ms"]
    batches = {batch: scalars["typhoon(%d)_p50_ms" % batch]
               for batch in (100, 250, 500, 1000)}
    # Latency becomes smaller as the batch size decreases.
    assert batches[100] <= batches[250] <= batches[1000]
    assert batches[100] < batches[1000]
    # Batch sizes below 500 beat Storm; the largest batch does not.
    assert batches[100] < storm
    assert batches[250] < storm
    assert batches[1000] > storm
    # Everything is in the paper's millisecond regime (< 20 ms median).
    for value in list(batches.values()) + [storm]:
        assert 0 < value < 20.0


def test_fig8c_latency_local(benchmark):
    result = run_once(benchmark, fig8cd_latency, True)
    show(result)
    _assert_shape(result)


def test_fig8d_latency_remote(benchmark):
    result = run_once(benchmark, fig8cd_latency, False)
    show(result)
    _assert_shape(result)
    # Remote adds network latency: remote medians exceed local ones.
    local = fig8cd_latency(True)
    assert (result.scalars["typhoon(100)_p50_ms"]
            >= local.scalars["typhoon(100)_p50_ms"])

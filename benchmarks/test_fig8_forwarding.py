"""Fig. 8(a)/(b): tuple forwarding throughput, Storm vs Typhoon.

Paper's shape: Storm and Typhoon show *similar* throughput (~1 M
tuples/s scale) both locally and remotely; batch size has minimal effect
at max input speed; enabling the acker roughly halves throughput for
both systems.
"""

import pytest

from repro.bench import fig8a_forwarding, fig8b_forwarding_ack
from repro.bench.figures import FIG8_BATCH_SIZES

from conftest import run_once, show

#: fig8a's result is reused by the fig8b assertions (the "halves" claim
#: is relative to the un-acked numbers) — computed once per session.
_cache = {}


def _fig8a():
    if "a" not in _cache:
        _cache["a"] = fig8a_forwarding()
    return _cache["a"]


def test_fig8a_forwarding(benchmark):
    result = run_once(benchmark, _fig8a)
    show(result)
    scalars = result.scalars
    for placement in ("local", "remote"):
        storm = scalars["storm_%s" % placement]
        # Magnitude: around a million tuples/sec.
        assert storm > 0.4e6
        for batch in FIG8_BATCH_SIZES:
            typhoon = scalars["typhoon%d_%s" % (batch, placement)]
            # Similar throughput: within ~35% of each other.
            assert typhoon == pytest.approx(storm, rel=0.35)
    # Batch size has minimal effect at max speed (<20% spread).
    local_rates = [scalars["typhoon%d_local" % b] for b in FIG8_BATCH_SIZES]
    assert max(local_rates) / min(local_rates) < 1.2


def test_fig8b_forwarding_with_ack(benchmark):
    plain = _fig8a()
    result = run_once(benchmark, fig8b_forwarding_ack)
    show(result)
    for placement in ("local", "remote"):
        storm_acked = result.scalars["storm_%s" % placement]
        typhoon_acked = result.scalars["typhoon100_%s" % placement]
        # Both systems still comparable under acking.
        assert typhoon_acked == pytest.approx(storm_acked, rel=0.40)
        # Acking costs roughly half the throughput (paper: "drops in
        # half"); accept 30–75% of the un-acked rate.
        ratio = storm_acked / plain.scalars["storm_%s" % placement]
        assert 0.30 < ratio < 0.75
        ratio = (typhoon_acked
                 / plain.scalars["typhoon100_%s" % placement])
        assert 0.30 < ratio < 0.75

"""Fig. 10: fault detection and recovery, Storm vs Typhoon.

Paper's shape: after one split worker turns permanently faulty at
t=20 s, Storm's count-stage aggregate throughput drops to ~half and
stays there (local restarts keep failing; the 30 s heartbeat-timeout
reschedule lands on another host where the logic is still faulty).
Typhoon's fault detector sees the port-removal event and redirects
tuples to the healthy split immediately, so aggregate throughput is
maintained (with some fluctuation: the survivor carries double load).
"""

import pytest

from repro.bench import fig10_fault

from conftest import run_once, show

_cache = {}


def _run(system):
    if system not in _cache:
        _cache[system] = fig10_fault(system)
    return _cache[system]


def test_fig10_storm_throughput_halves(benchmark):
    result = run_once(benchmark, _run, "storm")
    show(result)
    ratio = result.scalars["post_over_pre"]
    assert 0.35 < ratio < 0.65  # drops to about half


def test_fig10_typhoon_throughput_maintained(benchmark):
    result = run_once(benchmark, _run, "typhoon")
    show(result)
    ratio = result.scalars["post_over_pre"]
    assert ratio > 0.9  # maintained


def test_fig10_typhoon_vs_storm_gap(benchmark):
    storm = _run("storm")
    typhoon = run_once(benchmark, _run, "typhoon")
    assert (typhoon.scalars["aggregate_post_fault"]
            > 1.5 * storm.scalars["aggregate_post_fault"])
    # Pre-fault the systems are equivalent.
    assert typhoon.scalars["aggregate_pre_fault"] == pytest.approx(
        storm.scalars["aggregate_pre_fault"], rel=0.15)

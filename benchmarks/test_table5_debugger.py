"""Table 5: live-debugger capability comparison, Storm vs Typhoon.

Regenerates the paper's qualitative matrix from the capability flags the
two debugging implementations declare, and cross-checks the two
behavioural claims against the live systems: Typhoon provisions debug
workers dynamically (the Fig. 12 bench exercises it at runtime) and does
not serialize tuples more than once while mirroring.
"""

import pytest

from repro.bench import table5_debugger

from conftest import run_once, show


def test_table5_capability_matrix(benchmark):
    result = run_once(benchmark, table5_debugger)
    show(result)
    assert result.scalars["typhoon_dynamic"] == 1.0
    assert result.scalars["storm_multi_serialization"] == 1.0
    # The matrix carries all four compared properties.
    rendered = result.render()
    for label in ("granularity", "Resource requirement",
                  "Dynamic provisioning", "Multiple serialization"):
        assert label.lower() in rendered.lower()


def test_table5_behaviour_backed_by_runtime(benchmark):
    """The matrix rows are claims about the systems; verify the two
    load-bearing ones against actual runs."""
    from repro.core import TyphoonCluster
    from repro.core.apps import LiveDebugger
    from repro.sim import Engine
    from repro.streaming import TopologyConfig
    from tests.conftest import simple_chain

    def scenario():
        engine = Engine()
        cluster = TyphoonCluster(engine, num_hosts=1)
        debugger = cluster.register_app(LiveDebugger(cluster))
        cluster.submit(simple_chain("t", config=TopologyConfig(
            max_spout_rate=2000)))
        engine.run(until=6.0)
        # Dynamic provisioning: no debug worker existed at submit time.
        assert cluster.executors_for("t", "__debug__") == []
        debugger.tap("t", "source")
        engine.run(until=12.0)
        assert debugger.debug_executor("t", "source") is not None
        return cluster

    cluster = run_once(benchmark, scenario)
    # No multiple serialization while mirroring.
    source = cluster.executors_for("t", "source")[0]
    transport = cluster.transports[source.worker_id]
    assert transport.serializations == source.stats.emitted

"""Fig. 12: live debugging overhead.

Paper's shape: while tuples are replicated to a debug worker, Storm's
topology throughput drops significantly (application-level copies mean
extra serializations at the source), whereas Typhoon's is unaffected
(the switch copies packets). Both recover after logging stops; Typhoon
needs no recovery because it never dipped.
"""

import pytest

from repro.bench import fig12_debug

from conftest import run_once, show

_cache = {}


def _run(system):
    if system not in _cache:
        _cache[system] = fig12_debug(system)
    return _cache[system]


def test_fig12_storm_throughput_drops(benchmark):
    result = run_once(benchmark, _run, "storm")
    show(result)
    ratio = result.scalars["during_over_before"]
    assert ratio < 0.85  # visible degradation while debugging
    # And it recovers once logging stops.
    recovery = result.scalars["after"] / result.scalars["before"]
    assert recovery > 0.9


def test_fig12_typhoon_unaffected(benchmark):
    result = run_once(benchmark, _run, "typhoon")
    show(result)
    ratio = result.scalars["during_over_before"]
    assert ratio > 0.93  # network-level mirroring is free for workers


def test_fig12_gap_between_systems(benchmark):
    storm = _run("storm")
    typhoon = run_once(benchmark, _run, "typhoon")
    assert (typhoon.scalars["during_over_before"]
            > storm.scalars["during_over_before"] + 0.10)

"""Shared benchmark plumbing.

Every benchmark runs its experiment exactly once (``pedantic`` with one
round): the measured quantity is the simulated system's *virtual-time*
behaviour, which is deterministic, so statistical repetition would only
re-measure the host machine.
"""

from __future__ import annotations


def run_once(benchmark, func, *args, **kwargs):
    """Run ``func`` once under pytest-benchmark and return its result."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)


def show(result) -> None:
    print()
    print(result.render())

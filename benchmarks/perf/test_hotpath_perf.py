"""Hot-path wall-clock benchmarks: current implementations vs. the
pre-optimization references (``repro.bench.legacy``).

The same workloads back ``repro bench --perf``; this file exposes them
to pytest-benchmark for statistical timing and keeps two deterministic
gates (cache hit rate, combined speedup floor) runnable from CI.
"""

import pytest

from repro.bench.legacy import (
    LegacyFlowTable,
    legacy_decode_tuple,
    legacy_encode_tuple,
)
from repro.bench.perf import (
    _lookup_frames,
    _table_entries,
    codec_corpus,
    run_perf_bench,
)
from repro.sdn.flow import FlowTable
from repro.streaming.serialize import decode_tuple, encode_tuple


@pytest.fixture(scope="module")
def lookup_workload():
    table = FlowTable()
    legacy = LegacyFlowTable()
    for entry in _table_entries():
        table.add(entry)
    for entry in _table_entries():
        legacy.add(entry)
    return table, legacy, _lookup_frames()


@pytest.fixture(scope="module")
def corpus():
    return codec_corpus(seed=0)


@pytest.fixture(scope="module")
def encoded(corpus):
    return [encode_tuple(st) for st in corpus]


@pytest.mark.benchmark(group="table-lookup")
def test_lookup_current(benchmark, lookup_workload):
    table, _legacy, frames = lookup_workload

    def run():
        for frame, in_port in frames:
            table.lookup_cached(frame, in_port)

    benchmark(run)


@pytest.mark.benchmark(group="table-lookup")
def test_lookup_legacy_baseline(benchmark, lookup_workload):
    _table, legacy, frames = lookup_workload

    def run():
        for frame, in_port in frames:
            legacy.lookup(frame, in_port)

    benchmark(run)


@pytest.mark.benchmark(group="encode")
def test_encode_current(benchmark, corpus):
    benchmark(lambda: [encode_tuple(st) for st in corpus])


@pytest.mark.benchmark(group="encode")
def test_encode_legacy_baseline(benchmark, corpus):
    benchmark(lambda: [legacy_encode_tuple(st) for st in corpus])


@pytest.mark.benchmark(group="decode")
def test_decode_current(benchmark, encoded):
    benchmark(lambda: [decode_tuple(data) for data in encoded])


@pytest.mark.benchmark(group="decode")
def test_decode_legacy_baseline(benchmark, encoded):
    benchmark(lambda: [legacy_decode_tuple(data) for data in encoded])


def test_cached_lookup_agrees_with_legacy(lookup_workload):
    table, legacy, frames = lookup_workload
    for frame, in_port in frames:
        current = table.lookup_cached(frame, in_port)
        reference = legacy.lookup(frame, in_port)
        assert (current is None) == (reference is None)
        if current is not None:
            assert current.match == reference.match
            assert current.priority == reference.priority


def test_combined_speedup_floor():
    """The headline gate, at a conservative floor for noisy CI hosts
    (``repro bench --perf`` reports the full-resolution number)."""
    result = run_perf_bench(seed=0, iterations=20_000, e2e=False)
    assert result["ops"]["table_lookup"]["cache_hit_rate"] > 0.95
    assert result["combined"]["speedup"] > 1.5

"""Wall-clock hot-path benchmarks.

Unlike the figure benchmarks one directory up — which measure
deterministic *virtual-time* behaviour and therefore run exactly once —
these measure how fast the reproduction itself executes on the host, so
they use pytest-benchmark's normal statistical repetition.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/perf -q

Each hot path is benchmarked twice, current vs. the pre-optimization
reference implementation from :mod:`repro.bench.legacy`, in the same
pytest-benchmark group, so ``--benchmark-group-by=group`` tables show
the speedup directly.
"""

"""Failure injection for experiments and tests.

The evaluation's failure scenarios (Fig. 10's NullPointerException,
Fig. 11's OutOfMemoryError) are baked into workload components; this
module provides *external* injectors that operate on a running cluster,
so any topology can be subjected to failures without modifying its code:

* :func:`kill_worker_at` — crash a specific worker at a virtual time;
* :func:`crash_loop` — keep re-crashing a worker as it restarts (the
  persistent-fault mode of Fig. 10);
* :func:`host_failure_at` — take down every worker on a host at once;
* :class:`FaultPlan` — compose a schedule of injections and account for
  what actually fired.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from .engine import Engine, Interrupt, Process


class InjectedWorkerFault(RuntimeError):
    """The error used for externally injected worker crashes."""


def _crash(cluster, worker_id: int, reason: str) -> bool:
    executor = cluster.executor(worker_id)
    if executor is None or not executor.alive:
        return False
    executor._crash(InjectedWorkerFault(reason))
    return True


def kill_worker_at(cluster, worker_id: int, when: float,
                   reason: str = "injected fault") -> None:
    """Crash one worker at virtual time ``when`` (one-shot)."""
    delay = when - cluster.engine.now
    if delay < 0:
        raise ValueError("injection time is in the past")
    cluster.engine.schedule(delay, _crash, cluster, worker_id, reason)


def crash_loop(cluster, worker_id: int, start: float,
               recheck_interval: float = 0.2,
               until: Optional[float] = None) -> Process:
    """Persistently crash a worker: every restart dies again (the
    Fig. 10 failure mode, injected externally)."""
    engine: Engine = cluster.engine

    def loop():
        if start > engine.now:
            yield start - engine.now
        while until is None or engine.now < until:
            _crash(cluster, worker_id, "persistent injected fault")
            try:
                yield recheck_interval
            except Interrupt:
                return

    return engine.process(loop(), name="crash-loop:%d" % worker_id)


def host_failure_at(cluster, hostname: str, when: float) -> None:
    """Crash every worker running on a host at time ``when``.

    Models a machine loss as seen by the framework: every worker dies at
    once (in Typhoon, every port on that host's switch disappears and
    the fault detector reroutes around all of them)."""

    def fail_host() -> None:
        agent = cluster.manager.agents.get(hostname)
        if agent is None:
            return
        for worker_id in list(agent.workers):
            _crash(cluster, worker_id, "host %s failed" % hostname)

    delay = when - cluster.engine.now
    if delay < 0:
        raise ValueError("injection time is in the past")
    cluster.engine.schedule(delay, fail_host)


@dataclass
class _Injection:
    when: float
    description: str
    action: Callable[[], None]
    fired: bool = False


class FaultPlan:
    """A declarative schedule of fault injections against one cluster."""

    def __init__(self, cluster):
        self.cluster = cluster
        self.injections: List[_Injection] = []

    def kill_worker(self, worker_id: int, when: float) -> "FaultPlan":
        injection = _Injection(when, "kill worker %d" % worker_id,
                               lambda: _crash(self.cluster, worker_id,
                                              "planned kill"))
        self.injections.append(injection)
        return self

    def fail_host(self, hostname: str, when: float) -> "FaultPlan":
        def action() -> None:
            agent = self.cluster.manager.agents.get(hostname)
            if agent is None:
                return
            for worker_id in list(agent.workers):
                _crash(self.cluster, worker_id, "host failure")

        self.injections.append(
            _Injection(when, "fail host %s" % hostname, action))
        return self

    def arm(self) -> "FaultPlan":
        """Schedule every injection on the engine."""
        now = self.cluster.engine.now
        for injection in self.injections:
            if injection.when < now:
                raise ValueError("injection %r is in the past"
                                 % injection.description)

            def fire(injection=injection):
                injection.fired = True
                injection.action()

            self.cluster.engine.schedule(injection.when - now, fire)
        return self

    @property
    def fired(self) -> List[str]:
        return [i.description for i in self.injections if i.fired]

"""Failure injection for experiments and tests (the chaos subsystem).

The evaluation's failure scenarios (Fig. 10's NullPointerException,
Fig. 11's OutOfMemoryError) are baked into workload components; this
module provides *external* injectors that operate on a running cluster,
so any topology can be subjected to failures without modifying its code.

Worker/host faults (any runtime):

* :func:`kill_worker_at` — crash a specific worker at a virtual time;
* :func:`crash_loop` — keep re-crashing a worker as it restarts (the
  persistent-fault mode of Fig. 10);
* :func:`host_failure_at` — take down every worker on a host at once.

SDN data/control-plane faults (Typhoon runtime only — they drive the
knobs on :class:`~repro.net.tcp.TcpTunnel`,
:class:`~repro.sdn.switch.SoftwareSwitch` and
:class:`~repro.sdn.controller.SdnController`):

* :func:`set_link_down` / :func:`set_link_loss` / :func:`set_link_delay`
  — partition, corrupt or slow the host-level tunnel between two hosts;
* :func:`set_switch_down` — crash/restore a software switch (flow tables
  lost, controller re-syncs on reconnect);
* :func:`set_controller_down` — controller outage (events and sends
  queue, flush FIFO on recovery);
* :func:`set_control_fault` — delay or drop PacketIn/PacketOut traffic.

Composition:

* :class:`FaultPlan` — compose a schedule of injections and account for
  what actually fired, what was clamped to "now", and what resolved;
* :class:`ChaosSpec` / :class:`ChaosSchedule` — a seeded random scenario
  generator (driven by :mod:`repro.sim.rng`): the same seed always
  yields the same specs, targets, durations and per-spec RNG streams,
  which is what makes chaos runs replayable bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from .engine import Engine, Interrupt, Process
from .rng import as_factory


class InjectedWorkerFault(RuntimeError):
    """The error used for externally injected worker crashes."""


def _crash(cluster, worker_id: int, reason: str) -> bool:
    executor = cluster.executor(worker_id)
    if executor is None or not executor.alive:
        return False
    executor._crash(InjectedWorkerFault(reason))
    return True


def kill_worker_at(cluster, worker_id: int, when: float,
                   reason: str = "injected fault") -> None:
    """Crash one worker at virtual time ``when`` (one-shot).

    A ``when`` in the past fires immediately: by the time a caller
    composes a schedule against a running cluster the intended instant
    may already have passed, and "as soon as possible" preserves the
    scenario better than refusing it (use :class:`FaultPlan` when the
    clamping itself must be visible in the accounting).
    """
    delay = max(0.0, when - cluster.engine.now)
    cluster.engine.schedule(delay, _crash, cluster, worker_id, reason)


def crash_loop(cluster, worker_id: int, start: float,
               recheck_interval: float = 0.2,
               until: Optional[float] = None) -> Process:
    """Persistently crash a worker: every restart dies again (the
    Fig. 10 failure mode, injected externally).

    With ``until`` set, the recheck process is interrupted at exactly
    that time instead of lingering up to ``recheck_interval`` past it
    waiting for its next wakeup.
    """
    engine: Engine = cluster.engine

    def loop():
        if start > engine.now:
            yield start - engine.now
        while until is None or engine.now < until:
            _crash(cluster, worker_id, "persistent injected fault")
            try:
                yield recheck_interval
            except Interrupt:
                return

    process = engine.process(loop(), name="crash-loop:%d" % worker_id)
    if until is not None:
        def expire() -> None:
            if process.alive:
                process.interrupt("crash loop expired")

        engine.schedule(max(0.0, until - engine.now), expire)
    return process


def host_failure_at(cluster, hostname: str, when: float) -> None:
    """Crash every worker running on a host at time ``when`` (clamped to
    "now" when already past, like :func:`kill_worker_at`).

    Models a machine loss as seen by the framework: every worker dies at
    once (in Typhoon, every port on that host's switch disappears and
    the fault detector reroutes around all of them)."""

    def fail_host() -> None:
        agent = cluster.manager.agents.get(hostname)
        if agent is None:
            return
        for worker_id in list(agent.workers):
            _crash(cluster, worker_id, "host %s failed" % hostname)

    cluster.engine.schedule(max(0.0, when - cluster.engine.now), fail_host)


# -- SDN data/control-plane state changers ------------------------------------


def _tunnel(cluster, host_a: str, host_b: str):
    fabric = getattr(cluster, "fabric", None)
    if fabric is None:
        raise ValueError("cluster has no host fabric; link faults need "
                         "the Typhoon runtime")
    tunnel = fabric.host(host_a).tunnels.get(host_b)
    if tunnel is None:
        raise ValueError("no tunnel between %r and %r" % (host_a, host_b))
    return tunnel


def set_link_down(cluster, host_a: str, host_b: str, down: bool) -> None:
    """Partition (or heal) the tunnel between two hosts. TCP semantics:
    writes queue during the partition and drain in order on heal."""
    _tunnel(cluster, host_a, host_b).set_down(down)


def set_link_loss(cluster, host_a: str, host_b: str, rate: float,
                  rng=None) -> None:
    """Make the tunnel drop whole writes with probability ``rate``
    (drops are charged to the ledger as ``link-loss``)."""
    _tunnel(cluster, host_a, host_b).set_loss(rate, rng)


def set_link_delay(cluster, host_a: str, host_b: str, extra: float) -> None:
    """Add ``extra`` seconds of one-way latency to the tunnel (0 heals)."""
    _tunnel(cluster, host_a, host_b).set_chaos_delay(extra)


def set_switch_down(cluster, hostname: str, down: bool) -> None:
    """Crash (or restart) the software switch on one host."""
    fabric = getattr(cluster, "fabric", None)
    if fabric is None:
        raise ValueError("cluster has no host fabric; switch faults need "
                         "the Typhoon runtime")
    switch = fabric.host(hostname).switch
    if down:
        switch.crash()
    else:
        switch.restore()


def set_controller_down(cluster, down: bool) -> None:
    """Start (or end) an SDN controller outage."""
    sdn = getattr(cluster, "sdn", None)
    if sdn is None:
        raise ValueError("cluster has no SDN controller")
    if down:
        sdn.fail()
    else:
        sdn.recover()


def set_control_fault(cluster, extra_delay: float = 0.0,
                      drop_rate: float = 0.0, rng=None) -> None:
    """Degrade (or with defaults, heal) the PacketIn/PacketOut channel."""
    sdn = getattr(cluster, "sdn", None)
    if sdn is None:
        raise ValueError("cluster has no SDN controller")
    sdn.set_control_fault(extra_delay=extra_delay, drop_rate=drop_rate,
                          rng=rng)


def _ha_plane(cluster):
    ha = getattr(cluster, "ha", None)
    if ha is None:
        raise ValueError("cluster has no replicated control plane; HA "
                         "faults need ha_replicas >= 2")
    return ha


def set_controller_replica_down(cluster, name: str, down: bool) -> None:
    """Crash (or restart) one named controller replica. The election
    detects the death after the session timeout and promotes a standby."""
    replica = _ha_plane(cluster).replica(name)
    if down:
        replica.fail()
    else:
        replica.recover()


def set_store_partition(cluster, name: str, partitioned: bool) -> None:
    """Partition one controller replica from the coordination store (or
    heal it). The replica keeps running — if it was the leader it becomes
    a *stale master* the switches must fence — but its heartbeats stop,
    so its session expires and the survivors elect a new leader."""
    _ha_plane(cluster).replica(name).store_reachable = not partitioned


# -- composition ---------------------------------------------------------------


@dataclass
class _Injection:
    when: float
    description: str
    action: Callable[[], None]
    #: seconds after ``action`` until ``restore`` runs (0 = instant fault)
    duration: float = 0.0
    restore: Optional[Callable[[], None]] = None
    #: "time" injections arm on the engine clock; "phase" injections arm
    #: on a named Fig. 6 update phase (see FaultPlan.at_phase).
    trigger: str = "time"
    phase_key: Optional[Tuple[str, str, str]] = None
    fired: bool = False
    #: the requested time was already past at arm(); fired immediately
    clamped: bool = False
    #: instant faults resolve when fired; durable ones when restored
    resolved: bool = False


class FaultPlan:
    """A declarative schedule of fault injections against one cluster.

    Each entry tracks whether it ``fired``, whether its requested time
    was ``clamped`` to "now" at arm time, and whether it ``resolved``
    (instant faults resolve on firing; durable faults — outages, lossy
    links, crash loops — once their restore action ran).
    """

    def __init__(self, cluster):
        self.cluster = cluster
        self.injections: List[_Injection] = []
        self._armed = False

    # -- worker/host faults ------------------------------------------------

    def kill_worker(self, worker_id: int, when: float) -> "FaultPlan":
        injection = _Injection(when, "kill worker %d" % worker_id,
                               lambda: _crash(self.cluster, worker_id,
                                              "planned kill"))
        self.injections.append(injection)
        return self

    def crash_loop(self, worker_id: int, when: float, until: float,
                   recheck_interval: float = 0.2) -> "FaultPlan":
        """Keep a worker down from ``when`` to ``until``; the recheck
        process is cancelled (and the entry resolved) at ``until`` even
        if the worker never restarted in between."""
        holder: dict = {}

        def action() -> None:
            holder["process"] = crash_loop(
                self.cluster, worker_id, start=self.cluster.engine.now,
                recheck_interval=recheck_interval, until=until)

        def restore() -> None:
            process = holder.get("process")
            if process is not None and process.alive:
                process.interrupt("crash loop expired")

        self.injections.append(_Injection(
            when, "crash-loop worker %d" % worker_id, action,
            duration=max(0.0, until - when), restore=restore))
        return self

    def fail_host(self, hostname: str, when: float) -> "FaultPlan":
        def action() -> None:
            agent = self.cluster.manager.agents.get(hostname)
            if agent is None:
                return
            for worker_id in list(agent.workers):
                _crash(self.cluster, worker_id, "host failure")

        self.injections.append(
            _Injection(when, "fail host %s" % hostname, action))
        return self

    # -- link faults -------------------------------------------------------

    def link_flap(self, host_a: str, host_b: str, when: float,
                  duration: float) -> "FaultPlan":
        self.injections.append(_Injection(
            when, "partition link %s<->%s" % (host_a, host_b),
            lambda: set_link_down(self.cluster, host_a, host_b, True),
            duration=duration,
            restore=lambda: set_link_down(self.cluster, host_a, host_b,
                                          False)))
        return self

    def link_loss(self, host_a: str, host_b: str, when: float,
                  duration: float, rate: float, rng) -> "FaultPlan":
        self.injections.append(_Injection(
            when, "lossy link %s<->%s rate=%.4f" % (host_a, host_b, rate),
            lambda: set_link_loss(self.cluster, host_a, host_b, rate, rng),
            duration=duration,
            restore=lambda: set_link_loss(self.cluster, host_a, host_b,
                                          0.0)))
        return self

    def link_delay(self, host_a: str, host_b: str, when: float,
                   duration: float, extra: float) -> "FaultPlan":
        self.injections.append(_Injection(
            when, "slow link %s<->%s extra=%.4f" % (host_a, host_b, extra),
            lambda: set_link_delay(self.cluster, host_a, host_b, extra),
            duration=duration,
            restore=lambda: set_link_delay(self.cluster, host_a, host_b,
                                           0.0)))
        return self

    # -- switch / controller faults ----------------------------------------

    def switch_outage(self, hostname: str, when: float,
                      duration: float) -> "FaultPlan":
        self.injections.append(_Injection(
            when, "crash switch %s" % hostname,
            lambda: set_switch_down(self.cluster, hostname, True),
            duration=duration,
            restore=lambda: set_switch_down(self.cluster, hostname, False)))
        return self

    def controller_outage(self, when: float, duration: float) -> "FaultPlan":
        self.injections.append(_Injection(
            when, "controller outage",
            lambda: set_controller_down(self.cluster, True),
            duration=duration,
            restore=lambda: set_controller_down(self.cluster, False)))
        return self

    def control_delay(self, when: float, duration: float,
                      extra: float) -> "FaultPlan":
        self.injections.append(_Injection(
            when, "control-channel delay extra=%.4f" % extra,
            lambda: set_control_fault(self.cluster, extra_delay=extra),
            duration=duration,
            restore=lambda: set_control_fault(self.cluster)))
        return self

    def control_drop(self, when: float, duration: float, rate: float,
                     rng) -> "FaultPlan":
        self.injections.append(_Injection(
            when, "control-channel drop rate=%.4f" % rate,
            lambda: set_control_fault(self.cluster, drop_rate=rate, rng=rng),
            duration=duration,
            restore=lambda: set_control_fault(self.cluster)))
        return self

    # -- replicated-control-plane faults -----------------------------------

    def kill_leader(self, when: float, duration: float,
                    description: str = "kill leader replica") -> "FaultPlan":
        """Crash whichever replica *leads at fire time* (resolved when
        the injection fires, not when the plan is built — a prior fault
        may already have moved leadership), restart it ``duration``
        later."""
        holder: dict = {}

        def action() -> None:
            ha = _ha_plane(self.cluster)
            victim = ha.leader_name or ha.replicas[0].name
            holder["victim"] = victim
            set_controller_replica_down(self.cluster, victim, True)

        def restore() -> None:
            victim = holder.get("victim")
            if victim is not None:
                set_controller_replica_down(self.cluster, victim, False)

        return self.custom(when, description, action, duration=duration,
                           restore=restore)

    def partition_leader_from_store(
            self, when: float, duration: float,
            description: str = "partition leader from store") -> "FaultPlan":
        """Cut the fire-time leader off from the coordination store: it
        keeps running as a stale master until the switches fence it."""
        holder: dict = {}

        def action() -> None:
            ha = _ha_plane(self.cluster)
            victim = ha.leader_name or ha.replicas[0].name
            holder["victim"] = victim
            set_store_partition(self.cluster, victim, True)

        def restore() -> None:
            victim = holder.get("victim")
            if victim is not None:
                set_store_partition(self.cluster, victim, False)

        return self.custom(when, description, action, duration=duration,
                           restore=restore)

    # -- dynamic faults ----------------------------------------------------

    def custom(self, when: float, description: str,
               action: Callable[[], None], duration: float = 0.0,
               restore: Optional[Callable[[], None]] = None) -> "FaultPlan":
        """Schedule an arbitrary action with FaultPlan accounting.

        For faults whose target is only knowable at fire time — e.g.
        "kill whoever currently leads the replica group": the victim is
        resolved inside ``action`` when the injection fires, not when
        the schedule is built."""
        self.injections.append(_Injection(when, description, action,
                                          duration=duration,
                                          restore=restore))
        return self

    # -- mid-update faults -------------------------------------------------

    def at_phase(self, topology_id: str, op: str, phase: str,
                 action: Callable[[], None],
                 description: str = "") -> "FaultPlan":
        """Fire ``action`` the first time the named Fig. 6 update phase
        is announced for ``(topology_id, op)`` — e.g. crash a switch
        right after a stateful scale-up pushed its SIGNALs."""
        self.injections.append(_Injection(
            when=-1.0,
            description=description or ("%s at %s/%s" % (op, phase,
                                                         topology_id)),
            action=action, trigger="phase",
            phase_key=(topology_id, op, phase)))
        return self

    # -- arming / accounting -----------------------------------------------

    def arm(self) -> "FaultPlan":
        """Schedule every injection. Past times fire immediately and are
        recorded as clamped rather than aborting the plan: the scenario
        still runs, and the accounting shows what was stretched."""
        if self._armed:
            raise RuntimeError("fault plan is already armed")
        self._armed = True
        engine = self.cluster.engine
        now = engine.now
        phase_injections = [i for i in self.injections
                            if i.trigger == "phase"]
        if phase_injections:
            listeners = getattr(self.cluster, "update_phase_listeners", None)
            if listeners is None:
                raise ValueError("cluster does not announce update phases")

            def on_phase(topology_id: str, op: str, phase: str) -> None:
                for injection in phase_injections:
                    if injection.fired:
                        continue
                    if injection.phase_key == (topology_id, op, phase):
                        self._fire(injection)

            listeners.append(on_phase)
        for injection in self.injections:
            if injection.trigger != "time":
                continue
            delay = injection.when - now
            if delay < 0:
                injection.clamped = True
                delay = 0.0
            engine.schedule(delay, self._fire, injection)
        return self

    def _fire(self, injection: _Injection) -> None:
        injection.fired = True
        injection.action()
        if injection.restore is None:
            injection.resolved = True
        else:
            self.cluster.engine.schedule(injection.duration,
                                         self._restore, injection)

    def _restore(self, injection: _Injection) -> None:
        injection.restore()
        injection.resolved = True

    @property
    def fired(self) -> List[str]:
        return [i.description for i in self.injections if i.fired]

    @property
    def clamped(self) -> List[str]:
        return [i.description for i in self.injections if i.clamped]

    @property
    def unresolved(self) -> List[str]:
        return [i.description for i in self.injections if not i.resolved]

    def render(self) -> str:
        """Deterministic accounting table (part of the chaos report)."""
        lines = ["fault plan (%d injections)" % len(self.injections)]
        for injection in self.injections:
            flags = []
            if injection.clamped:
                flags.append("clamped")
            if not injection.fired:
                flags.append("pending")
            elif not injection.resolved:
                flags.append("active")
            lines.append("  [%s] t=%.3f dur=%.3f %s" % (
                ",".join(flags) if flags else "ok",
                injection.when, injection.duration,
                injection.description))
        return "\n".join(lines)


# -- seeded chaos scenarios ----------------------------------------------------

KIND_KILL_WORKER = "kill-worker"
KIND_CRASH_LOOP = "crash-loop"
KIND_HOST_FAILURE = "host-failure"
KIND_LINK_FLAP = "link-flap"
KIND_LINK_LOSS = "link-loss"
KIND_LINK_DELAY = "link-delay"
KIND_SWITCH_OUTAGE = "switch-outage"
KIND_CONTROLLER_OUTAGE = "controller-outage"
KIND_CONTROL_DELAY = "control-delay"
KIND_CONTROL_DROP = "control-drop"

#: Fault menu for the Typhoon runtime (full SDN data/control plane).
TYPHOON_KINDS: Tuple[str, ...] = (
    KIND_KILL_WORKER, KIND_CRASH_LOOP, KIND_HOST_FAILURE,
    KIND_LINK_FLAP, KIND_LINK_LOSS, KIND_LINK_DELAY,
    KIND_SWITCH_OUTAGE, KIND_CONTROLLER_OUTAGE,
    KIND_CONTROL_DELAY, KIND_CONTROL_DROP,
)

#: Fault menu for the Storm baseline (no SDN fabric to break).
STORM_KINDS: Tuple[str, ...] = (
    KIND_KILL_WORKER, KIND_CRASH_LOOP, KIND_HOST_FAILURE,
)

_WORKER_KINDS = (KIND_KILL_WORKER, KIND_CRASH_LOOP)
_HOST_KINDS = (KIND_HOST_FAILURE, KIND_SWITCH_OUTAGE)
_LINK_KINDS = (KIND_LINK_FLAP, KIND_LINK_LOSS, KIND_LINK_DELAY)


@dataclass(frozen=True)
class ChaosSpec:
    """One randomized-but-reproducible fault: what, when, how long."""

    kind: str
    when: float
    duration: float = 0.0
    target: Tuple[str, ...] = ()
    value: float = 0.0

    def describe(self) -> str:
        target = ",".join(self.target) if self.target else "-"
        return ("t=%08.3f %-17s target=%-17s dur=%.3f val=%.4f"
                % (self.when, self.kind, target, self.duration, self.value))


class ChaosSchedule:
    """Seeded random composition of fault scenarios.

    The generator draws every choice (kind, target, instant, duration,
    rate) from one named RNG stream, so a ``(seed, menus, window,
    count)`` tuple always produces the identical spec list; the RNGs
    handed to lossy-link / control-drop injectors are derived per spec
    index from the same seed, so even the probabilistic faults replay
    identically.
    """

    def __init__(self, seed: int, kinds: Sequence[str], workers: Sequence[int],
                 hosts: Sequence[str], window: Tuple[float, float],
                 count: int = 6):
        start, end = window
        if end <= start:
            raise ValueError("chaos window must have positive length")
        factory = as_factory(seed)
        self.seed = factory.root_seed
        self.window = (start, end)
        self._seeds = factory.child("chaos-schedule")
        workers = sorted(workers)
        hosts = sorted(hosts)
        kinds = [k for k in kinds
                 if not (k in _WORKER_KINDS and not workers)
                 and not (k in _HOST_KINDS and not hosts)
                 and not (k in _LINK_KINDS and len(hosts) < 2)]
        if not kinds:
            raise ValueError("no applicable fault kinds for the given "
                             "workers/hosts")
        rng = self._seeds.rng("specs")
        specs: List[ChaosSpec] = []
        for _ in range(count):
            kind = kinds[rng.randrange(len(kinds))]
            when = round(start + rng.random() * (end - start), 3)
            duration = round(0.3 + rng.random() * 1.2, 3)
            duration = min(duration, round(end - when, 3))
            target: Tuple[str, ...] = ()
            value = 0.0
            if kind in _WORKER_KINDS:
                target = (str(workers[rng.randrange(len(workers))]),)
            elif kind in _HOST_KINDS:
                target = (hosts[rng.randrange(len(hosts))],)
            elif kind in _LINK_KINDS:
                first = rng.randrange(len(hosts))
                second = rng.randrange(len(hosts) - 1)
                if second >= first:
                    second += 1
                target = tuple(sorted((hosts[first], hosts[second])))
            if kind == KIND_LINK_LOSS:
                value = round(0.05 + rng.random() * 0.25, 4)
            elif kind == KIND_LINK_DELAY:
                value = round(0.002 + rng.random() * 0.008, 4)
            elif kind == KIND_CONTROL_DELAY:
                value = round(0.001 + rng.random() * 0.004, 4)
            elif kind == KIND_CONTROL_DROP:
                value = round(0.1 + rng.random() * 0.3, 4)
            specs.append(ChaosSpec(kind, when, duration, target, value))
        specs.sort(key=lambda s: (s.when, s.kind, s.target))
        self.specs: List[ChaosSpec] = specs

    def apply(self, cluster) -> FaultPlan:
        """Instantiate the specs as an armed :class:`FaultPlan`."""
        plan = FaultPlan(cluster)
        for index, spec in enumerate(self.specs):
            until = spec.when + spec.duration
            if spec.kind == KIND_KILL_WORKER:
                plan.kill_worker(int(spec.target[0]), spec.when)
            elif spec.kind == KIND_CRASH_LOOP:
                plan.crash_loop(int(spec.target[0]), spec.when, until)
            elif spec.kind == KIND_HOST_FAILURE:
                plan.fail_host(spec.target[0], spec.when)
            elif spec.kind == KIND_LINK_FLAP:
                plan.link_flap(spec.target[0], spec.target[1], spec.when,
                               spec.duration)
            elif spec.kind == KIND_LINK_LOSS:
                plan.link_loss(spec.target[0], spec.target[1], spec.when,
                               spec.duration, spec.value,
                               self._seeds.rng("loss-%d" % index))
            elif spec.kind == KIND_LINK_DELAY:
                plan.link_delay(spec.target[0], spec.target[1], spec.when,
                                spec.duration, spec.value)
            elif spec.kind == KIND_SWITCH_OUTAGE:
                plan.switch_outage(spec.target[0], spec.when, spec.duration)
            elif spec.kind == KIND_CONTROLLER_OUTAGE:
                plan.controller_outage(spec.when, spec.duration)
            elif spec.kind == KIND_CONTROL_DELAY:
                plan.control_delay(spec.when, spec.duration, spec.value)
            elif spec.kind == KIND_CONTROL_DROP:
                plan.control_drop(spec.when, spec.duration, spec.value,
                                  self._seeds.rng("drop-%d" % index))
            else:
                raise ValueError("unknown chaos kind %r" % spec.kind)
        return plan.arm()

    def describe(self) -> str:
        lines = ["chaos schedule seed=%d window=[%.3f, %.3f] specs=%d"
                 % (self.seed, self.window[0], self.window[1],
                    len(self.specs))]
        lines.extend("  " + spec.describe() for spec in self.specs)
        return "\n".join(lines)

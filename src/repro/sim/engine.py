"""Discrete-event simulation kernel.

Everything in this reproduction — hosts, switches, workers, controllers —
runs on a single deterministic virtual clock owned by an :class:`Engine`.
Concurrency is expressed with generator-based processes (in the style of
SimPy): a process is a generator that yields *waitables* and is resumed by
the engine when the waitable completes.

A process may yield:

* a ``float``/``int`` — sleep for that many virtual seconds,
* an :class:`Event` — wait until the event is triggered; the ``yield``
  expression evaluates to the event's value,
* a :class:`Process` — wait for another process to finish (processes are
  events that trigger on completion).

The engine is strictly deterministic: events scheduled for the same virtual
time fire in scheduling order (FIFO), so repeated runs with the same seeds
produce identical traces.

Scheduler design (DESIGN.md §5f)
--------------------------------

The ready queue is a *calendar queue* rather than a single binary heap:

* pending entries live in per-slot buckets keyed by ``floor(when / width)``;
  a small heap of slot ids finds the earliest non-empty bucket, and an
  *overflow heap* holds entries beyond the current calendar window (they
  migrate into buckets when the window advances past them);
* entries scheduled for the same timestamp are extracted as one batch and
  executed back-to-back without touching any heap in between;
* entries are ``__slots__`` records recycled through a free list, so the
  steady state allocates no closures and (almost) no records;
* cancelled timers are *lazily deleted*: their entries are flagged dead and
  skipped/swept when their bucket is scanned, and a compaction pass rebuilds
  the structures when dead entries outnumber live ones.

Ordering is governed purely by ``(when, seq)`` — the bucket geometry (slot
width, window span) affects only constant factors, never execution order,
which is what keeps the rebuild bit-exact with the old global heap.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Dict, Generator, Iterable, List, Optional

_SPAN = 4096          # calendar window, in slots
_COMPACT_MIN = 64     # never compact below this many dead entries
_FREE_LIST_MAX = 8192  # recycled-entry pool bound
_MIN_WIDTH = 1e-9
_MAX_WIDTH = 0.25


class SimulationError(Exception):
    """Base class for simulation kernel errors."""


class StopEngine(Exception):
    """Raised inside a callback to halt the event loop immediately."""


class Interrupt(Exception):
    """Thrown into a process when :meth:`Process.interrupt` is called.

    The ``cause`` attribute carries the object passed to ``interrupt``.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class _Entry:
    """One scheduled callback: a recyclable ``(when, seq, fn, args)`` record.

    ``dead`` marks lazily-deleted entries (cancelled timers, consumed
    records); dead entries are skipped during bucket scans and swept by
    compaction instead of being removed eagerly from the middle of a heap.
    """

    __slots__ = ("when", "seq", "fn", "args", "dead")

    def __init__(self, when: float, seq: int, fn: Callable[..., None],
                 args: tuple):
        self.when = when
        self.seq = seq
        self.fn = fn
        self.args = args
        self.dead = False

    def __lt__(self, other: "_Entry") -> bool:
        # Overflow-heap ordering; seq breaks timestamp ties FIFO.
        if self.when != other.when:
            return self.when < other.when
        return self.seq < other.seq


def _entry_seq(entry: _Entry) -> int:
    return entry.seq


class Event:
    """A one-shot occurrence processes can wait on.

    An event starts *pending*; it is completed exactly once with either
    :meth:`succeed` or :meth:`fail`. Callbacks registered before completion
    run (in registration order) when the event fires; callbacks registered
    after completion run immediately.
    """

    __slots__ = ("engine", "value", "failed", "_callbacks")

    _PENDING = object()

    def __init__(self, engine: "Engine"):
        self.engine = engine
        self.value: Any = Event._PENDING
        self.failed = False
        self._callbacks: Optional[List[Callable[["Event"], None]]] = []

    @property
    def triggered(self) -> bool:
        return self.value is not Event._PENDING

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        if self._callbacks is None:
            # Already fired: deliver on the spot to preserve ordering
            # guarantees for late subscribers.
            callback(self)
        else:
            self._callbacks.append(callback)

    def succeed(self, value: Any = None) -> "Event":
        if self.value is not Event._PENDING:
            raise SimulationError("event already triggered")
        self.value = value
        self._fire()
        return self

    def fail(self, exception: BaseException) -> "Event":
        if self.value is not Event._PENDING:
            raise SimulationError("event already triggered")
        self.value = exception
        self.failed = True
        self._fire()
        return self

    def _fire(self) -> None:
        callbacks, self._callbacks = self._callbacks, None
        for callback in callbacks or ():
            callback(self)

    def _defuse(self) -> None:
        """A waiter abandoned this event (interrupt); default is a no-op.

        Subclasses that hold kernel resources on behalf of exactly one
        waiter (timers, store getter gates) override this so the abandoned
        wait cannot fire later with an unclaimed payload.
        """


class Timer(Event):
    """An event that fires after a fixed virtual-time delay.

    Timers may be cancelled before they fire; a cancelled timer never
    triggers and resumes nobody. Cancellation flags the queued entry dead
    (lazy deletion) instead of digging it out of the calendar.
    """

    __slots__ = ("deadline", "cancelled", "_entry")

    def __init__(self, engine: "Engine", delay: float):
        super().__init__(engine)
        if delay < 0:
            raise ValueError("timer delay must be >= 0, got %r" % delay)
        self.deadline = engine.now + delay
        self.cancelled = False
        self._entry: Optional[_Entry] = engine._push_entry(
            self.deadline, self._expire, ())

    def cancel(self) -> None:
        if self.cancelled:
            return
        self.cancelled = True
        self._disarm()

    def _disarm(self) -> None:
        entry = self._entry
        if entry is not None:
            self._entry = None
            if not entry.dead:
                entry.dead = True
                self.engine._note_dead()

    def succeed(self, value: Any = None) -> "Event":
        self._disarm()  # fired early: the queued expiry is dead weight
        return super().succeed(value)

    def fail(self, exception: BaseException) -> "Event":
        self._disarm()
        return super().fail(exception)

    def _defuse(self) -> None:
        self.cancel()

    def _expire(self) -> None:
        self._entry = None
        if not self.cancelled and self.value is Event._PENDING:
            self.succeed(None)


class Process(Event):
    """A running generator coroutine; completes when the generator returns.

    The process's :class:`Event` value is the generator's return value
    (``StopIteration.value``). A crashed process stores the exception and is
    marked failed; waiting on a failed process re-raises the exception unless
    the waiter handles it.
    """

    __slots__ = ("_generator", "name", "_waiting_on", "_alive",
                 "_had_waiters", "_sleep_entry")

    def __init__(self, engine: "Engine", generator: Generator, name: str = ""):
        super().__init__(engine)
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._waiting_on: Optional[Event] = None
        self._sleep_entry: Optional[_Entry] = None
        self._alive = True
        # Tracks whether anyone observed a failure; see _step.
        self._had_waiters = False
        # Start on the next engine tick so the creator finishes its own step
        # first; this keeps creation order from mattering.
        engine._push_entry(engine.now, self._step, (None, None))

    @property
    def alive(self) -> bool:
        return self._alive

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a finished process is a no-op, which makes teardown
        code simpler (kill paths often race with natural completion).
        """
        if not self._alive:
            return
        self.engine._push_entry(self.engine.now, self._deliver_interrupt,
                                (cause,))

    def _deliver_interrupt(self, cause: Any) -> None:
        if not self._alive:
            return
        # Defuse the abandoned waitable: cancel a sleep so it cannot
        # needlessly advance the clock, and flag a queued getter gate so a
        # store cannot hand an item to a waiter that is no longer there
        # (the item would be dropped on the floor — a conservation bug).
        waiting = self._waiting_on
        if waiting is not None:
            waiting._defuse()
        self._waiting_on = None
        entry = self._sleep_entry
        if entry is not None:
            # Defuse a fast-path sleep exactly as Timer.cancel would:
            # flag the queued entry dead so it cannot wake us later.
            self._sleep_entry = None
            if not entry.dead:
                entry.dead = True
                self.engine._note_dead()
        self._step(None, Interrupt(cause))

    def _step(self, value: Any, exc: Optional[BaseException]) -> None:
        if not self._alive:
            return
        try:
            if exc is not None:
                target = self._generator.throw(exc)
            else:
                target = self._generator.send(value)
        except StopIteration as stop:
            self._alive = False
            self.succeed(stop.value)
            return
        except Interrupt:
            # Process chose not to catch its own interrupt: treat as a
            # clean cancellation rather than a crash.
            self._alive = False
            self.succeed(None)
            return
        except StopEngine:
            raise
        except BaseException as error:  # crash: propagate to waiters
            self._alive = False
            self.fail(error)
            if self._callbacks is None and not self._had_waiters:
                raise
            return
        self._wait_on(target)

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        self._had_waiters = True
        super().add_callback(callback)

    def _wait_on(self, target: Any) -> None:
        if isinstance(target, (int, float)):
            # Sleep fast path: a bare numeric yield is by far the hottest
            # wait, so schedule the wake-up entry directly instead of
            # building a Timer + callback chain per sleep. The queued
            # (when, seq) pair, the executed-entry count and the
            # cancellation accounting are identical to the Timer path,
            # so execution order is bit-for-bit unchanged.
            delay = float(target)
            if delay < 0:
                raise ValueError("timer delay must be >= 0, got %r" % delay)
            engine = self.engine
            self._sleep_entry = engine._push_entry(
                engine.now + delay, self._wake_from_sleep, ())
            return
        if not isinstance(target, Event):
            raise SimulationError(
                "process %s yielded %r; expected a delay, Event or Process"
                % (self.name, target)
            )
        self._waiting_on = target
        target.add_callback(self._resume)

    def _wake_from_sleep(self) -> None:
        if self._sleep_entry is None or not self._alive:
            return  # defused by an interrupt delivered this same instant
        self._sleep_entry = None
        self._step(None, None)

    def _resume(self, event: Event) -> None:
        if not self._alive or self._waiting_on is not event:
            return  # stale wake-up after an interrupt redirected us
        self._waiting_on = None
        if event.failed:
            self._step(None, event.value)
        else:
            self._step(event.value, None)


class Engine:
    """The event loop: a calendar queue of recyclable entry records."""

    def __init__(self):
        self.now: float = 0.0
        self._seq = 0
        self._running = False
        # Calendar state.
        self._width = 1e-4
        self._inv_width = 1.0 / self._width
        self._slots: Dict[int, List[_Entry]] = {}
        self._slot_heap: List[int] = []
        self._overflow: List[_Entry] = []
        self._horizon_time = _SPAN * self._width
        # Entry bookkeeping.
        self._free: List[_Entry] = []
        self._pending = 0          # queued entries, dead included
        self._dead = 0             # queued entries flagged dead
        # Width-retune observation window (advances with the calendar).
        self._events_at_retune = 0
        self._time_at_retune = 0.0
        # Instrumentation (surfaced by ``repro bench --perf``).
        self.stat_events = 0          # callbacks executed
        self.stat_heap_pushes = 0     # slot-heap + overflow-heap pushes
        self.stat_heap_pops = 0       # slot-heap + overflow-heap pops
        self.stat_entry_allocs = 0    # fresh _Entry constructions
        self.stat_entry_reuses = 0    # entries served from the free list
        self.stat_cancel_hwm = 0      # high-water mark of dead entries
        self.stat_compactions = 0

    # -- scheduling ------------------------------------------------------

    @property
    def pending_count(self) -> int:
        """Live (non-cancelled) entries currently queued."""
        return self._pending - self._dead

    def stats(self) -> Dict[str, float]:
        """Counters for the bench harness; cheap to call at any time."""
        events = self.stat_events or 1
        return {
            "events_executed": self.stat_events,
            "heap_pushes": self.stat_heap_pushes,
            "heap_pops": self.stat_heap_pops,
            "heap_ops_per_event": (self.stat_heap_pushes
                                   + self.stat_heap_pops) / events,
            "entry_allocs": self.stat_entry_allocs,
            "entry_reuses": self.stat_entry_reuses,
            "allocs_per_event": self.stat_entry_allocs / events,
            "cancelled_high_water": self.stat_cancel_hwm,
            "compactions": self.stat_compactions,
            "pending": self.pending_count,
        }

    def _push_entry(self, when: float, fn: Callable[..., None],
                    args: tuple) -> _Entry:
        seq = self._seq
        self._seq = seq + 1
        free = self._free
        if free:
            entry = free.pop()
            entry.when = when
            entry.seq = seq
            entry.fn = fn
            entry.args = args
            entry.dead = False
            self.stat_entry_reuses += 1
        else:
            entry = _Entry(when, seq, fn, args)
            self.stat_entry_allocs += 1
        self._pending += 1
        self._insert(entry)
        return entry

    def _insert(self, entry: _Entry) -> None:
        when = entry.when
        if when >= self._horizon_time:
            heapq.heappush(self._overflow, entry)
            self.stat_heap_pushes += 1
            return
        slot = int(when * self._inv_width)
        bucket = self._slots.get(slot)
        if bucket is None:
            self._slots[slot] = [entry]
            heapq.heappush(self._slot_heap, slot)
            self.stat_heap_pushes += 1
        else:
            bucket.append(entry)

    def _push(self, when: float, callback: Callable[[], None]) -> None:
        # Compatibility shim for the original heap API.
        self._push_entry(when, callback, ())

    def _recycle(self, entry: _Entry) -> None:
        self._pending -= 1
        free = self._free
        if len(free) < _FREE_LIST_MAX:
            entry.fn = None
            entry.args = ()
            free.append(entry)

    # -- lazy deletion ---------------------------------------------------

    def _note_dead(self) -> None:
        dead = self._dead + 1
        self._dead = dead
        if dead > self.stat_cancel_hwm:
            self.stat_cancel_hwm = dead
        if dead >= _COMPACT_MIN and dead * 2 >= self._pending:
            self._compact()

    def _note_swept(self) -> None:
        if self._dead > 0:
            self._dead -= 1

    def _compact(self) -> None:
        """Rebuild the calendar without dead entries (bounds soak memory)."""
        self.stat_compactions += 1
        slots = self._slots
        new_heap: List[int] = []
        for slot in list(slots):
            bucket = slots[slot]
            live = [e for e in bucket if not e.dead]
            if len(live) != len(bucket):
                for e in bucket:
                    if e.dead:
                        self._recycle(e)
            if live:
                slots[slot] = live
                new_heap.append(slot)
            else:
                del slots[slot]
        heapq.heapify(new_heap)
        self._slot_heap = new_heap
        overflow = self._overflow
        live_over = [e for e in overflow if not e.dead]
        if len(live_over) != len(overflow):
            for e in overflow:
                if e.dead:
                    self._recycle(e)
            heapq.heapify(live_over)
            self._overflow = live_over
        self.stat_heap_pushes += len(new_heap) + len(live_over)
        self._dead = 0

    # -- public scheduling API -------------------------------------------

    def schedule(self, delay: float, callback: Callable[..., None],
                 *args: Any) -> None:
        """Run ``callback(*args)`` after ``delay`` virtual seconds."""
        if delay < 0:
            raise ValueError("delay must be >= 0, got %r" % delay)
        self._push_entry(self.now + delay, callback, args)

    def timeout(self, delay: float) -> Timer:
        """Return an event that fires after ``delay`` virtual seconds."""
        return Timer(self, delay)

    def event(self) -> Event:
        return Event(self)

    def process(self, generator: Generator, name: str = "") -> Process:
        """Start a generator as a concurrent process."""
        return Process(self, generator, name=name)

    # -- composite waits -------------------------------------------------

    def all_of(self, events: Iterable[Event]) -> Event:
        """Event that fires when every input event has fired.

        The first *failed* input fails the gate with that exception (the
        remaining inputs are ignored); previously a failure was silently
        delivered as a plain result value.
        """
        events = list(events)
        gate = self.event()
        remaining = [len(events)]
        if not events:
            gate.succeed([])
            return gate
        results: List[Any] = [None] * len(events)

        def make(index: int) -> Callable[[Event], None]:
            def on_done(ev: Event) -> None:
                if gate.triggered:
                    return
                if ev.failed:
                    gate.fail(ev.value)
                    return
                results[index] = ev.value
                remaining[0] -= 1
                if remaining[0] == 0:
                    gate.succeed(results)

            return on_done

        for i, ev in enumerate(events):
            ev.add_callback(make(i))
        return gate

    def any_of(self, events: Iterable[Event]) -> Event:
        """Event that fires when the first input event fires.

        A winner that *failed* fails the gate with its exception instead of
        being handed to the waiter as a plain value.
        """
        gate = self.event()

        def on_done(ev: Event) -> None:
            if gate.triggered:
                return
            if ev.failed:
                gate.fail(ev.value)
            else:
                gate.succeed(ev)

        for ev in events:
            ev.add_callback(on_done)
        return gate

    # -- running ---------------------------------------------------------

    def _retune_width(self) -> None:
        """Re-fit the slot width to recent traffic at a window boundary.

        Only ever called when the calendar is empty, so no bucket needs
        remapping; purely a constant-factor knob (ordering is untouched).
        """
        executed = self.stat_events - self._events_at_retune
        span = self.now - self._time_at_retune
        if executed >= 64 and span > 0.0:
            width = (span / executed) * 8.0
            if width < _MIN_WIDTH:
                width = _MIN_WIDTH
            elif width > _MAX_WIDTH:
                width = _MAX_WIDTH
            if width > self._width * 4.0 or width * 4.0 < self._width:
                self._width = width
                self._inv_width = 1.0 / width
        self._events_at_retune = self.stat_events
        self._time_at_retune = self.now

    def _advance_window(self) -> None:
        """Move the (empty) calendar window up to the overflow heap's head."""
        self._retune_width()
        overflow = self._overflow
        head = overflow[0].when
        inv = self._inv_width
        base = int(head * inv)
        self._horizon_time = (base + _SPAN) * self._width
        horizon = self._horizon_time
        slots = self._slots
        slot_heap = self._slot_heap
        while overflow and overflow[0].when < horizon:
            entry = heapq.heappop(overflow)
            self.stat_heap_pops += 1
            if entry.dead:
                self._note_swept()
                self._recycle(entry)
                continue
            slot = int(entry.when * inv)
            bucket = slots.get(slot)
            if bucket is None:
                slots[slot] = [entry]
                heapq.heappush(slot_heap, slot)
                self.stat_heap_pushes += 1
            else:
                bucket.append(entry)

    def _execute_batch(self, batch: List[_Entry]) -> bool:
        """Run one same-timestamp batch; returns False on StopEngine."""
        index = 0
        count = len(batch)
        try:
            while index < count:
                entry = batch[index]
                index += 1
                if entry.dead:
                    # Cancelled by an earlier callback in this very batch.
                    self._note_swept()
                    self._recycle(entry)
                    continue
                fn = entry.fn
                args = entry.args
                self._recycle(entry)
                self.stat_events += 1
                if args:
                    fn(*args)
                else:
                    fn()
        except StopEngine:
            for entry in batch[index:]:
                self._insert(entry)
            return False
        except BaseException:
            for entry in batch[index:]:
                self._insert(entry)
            raise
        return True

    def run(self, until: Optional[float] = None) -> float:
        """Run the event loop.

        With ``until``, stops once the clock would pass that time (the clock
        is left exactly at ``until``). Without it, runs until no events
        remain. Returns the final clock value.
        """
        if self._running:
            raise SimulationError("engine is already running")
        self._running = True
        slots = self._slots
        slot_heap = self._slot_heap
        try:
            while True:
                # Find the earliest populated bucket, discarding slot ids
                # whose buckets were consumed (lazy slot-heap deletion).
                while slot_heap and slot_heap[0] not in slots:
                    heapq.heappop(slot_heap)
                    self.stat_heap_pops += 1
                if not slot_heap:
                    overflow = self._overflow
                    if not overflow:
                        break
                    head = overflow[0].when
                    if head != head or head - head != 0.0:  # nan/inf guard
                        if until is not None:
                            break
                        batch = []
                        while overflow and overflow[0].when == head:
                            batch.append(heapq.heappop(overflow))
                            self.stat_heap_pops += 1
                        self.now = head
                        if not self._execute_batch(batch):
                            break
                        continue
                    self._advance_window()
                    slot_heap = self._slot_heap  # compaction may rebuild it
                    continue
                slot = slot_heap[0]
                bucket = slots[slot]
                # Pass 1: earliest live timestamp in the head bucket (the
                # head bucket always contains the global minimum).
                batch_when = None
                for entry in bucket:
                    if not entry.dead:
                        when = entry.when
                        if batch_when is None or when < batch_when:
                            batch_when = when
                if batch_when is None:
                    # Bucket is all dead weight: sweep it without advancing
                    # the clock (matches the old cancelled-timer drop).
                    for entry in bucket:
                        self._note_swept()
                        self._recycle(entry)
                    del slots[slot]
                    continue
                if until is not None and batch_when > until:
                    break
                # Pass 2: split the batch out, sweeping dead entries.
                batch = []
                rest = []
                for entry in bucket:
                    if entry.dead:
                        self._note_swept()
                        self._recycle(entry)
                    elif entry.when == batch_when:
                        batch.append(entry)
                    else:
                        rest.append(entry)
                if rest:
                    slots[slot] = rest
                else:
                    del slots[slot]
                # Requeued remainders can leave buckets out of seq order;
                # a near-sorted sort is cheap and restores FIFO exactly.
                batch.sort(key=_entry_seq)
                self.now = batch_when
                if not self._execute_batch(batch):
                    break
                slot_heap = self._slot_heap  # compaction may rebuild it
            if until is not None and self.now < until:
                self.now = until
        finally:
            self._running = False
        return self.now

    def stop(self) -> None:
        """Halt :meth:`run` from inside a callback/process."""
        raise StopEngine()

"""Discrete-event simulation kernel.

Everything in this reproduction — hosts, switches, workers, controllers —
runs on a single deterministic virtual clock owned by an :class:`Engine`.
Concurrency is expressed with generator-based processes (in the style of
SimPy): a process is a generator that yields *waitables* and is resumed by
the engine when the waitable completes.

A process may yield:

* a ``float``/``int`` — sleep for that many virtual seconds,
* an :class:`Event` — wait until the event is triggered; the ``yield``
  expression evaluates to the event's value,
* a :class:`Process` — wait for another process to finish (processes are
  events that trigger on completion).

The engine is strictly deterministic: events scheduled for the same virtual
time fire in scheduling order (FIFO), so repeated runs with the same seeds
produce identical traces.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, Iterable, List, Optional, Tuple


class SimulationError(Exception):
    """Base class for simulation kernel errors."""


class StopEngine(Exception):
    """Raised inside a callback to halt the event loop immediately."""


class Interrupt(Exception):
    """Thrown into a process when :meth:`Process.interrupt` is called.

    The ``cause`` attribute carries the object passed to ``interrupt``.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence processes can wait on.

    An event starts *pending*; it is completed exactly once with either
    :meth:`succeed` or :meth:`fail`. Callbacks registered before completion
    run (in registration order) when the event fires; callbacks registered
    after completion run immediately.
    """

    _PENDING = object()

    def __init__(self, engine: "Engine"):
        self.engine = engine
        self.value: Any = Event._PENDING
        self.failed = False
        self._callbacks: Optional[List[Callable[["Event"], None]]] = []

    @property
    def triggered(self) -> bool:
        return self.value is not Event._PENDING

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        if self._callbacks is None:
            # Already fired: deliver on the spot to preserve ordering
            # guarantees for late subscribers.
            callback(self)
        else:
            self._callbacks.append(callback)

    def succeed(self, value: Any = None) -> "Event":
        if self.triggered:
            raise SimulationError("event already triggered")
        self.value = value
        self._fire()
        return self

    def fail(self, exception: BaseException) -> "Event":
        if self.triggered:
            raise SimulationError("event already triggered")
        self.value = exception
        self.failed = True
        self._fire()
        return self

    def _fire(self) -> None:
        callbacks, self._callbacks = self._callbacks, None
        for callback in callbacks or ():
            callback(self)


class Timer(Event):
    """An event that fires after a fixed virtual-time delay.

    Timers may be cancelled before they fire; a cancelled timer never
    triggers and resumes nobody.
    """

    def __init__(self, engine: "Engine", delay: float):
        super().__init__(engine)
        if delay < 0:
            raise ValueError("timer delay must be >= 0, got %r" % delay)
        self.deadline = engine.now + delay
        self.cancelled = False
        engine._push(self.deadline, self._expire)

    def cancel(self) -> None:
        self.cancelled = True

    def _expire(self) -> None:
        if not self.cancelled and not self.triggered:
            self.succeed(None)


class Process(Event):
    """A running generator coroutine; completes when the generator returns.

    The process's :class:`Event` value is the generator's return value
    (``StopIteration.value``). A crashed process stores the exception and is
    marked failed; waiting on a failed process re-raises the exception unless
    the waiter handles it.
    """

    def __init__(self, engine: "Engine", generator: Generator, name: str = ""):
        super().__init__(engine)
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._waiting_on: Optional[Event] = None
        self._alive = True
        # Start on the next engine tick so the creator finishes its own step
        # first; this keeps creation order from mattering.
        engine._push(engine.now, lambda: self._step(None, None))

    @property
    def alive(self) -> bool:
        return self._alive

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a finished process is a no-op, which makes teardown
        code simpler (kill paths often race with natural completion).
        """
        if not self._alive:
            return
        self.engine._push(self.engine.now, lambda: self._deliver_interrupt(cause))

    def _deliver_interrupt(self, cause: Any) -> None:
        if not self._alive:
            return
        # Cancel an abandoned sleep so it cannot needlessly advance the
        # clock after the process has moved on.
        if isinstance(self._waiting_on, Timer):
            self._waiting_on.cancel()
        self._waiting_on = None
        self._step(None, Interrupt(cause))

    def _step(self, value: Any, exc: Optional[BaseException]) -> None:
        if not self._alive:
            return
        try:
            if exc is not None:
                target = self._generator.throw(exc)
            else:
                target = self._generator.send(value)
        except StopIteration as stop:
            self._alive = False
            self.succeed(stop.value)
            return
        except Interrupt:
            # Process chose not to catch its own interrupt: treat as a
            # clean cancellation rather than a crash.
            self._alive = False
            self.succeed(None)
            return
        except StopEngine:
            raise
        except BaseException as error:  # crash: propagate to waiters
            self._alive = False
            self.fail(error)
            if self._callbacks is None and not self._had_waiters:
                raise
            return
        self._wait_on(target)

    # Tracks whether anyone observed the failure; see _step.
    _had_waiters = False

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        self._had_waiters = True
        super().add_callback(callback)

    def _wait_on(self, target: Any) -> None:
        if isinstance(target, (int, float)):
            target = Timer(self.engine, float(target))
        if not isinstance(target, Event):
            raise SimulationError(
                "process %s yielded %r; expected a delay, Event or Process"
                % (self.name, target)
            )
        self._waiting_on = target
        target.add_callback(self._resume)

    def _resume(self, event: Event) -> None:
        if not self._alive or self._waiting_on is not event:
            return  # stale wake-up after an interrupt redirected us
        self._waiting_on = None
        if event.failed:
            self._step(None, event.value)
        else:
            self._step(event.value, None)


class Engine:
    """The event loop: a priority queue of (time, seq, callback) entries."""

    def __init__(self):
        self.now: float = 0.0
        self._heap: List[Tuple[float, int, Callable[[], None]]] = []
        self._seq = itertools.count()
        self._running = False

    # -- scheduling ------------------------------------------------------

    def _push(self, when: float, callback: Callable[[], None]) -> None:
        heapq.heappush(self._heap, (when, next(self._seq), callback))

    def schedule(self, delay: float, callback: Callable[..., None], *args: Any) -> None:
        """Run ``callback(*args)`` after ``delay`` virtual seconds."""
        if delay < 0:
            raise ValueError("delay must be >= 0, got %r" % delay)
        self._push(self.now + delay, lambda: callback(*args))

    def timeout(self, delay: float) -> Timer:
        """Return an event that fires after ``delay`` virtual seconds."""
        return Timer(self, delay)

    def event(self) -> Event:
        return Event(self)

    def process(self, generator: Generator, name: str = "") -> Process:
        """Start a generator as a concurrent process."""
        return Process(self, generator, name=name)

    # -- composite waits -------------------------------------------------

    def all_of(self, events: Iterable[Event]) -> Event:
        """Event that fires when every input event has fired."""
        events = list(events)
        gate = self.event()
        remaining = [len(events)]
        if not events:
            gate.succeed([])
            return gate
        results: List[Any] = [None] * len(events)

        def make(index: int) -> Callable[[Event], None]:
            def on_done(ev: Event) -> None:
                results[index] = ev.value
                remaining[0] -= 1
                if remaining[0] == 0 and not gate.triggered:
                    gate.succeed(results)

            return on_done

        for i, ev in enumerate(events):
            ev.add_callback(make(i))
        return gate

    def any_of(self, events: Iterable[Event]) -> Event:
        """Event that fires when the first input event fires."""
        gate = self.event()

        def on_done(ev: Event) -> None:
            if not gate.triggered:
                gate.succeed(ev)

        for ev in events:
            ev.add_callback(on_done)
        return gate

    # -- running ---------------------------------------------------------

    def run(self, until: Optional[float] = None) -> float:
        """Run the event loop.

        With ``until``, stops once the clock would pass that time (the clock
        is left exactly at ``until``). Without it, runs until no events
        remain. Returns the final clock value.
        """
        if self._running:
            raise SimulationError("engine is already running")
        self._running = True
        try:
            while self._heap:
                when, _seq, callback = self._heap[0]
                # Cancelled timers are dead weight: drop them without
                # advancing the clock.
                owner = getattr(callback, "__self__", None)
                if isinstance(owner, Timer) and (owner.cancelled
                                                 or owner.triggered):
                    heapq.heappop(self._heap)
                    continue
                if until is not None and when > until:
                    break
                heapq.heappop(self._heap)
                self.now = when
                try:
                    callback()
                except StopEngine:
                    break
            if until is not None and self.now < until:
                self.now = until
        finally:
            self._running = False
        return self.now

    def stop(self) -> None:
        """Halt :meth:`run` from inside a callback/process."""
        raise StopEngine()

"""Cluster-wide tuple delivery accounting (the loss-audit layer).

Typhoon's central claim (§3.3.1, §3.5) is that routing reconfiguration
and switch-level replication happen *without tuple loss*. The data plane
nevertheless has legitimate drop sites (ports vanish during faults,
reassembly buffers are bounded, channels close mid-flight), and before
this module each of them incremented a private counter that nothing ever
cross-checked. The :class:`DeliveryLedger` gives every drop and delivery
site one place to report into, keyed by ``(scope, layer, reason)``, so a
finished run can be audited with a conservation identity instead of an
assertion of faith:

    sent + injected + replicated
        == delivered + controller_delivered + drops
           + buffered + pending_reassembly          (once in-flight = 0)

* ``sent`` — tuples a worker transport accepted for transmission (one
  per destination enqueue; a broadcast counts once at the sender).
* ``injected`` — tuples the controller pushed into the data plane via
  PacketOut (control tuples never pass a transport's send path).
* ``replicated`` — extra copies the switches created: a frame forwarded
  to *k* outputs adds ``k - 1`` copies of its payload tuples.
* ``delivered`` / ``controller_delivered`` — tuples handed to a worker
  executor / lifted to the controller via PacketIn.
* ``drops`` — itemized by (scope, layer, reason); see the ``R_*``
  reason constants below for the taxonomy.
* ``buffered`` / ``pending_reassembly`` — snapshot terms contributed by
  the auditor (tuples still in sender batch buffers / partially
  reassembled at receivers).

The *scope* is the 16-bit Typhoon application id (one per submitted
topology); :meth:`DeliveryLedger.name_scope` maps it back to the
topology id for rendering. Components hold an optional ledger reference
and report only when one is wired — the ledger itself imports nothing
above the simulation kernel, so every layer (net, sdn, core, streaming)
can use it without import cycles. Frame-carrying layers do not know how
many tuples a payload holds; the cluster runtime installs an
``inspector`` callback that maps an opaque frame/message to
``(scope, tuple_count)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

# -- layer names ----------------------------------------------------------

LAYER_TRANSPORT = "transport"      #: worker I/O library (north/southbound)
LAYER_SWITCH = "switch"            #: host software SDN switch
LAYER_FABRIC = "fabric"            #: host fabric / tunnel selection
LAYER_CHANNEL = "channel"          #: TCP channels (tunnels, Storm links)
LAYER_REASSEMBLY = "reassembly"    #: fragment reassembly at receivers
LAYER_REGISTRY = "registry"        #: Storm worker registry lookups
LAYER_CONTROLLER = "controller"    #: SDN controller event queue

# -- drop reasons ---------------------------------------------------------

R_TUNNEL_UNROUTABLE = "tunnel-unroutable"   #: no tunnel to the peer host
R_CLOSED_PORT = "closed-port"               #: frame reached a closed transport
R_REASSEMBLY_GAP = "reassembly-gap"         #: missing/out-of-order fragment
R_REASSEMBLY_EVICTED = "reassembly-evicted"  #: bounded-buffer eviction
R_CHANNEL_CLOSED = "channel-closed"         #: in-flight data on a closed channel
R_AFTER_CLOSE = "after-close"               #: buffered tuples on a closed transport
R_PENDING_AT_CLOSE = "pending-at-close"     #: partial reassembly on a closed transport
R_DELIVER_REJECTED = "deliver-rejected"     #: executor refused the delivery
R_BACKLOG_OVERFLOW = "backlog-overflow"     #: switch forwarding backlog
R_TABLE_MISS = "table-miss"                 #: no matching flow rule
R_PORT_DOWN = "port-down"                   #: output port missing or down
R_NO_OUTPUT = "no-output"                   #: matched rule with no live output
R_NO_GROUP = "no-group"                     #: GroupAction to an uninstalled group
R_NO_CONTROLLER = "no-controller"           #: PacketIn with no controller attached
R_UNRESOLVED = "unresolved-worker"          #: Storm registry lookup failed
R_LINK_LOSS = "link-loss"                   #: injected lossy-link drop
R_SWITCH_DOWN = "switch-down"               #: frame hit a crashed switch
R_METER_LIMIT = "meter-limit"               #: rate meter queue overflow
R_CONTROL_BACKLOG = "control-backlog"       #: bounded control-plane queue full

#: Scope used when the reporting site cannot attribute an application.
UNKNOWN_SCOPE = -1


def _bump(table: Dict, key, count: int) -> None:
    table[key] = table.get(key, 0) + count


class DeliveryLedger:
    """Append-only delivery/drop accounting shared by every data-plane layer.

    All ``record_*`` methods are cheap dictionary bumps; the ledger is
    safe to leave wired in production runs. ``inspector`` is an optional
    ``Callable[[object], Optional[Tuple[int, int]]]`` returning
    ``(scope, tuple_count)`` for an opaque frame/batch, installed by the
    cluster runtime (see :func:`repro.core.audit.typhoon_frame_tuples`).
    """

    def __init__(self,
                 inspector: Optional[Callable[[object],
                                              Optional[Tuple[int, int]]]] = None):
        self.inspector = inspector
        self.scope_names: Dict[int, str] = {}
        self.sent: Dict[int, int] = {}
        self.injected: Dict[int, int] = {}
        self.replicated: Dict[int, int] = {}
        self.delivered: Dict[int, int] = {}
        self.controller_delivered: Dict[int, int] = {}
        self.drops: Dict[Tuple[int, str, str], int] = {}
        #: Frames whose payload the inspector could not attribute —
        #: diagnostic only; their tuples are invisible to the ledger.
        self.unattributable_frames = 0

    # -- scope naming -----------------------------------------------------

    def name_scope(self, scope: int, name: str) -> None:
        """Label a scope (application id) with its topology id."""
        self.scope_names[scope] = name

    def scope_name(self, scope: int) -> str:
        if scope == UNKNOWN_SCOPE:
            return "(unknown)"
        return self.scope_names.get(scope, "app-%d" % scope)

    # -- tuple-count reporting sites --------------------------------------

    def record_sent(self, scope: int, count: int = 1) -> None:
        # Called once per tuple on the transport hot path; the bump is
        # inlined rather than delegated to _bump.
        sent = self.sent
        sent[scope] = sent.get(scope, 0) + count

    def record_injected(self, scope: int, count: int = 1) -> None:
        _bump(self.injected, scope, count)

    def record_replicated(self, scope: int, count: int = 1) -> None:
        _bump(self.replicated, scope, count)

    def record_delivered(self, scope: int, count: int = 1) -> None:
        delivered = self.delivered
        delivered[scope] = delivered.get(scope, 0) + count

    def record_controller_delivered(self, scope: int, count: int = 1) -> None:
        _bump(self.controller_delivered, scope, count)

    def record_drop(self, scope: int, layer: str, reason: str,
                    count: int = 1) -> None:
        if count:
            _bump(self.drops, (scope, layer, reason), count)

    # -- frame-level reporting sites (need the inspector) -----------------

    def inspect(self, frame: object) -> Optional[Tuple[int, int]]:
        if self.inspector is None:
            return None
        try:
            return self.inspector(frame)
        except Exception:
            return None

    def record_frame_drop(self, layer: str, reason: str, frame: object,
                          copies: int = 1) -> None:
        """Attribute a dropped frame's payload tuples to (layer, reason)."""
        info = self.inspect(frame)
        if info is None:
            self.unattributable_frames += 1
            return
        scope, tuples = info
        self.record_drop(scope, layer, reason, tuples * copies)

    def record_frame_replicated(self, frame: object, extra_copies: int) -> None:
        """A switch emitted ``extra_copies`` additional copies of a frame."""
        if extra_copies <= 0:
            return
        info = self.inspect(frame)
        if info is None:
            self.unattributable_frames += 1
            return
        scope, tuples = info
        if tuples:
            self.record_replicated(scope, tuples * extra_copies)

    def record_frame_injected(self, frame: object) -> None:
        info = self.inspect(frame)
        if info is None:
            self.unattributable_frames += 1
            return
        scope, tuples = info
        if tuples:
            self.record_injected(scope, tuples)

    def record_frame_controller_delivered(self, frame: object) -> None:
        info = self.inspect(frame)
        if info is None:
            self.unattributable_frames += 1
            return
        scope, tuples = info
        if tuples:
            self.record_controller_delivered(scope, tuples)

    def record_frame_controller_dropped(self, layer: str, reason: str,
                                        frame: object) -> None:
        """A frame already counted ``controller_delivered`` was dropped
        before the control plane processed it (bounded-queue overflow
        during a controller outage). Move its tuples from
        ``controller_delivered`` to an attributed drop so the
        conservation identity stays exact."""
        info = self.inspect(frame)
        if info is None:
            self.unattributable_frames += 1
            return
        scope, tuples = info
        if tuples:
            self.record_controller_delivered(scope, -tuples)
            self.record_drop(scope, layer, reason, tuples)

    # -- aggregate views ---------------------------------------------------

    def scopes(self) -> List[int]:
        seen = set(self.sent) | set(self.delivered) | set(self.injected)
        seen |= set(self.replicated) | set(self.controller_delivered)
        seen |= {scope for scope, _layer, _reason in self.drops}
        return sorted(seen)

    def total_sent(self) -> int:
        return sum(self.sent.values())

    def total_delivered(self) -> int:
        return sum(self.delivered.values())

    def total_drops(self, scope: Optional[int] = None) -> int:
        return sum(count for (s, _l, _r), count in self.drops.items()
                   if scope is None or s == scope)

    def drops_by_reason(self) -> Dict[Tuple[str, str], int]:
        """Aggregate drops over scopes: (layer, reason) -> count."""
        out: Dict[Tuple[str, str], int] = {}
        for (_scope, layer, reason), count in self.drops.items():
            _bump(out, (layer, reason), count)
        return out

    def drop_rows(self) -> List[Tuple[str, str, str, int]]:
        """Render-ready rows: (topology, layer, reason, tuples)."""
        rows = []
        for (scope, layer, reason), count in sorted(
                self.drops.items(),
                key=lambda item: (item[0][0], item[0][1], item[0][2])):
            rows.append((self.scope_name(scope), layer, reason, count))
        return rows


@dataclass
class ConservationReport:
    """Snapshot of the conservation identity over one cluster run.

    ``unattributed`` is the residual of the identity: positive means
    tuples vanished without an attributed drop (a leak); negative means
    double counting (delivered or dropped more than was ever sent).
    A quiesced, leak-free run reports ``unattributed == 0``.
    """

    sent: int = 0
    injected: int = 0
    replicated: int = 0
    delivered: int = 0
    controller_delivered: int = 0
    drops: int = 0
    buffered: int = 0
    pending_reassembly: int = 0
    drop_rows: List[Tuple[str, str, str, int]] = field(default_factory=list)
    unattributable_frames: int = 0

    @property
    def inputs(self) -> int:
        return self.sent + self.injected + self.replicated

    @property
    def accounted(self) -> int:
        return (self.delivered + self.controller_delivered + self.drops
                + self.buffered + self.pending_reassembly)

    @property
    def unattributed(self) -> int:
        return self.inputs - self.accounted

    @property
    def ok(self) -> bool:
        return self.unattributed == 0 and self.unattributable_frames == 0

    def to_dict(self) -> Dict[str, object]:
        return {
            "sent": self.sent,
            "injected": self.injected,
            "replicated": self.replicated,
            "delivered": self.delivered,
            "controller_delivered": self.controller_delivered,
            "drops": self.drops,
            "buffered": self.buffered,
            "pending_reassembly": self.pending_reassembly,
            "unattributed": self.unattributed,
            "ok": self.ok,
            "drop_rows": [
                {"topology": topology, "layer": layer, "reason": reason,
                 "tuples": count}
                for topology, layer, reason, count in self.drop_rows
            ],
        }

    def render(self) -> str:
        """Aligned per-layer conservation table (the ``repro audit`` view)."""
        lines = ["delivery conservation audit",
                 "---------------------------"]
        if self.drop_rows:
            widths = [max(len(str(row[i])) for row in
                          [("topology", "layer", "reason", "tuples")]
                          + self.drop_rows)
                      for i in range(4)]
            header = ("topology", "layer", "reason", "tuples")
            lines.append("  ".join(str(cell).ljust(width)
                                   for cell, width in zip(header, widths)))
            lines.append("  ".join("-" * width for width in widths))
            for row in self.drop_rows:
                lines.append("  ".join(str(cell).ljust(width)
                                       for cell, width in zip(row, widths)))
        else:
            lines.append("(no drops recorded)")
        lines.append("")
        lines.append("sent=%d injected=%d replicated=%d" %
                     (self.sent, self.injected, self.replicated))
        lines.append("delivered=%d to-controller=%d drops=%d "
                     "buffered=%d pending-reassembly=%d" %
                     (self.delivered, self.controller_delivered, self.drops,
                      self.buffered, self.pending_reassembly))
        if self.unattributable_frames:
            lines.append("unattributable frames=%d"
                         % self.unattributable_frames)
        lines.append("unattributed loss=%d -> %s"
                     % (self.unattributed, "OK" if self.ok else "LEAK"))
        return "\n".join(lines)


class ConservationError(AssertionError):
    """Raised when a run's delivery accounting does not balance."""

    def __init__(self, report: ConservationReport):
        super().__init__("tuple conservation violated\n" + report.render())
        self.report = report

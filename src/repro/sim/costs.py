"""Calibrated cost model for virtual-time accounting.

Every CPU/network action in the simulation charges virtual time from one
shared :class:`CostModel`. The default constants are calibrated so the
baseline microbenchmarks land near the paper's magnitudes (Fig. 8: ~1 M
tuples/s for a two-worker chain; ack enabled ≈ half that) while preserving
the structural facts the evaluation depends on:

* serialization dominates tuple transfer cost (the paper cites 60–90 % of
  transfer time), and the Storm baseline pays it **once per destination**;
* Typhoon pays serialization once per tuple plus small per-packet and
  per-batch (JNI / ring) overheads, and switch-level replication is cheap;
* remote transfers add tunnel latency but similar per-tuple CPU, so LOCAL
  and REMOTE throughput are comparable (Fig. 8a) while latency differs.

All times are in (virtual) seconds, sizes in bytes.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

US = 1e-6  # one microsecond
MS = 1e-3  # one millisecond


@dataclass
class CostModel:
    """Virtual-time costs charged by the simulation.

    The groups below mirror the layers of the system: application compute,
    (de)serialization, the Storm TCP transport, the Typhoon I/O layer and
    SDN switch, and control-plane timing constants.
    """

    # -- application layer -------------------------------------------------
    app_compute_per_tuple: float = 0.10 * US

    # -- serialization (framework layer, both systems) ----------------------
    serialize_per_tuple: float = 0.40 * US
    serialize_per_byte: float = 0.0020 * US
    deserialize_per_tuple: float = 0.30 * US
    deserialize_per_byte: float = 0.0015 * US

    # -- Storm baseline transport (application-level TCP) --------------------
    tcp_send_per_message: float = 4.0 * US     # syscall + netty enqueue
    tcp_send_per_byte: float = 0.0008 * US
    tcp_recv_per_message: float = 3.0 * US
    tcp_recv_per_byte: float = 0.0008 * US
    storm_enqueue_per_tuple: float = 0.30 * US  # per-destination buffer append
    # Fixed per-message latency of Storm's threaded transfer pipeline
    # (executor send thread -> worker transfer queue -> Netty). Typhoon's
    # shared-memory rings avoid these hops (§5); pipelined, so it costs
    # latency but not throughput.
    storm_pipeline_delay: float = 0.8 * MS

    # -- Typhoon I/O layer ---------------------------------------------------
    typhoon_enqueue_per_tuple: float = 0.30 * US  # northbound queueing
    jni_call_overhead: float = 2.5 * US        # per batch crossing JNI
    packetize_per_packet: float = 0.45 * US
    packetize_per_byte: float = 0.0008 * US
    depacketize_per_packet: float = 0.40 * US
    depacketize_per_byte: float = 0.0008 * US
    ring_op_per_packet: float = 0.15 * US      # shared-memory ring enqueue/dequeue

    # -- SDN software switch -------------------------------------------------
    switch_lookup_per_packet: float = 0.30 * US
    switch_copy_per_output: float = 0.12 * US  # per replicated output port
    switch_copy_per_byte: float = 0.0002 * US

    # -- network paths ---------------------------------------------------------
    loopback_latency: float = 3.0 * US          # same-host delivery
    lan_latency: float = 50.0 * US              # inter-host one-way latency
    lan_bandwidth_bytes_per_sec: float = 10e9 / 8  # 10 GbE

    # -- batching / flushing ---------------------------------------------------
    batch_flush_interval: float = 1.0 * MS     # flush partial batches

    # -- coordination & control plane -----------------------------------------
    coordinator_op_latency: float = 1.0 * MS   # ZooKeeper read/write round trip
    openflow_rtt: float = 0.5 * MS             # controller <-> switch message
    flow_install_latency: float = 0.3 * MS     # rule insertion in switch
    worker_launch_latency: float = 2.0         # fetch binaries + JVM start
    worker_kill_latency: float = 0.05
    flow_idle_timeout: float = 10.0

    # -- failure detection ------------------------------------------------------
    heartbeat_interval: float = 3.0
    heartbeat_timeout: float = 30.0            # Storm default task timeout
    supervisor_restart_delay: float = 1.0      # local restart after crash
    port_event_latency: float = 10.0 * MS      # switch -> controller PortStatus

    # -- memory model (auto-scaler / OOM experiments) -----------------------------
    worker_memory_limit_bytes: int = 48 * 1024 * 1024
    oom_check_interval: float = 1.0

    # -- acking -------------------------------------------------------------------
    ack_per_tuple: float = 0.35 * US           # XOR ledger update in acker
    ack_message_bytes: int = 40

    def scaled(self, **overrides: float) -> "CostModel":
        """Return a copy with the given fields replaced."""
        return replace(self, **overrides)


DEFAULT_COSTS = CostModel()


def transmission_delay(costs: CostModel, nbytes: int, remote: bool) -> float:
    """One-way network delay for ``nbytes`` between two workers' hosts."""
    if not remote:
        return costs.loopback_latency
    return costs.lan_latency + nbytes / costs.lan_bandwidth_bytes_per_sec

"""Measurement utilities for experiments.

The paper's evaluation reports three kinds of data, all reproduced here:

* per-second throughput time series (Figs. 10, 11, 12, 14) —
  :class:`RateMeter`,
* end-to-end latency CDFs (Figs. 8c, 8d) — :class:`Distribution`,
* steady-state throughput bars (Figs. 8a, 8b, 9) — :class:`RateMeter`
  totals over a measurement window.
"""

from __future__ import annotations

import bisect
import math
from typing import Dict, Iterable, List, Optional, Tuple

from .engine import Engine


class Counter:
    """A monotonically increasing named counter."""

    def __init__(self, name: str = ""):
        self.name = name
        self.value = 0

    def add(self, amount: int = 1) -> None:
        self.value += amount


class TimeSeries:
    """Ordered (time, value) samples."""

    def __init__(self, name: str = ""):
        self.name = name
        self.times: List[float] = []
        self.values: List[float] = []

    def record(self, time: float, value: float) -> None:
        if self.times and time < self.times[-1]:
            raise ValueError("time series must be recorded in time order")
        self.times.append(time)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.times)

    def __iter__(self):
        return iter(zip(self.times, self.values))

    def value_at(self, time: float) -> float:
        """Last value recorded at or before ``time`` (0.0 before any)."""
        index = bisect.bisect_right(self.times, time) - 1
        if index < 0:
            return 0.0
        return self.values[index]

    def window(self, start: float, end: float) -> "TimeSeries":
        out = TimeSeries(self.name)
        for t, v in self:
            if start <= t <= end:
                out.record(t, v)
        return out

    def mean(self) -> float:
        if not self.values:
            return 0.0
        return sum(self.values) / len(self.values)

    def max(self) -> float:
        return max(self.values) if self.values else 0.0

    def min(self) -> float:
        return min(self.values) if self.values else 0.0


class RateMeter:
    """Counts events and buckets them into a per-interval rate series.

    ``mark(n)`` records ``n`` events at the engine's current time. The
    resulting series reports events/second per bucket, matching the
    "# Tuples/sec over time" plots in the paper.
    """

    def __init__(self, engine: Engine, name: str = "", interval: float = 1.0):
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.engine = engine
        self.name = name
        self.interval = interval
        self.total = 0
        self._buckets: Dict[int, int] = {}
        self._start_time: Optional[float] = None
        self._last_time: Optional[float] = None

    def mark(self, count: int = 1) -> None:
        now = self.engine.now
        if self._start_time is None:
            self._start_time = now
        self._last_time = now
        self.total += count
        bucket = int(now // self.interval)
        buckets = self._buckets
        buckets[bucket] = buckets.get(bucket, 0) + count

    def reset(self) -> None:
        self.total = 0
        self._buckets.clear()
        self._start_time = None
        self._last_time = None

    def series(self, start: float = 0.0, end: Optional[float] = None) -> TimeSeries:
        """Per-bucket rate series; empty buckets report 0."""
        out = TimeSeries(self.name)
        if end is None:
            end = self.engine.now
        first = int(start // self.interval)
        last = int(math.ceil(end / self.interval))
        for bucket in range(first, last):
            count = self._buckets.get(bucket, 0)
            out.record(bucket * self.interval, count / self.interval)
        return out

    def rate(self, start: Optional[float] = None, end: Optional[float] = None) -> float:
        """Average events/second over [start, end] (defaults: full run).

        Buckets partially covered by the window contribute pro rata, so
        sub-bucket windows measure correctly.
        """
        if end is None:
            end = self.engine.now
        if start is None:
            start = self._start_time or 0.0
        duration = end - start
        if duration <= 0:
            return 0.0
        total = 0.0
        for bucket, count in self._buckets.items():
            bucket_start = bucket * self.interval
            bucket_end = bucket_start + self.interval
            overlap = min(end, bucket_end) - max(start, bucket_start)
            if overlap > 0:
                total += count * (overlap / self.interval)
        return total / duration


class Distribution:
    """Collects scalar samples; reports percentiles and CDF points."""

    def __init__(self, name: str = ""):
        self.name = name
        self._samples: List[float] = []
        self._sorted = True

    def record(self, value: float) -> None:
        if self._samples and value < self._samples[-1]:
            self._sorted = False
        self._samples.append(value)

    def extend(self, values: Iterable[float]) -> None:
        for value in values:
            self.record(value)

    def __len__(self) -> int:
        return len(self._samples)

    def samples(self) -> List[float]:
        """A copy of the recorded samples (sorted once any percentile /
        CDF query has run; insertion order before that)."""
        return list(self._samples)

    def total(self) -> float:
        """Sum of all recorded samples (0.0 when empty).

        Uses :func:`math.fsum`, whose result is the correctly rounded
        real sum and therefore independent of recording order — two
        holders of the same sample multiset always agree exactly.
        """
        return math.fsum(self._samples)

    def _ensure_sorted(self) -> List[float]:
        if not self._sorted:
            self._samples.sort()
            self._sorted = True
        return self._samples

    def percentile(self, p: float) -> float:
        """Linear-interpolated percentile, p in [0, 100]."""
        if not self._samples:
            raise ValueError("no samples recorded")
        if not 0 <= p <= 100:
            raise ValueError("percentile must be in [0, 100]")
        data = self._ensure_sorted()
        if len(data) == 1:
            return data[0]
        rank = (p / 100) * (len(data) - 1)
        low = int(math.floor(rank))
        high = int(math.ceil(rank))
        if low == high:
            return data[low]
        frac = rank - low
        return data[low] * (1 - frac) + data[high] * frac

    @property
    def median(self) -> float:
        return self.percentile(50)

    def mean(self) -> float:
        if not self._samples:
            raise ValueError("no samples recorded")
        return sum(self._samples) / len(self._samples)

    def cdf(self, points: int = 100) -> List[Tuple[float, float]]:
        """Return up to ``points`` (value, cumulative_fraction) pairs."""
        if points < 1:
            raise ValueError("points must be >= 1, got %d" % points)
        data = self._ensure_sorted()
        if not data:
            return []
        n = len(data)
        if n <= points:
            return [(v, (i + 1) / n) for i, v in enumerate(data)]
        step = n / points
        out = []
        for k in range(points):
            i = min(n - 1, int(round((k + 1) * step)) - 1)
            out.append((data[i], (i + 1) / n))
        return out

    def fraction_below(self, threshold: float) -> float:
        data = self._ensure_sorted()
        if not data:
            return 0.0
        return bisect.bisect_right(data, threshold) / len(data)


class MetricsRegistry:
    """Named registry so components can publish metrics without plumbing."""

    def __init__(self, engine: Engine):
        self.engine = engine
        self.meters: Dict[str, RateMeter] = {}
        self.counters: Dict[str, Counter] = {}
        self.distributions: Dict[str, Distribution] = {}
        self.series: Dict[str, TimeSeries] = {}

    def meter(self, name: str, interval: float = 1.0) -> RateMeter:
        if name not in self.meters:
            self.meters[name] = RateMeter(self.engine, name, interval)
        return self.meters[name]

    def counter(self, name: str) -> Counter:
        if name not in self.counters:
            self.counters[name] = Counter(name)
        return self.counters[name]

    def distribution(self, name: str) -> Distribution:
        if name not in self.distributions:
            self.distributions[name] = Distribution(name)
        return self.distributions[name]

    def timeseries(self, name: str) -> TimeSeries:
        if name not in self.series:
            self.series[name] = TimeSeries(name)
        return self.series[name]

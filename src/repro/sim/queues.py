"""Queues connecting simulation processes.

:class:`Store` is the workhorse: a FIFO channel with optional capacity.
Producers either *drop* on overflow (modelling switch TX rings — §8 of the
paper discusses switch-level tuple drops) or *block* (modelling TCP
backpressure in the Storm baseline). Consumers wait on :meth:`Store.get`.

Stores also track occupancy statistics (peak depth, drop counts, byte
footprint) because several control-plane applications in the paper —
notably the auto-scaler — act on queue levels reported by workers.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Optional, Tuple

from .engine import Engine, Event

DROP = "drop"
BLOCK = "block"


class _GetGate(Event):
    """A queued consumer wait that can be *defused*.

    When the waiting process is interrupted (worker kill, fault injection)
    the kernel calls :meth:`_defuse` on whatever the process was waiting
    on. A defused gate is still sitting in ``Store._getters``; without the
    flag, the next ``_accept`` would succeed the stale gate and the item
    would vanish — the waiter's ``_resume`` staleness guard discards the
    wake-up, so nobody ever sees the payload. Flagged gates are skipped and
    the item goes to the next live getter or back onto the queue.
    """

    __slots__ = ("defused",)

    def __init__(self, engine: Engine):
        super().__init__(engine)
        self.defused = False

    def _defuse(self) -> None:
        self.defused = True


class Store:
    """FIFO channel between processes with optional capacity.

    Parameters
    ----------
    engine:
        Owning simulation engine.
    capacity:
        Maximum queued items; ``None`` means unbounded.
    overflow:
        ``"drop"`` (default) discards the newest item when full;
        ``"block"`` makes :meth:`put` return a pending event the producer
        must wait on.
    sizer:
        Optional callable mapping an item to its byte footprint, used to
        maintain :attr:`bytes_queued` (the auto-scaler benchmarks use this
        to model worker memory pressure / OOM).
    """

    def __init__(
        self,
        engine: Engine,
        capacity: Optional[int] = None,
        overflow: str = DROP,
        sizer: Optional[Callable[[Any], int]] = None,
    ):
        if overflow not in (DROP, BLOCK):
            raise ValueError("overflow must be 'drop' or 'block'")
        if capacity is not None and capacity <= 0:
            raise ValueError("capacity must be positive or None")
        self.engine = engine
        self.capacity = capacity
        self.overflow = overflow
        self.sizer = sizer
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[Tuple[Event, Any]] = deque()
        self.put_count = 0
        self.drop_count = 0
        self.peak_depth = 0
        self.bytes_queued = 0

    def __len__(self) -> int:
        return len(self._items)

    @property
    def depth(self) -> int:
        return len(self._items)

    @property
    def full(self) -> bool:
        return self.capacity is not None and len(self._items) >= self.capacity

    def _accept(self, item: Any) -> None:
        self.put_count += 1
        if self.sizer is not None:
            self.bytes_queued += self.sizer(item)
        # Hand straight to a waiting consumer when one exists; otherwise
        # enqueue. Waiters are resumed in FIFO order.
        while self._getters:
            getter = self._getters.popleft()
            if not getter.triggered and not getter.defused:
                if self.sizer is not None:
                    self.bytes_queued -= self.sizer(item)
                getter.succeed(item)
                return
        self._items.append(item)
        if len(self._items) > self.peak_depth:
            self.peak_depth = len(self._items)

    def put(self, item: Any) -> Any:
        """Offer ``item`` to the store.

        * Unbounded or non-full store: item accepted; returns ``True``.
        * Full + ``overflow="drop"``: item discarded; returns ``False``.
        * Full + ``overflow="block"``: returns a pending :class:`Event`
          the producer must ``yield``; the item is delivered when space
          frees up.
        """
        if not self.full:
            self._accept(item)
            return True
        if self.overflow == DROP:
            self.drop_count += 1
            return False
        gate = self.engine.event()
        self._putters.append((gate, item))
        return gate

    def get(self) -> Event:
        """Return an event that fires with the next item."""
        gate = _GetGate(self.engine)
        if self._items:
            item = self._items.popleft()
            if self.sizer is not None:
                self.bytes_queued -= self.sizer(item)
            gate.succeed(item)
            self._admit_blocked_putter()
        else:
            self._getters.append(gate)
        return gate

    def get_nowait(self) -> Tuple[bool, Any]:
        """Non-blocking take: returns ``(True, item)`` or ``(False, None)``."""
        if not self._items:
            return False, None
        item = self._items.popleft()
        if self.sizer is not None:
            self.bytes_queued -= self.sizer(item)
        self._admit_blocked_putter()
        return True, item

    def take_nowait(self, default: Any = None) -> Any:
        """Non-blocking take without the result-tuple wrapper: returns
        the next item, or ``default`` when empty. Accounting is identical
        to :meth:`get_nowait`; hot consumer loops use this to skip one
        tuple allocation per item (pick a ``default`` no producer can
        enqueue)."""
        if not self._items:
            return default
        item = self._items.popleft()
        if self.sizer is not None:
            self.bytes_queued -= self.sizer(item)
        self._admit_blocked_putter()
        return item

    def drain(self) -> list:
        """Remove and return all queued items (blocked putters admitted)."""
        items = list(self._items)
        self._items.clear()
        if self.sizer is not None:
            self.bytes_queued = 0
        while self._putters and not self.full:
            self._admit_blocked_putter()
        return items

    def _admit_blocked_putter(self) -> None:
        while self._putters and not self.full:
            gate, item = self._putters.popleft()
            if gate.triggered:
                continue
            self._accept(item)
            gate.succeed(True)
            break

    def cancel_waiters(self, error: Optional[BaseException] = None) -> None:
        """Fail every pending getter/putter (used when killing a worker)."""
        error = error or RuntimeError("store closed")
        while self._getters:
            gate = self._getters.popleft()
            if not gate.triggered and not gate.defused:
                gate.fail(error)
        while self._putters:
            gate, _item = self._putters.popleft()
            if not gate.triggered:
                gate.fail(error)

"""Discrete-event simulation kernel: clock, processes, queues, metrics."""

from .costs import DEFAULT_COSTS, MS, US, CostModel, transmission_delay
from .faults import (
    FaultPlan,
    InjectedWorkerFault,
    crash_loop,
    host_failure_at,
    kill_worker_at,
)
from .engine import (
    Engine,
    Event,
    Interrupt,
    Process,
    SimulationError,
    StopEngine,
    Timer,
)
from .metrics import Counter, Distribution, MetricsRegistry, RateMeter, TimeSeries
from .queues import BLOCK, DROP, Store
from .rng import SeedFactory, as_factory, derive_seed
from .trace import Span, TraceEvent, TraceReport, Tracer, TupleTrace

__all__ = [
    "BLOCK",
    "DROP",
    "DEFAULT_COSTS",
    "MS",
    "US",
    "Counter",
    "CostModel",
    "Distribution",
    "Engine",
    "FaultPlan",
    "InjectedWorkerFault",
    "Event",
    "Interrupt",
    "MetricsRegistry",
    "Process",
    "RateMeter",
    "SeedFactory",
    "SimulationError",
    "Span",
    "StopEngine",
    "Store",
    "TimeSeries",
    "Timer",
    "TraceEvent",
    "TraceReport",
    "Tracer",
    "TupleTrace",
    "as_factory",
    "crash_loop",
    "host_failure_at",
    "kill_worker_at",
    "derive_seed",
    "transmission_delay",
]

"""Deterministic random-number plumbing.

Every stochastic component (workload generators, shuffle-routing tie
breaks, failure injectors) draws from its own :class:`random.Random`
derived from one experiment seed plus the component's name. Components
therefore never share a stream, so adding a new consumer does not perturb
existing ones — a property the regression tests rely on.
"""

from __future__ import annotations

import hashlib
import random
from typing import Union


def derive_seed(root_seed: int, name: str) -> int:
    """Derive a stable 64-bit child seed from ``(root_seed, name)``."""
    digest = hashlib.sha256(f"{root_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class SeedFactory:
    """Hands out independent named :class:`random.Random` instances."""

    def __init__(self, root_seed: int = 0):
        self.root_seed = root_seed

    def rng(self, name: str) -> random.Random:
        return random.Random(derive_seed(self.root_seed, name))

    def child(self, name: str) -> "SeedFactory":
        return SeedFactory(derive_seed(self.root_seed, name))


def as_factory(seed: Union[int, SeedFactory, None]) -> SeedFactory:
    """Coerce an int / factory / None into a :class:`SeedFactory`."""
    if isinstance(seed, SeedFactory):
        return seed
    return SeedFactory(0 if seed is None else int(seed))

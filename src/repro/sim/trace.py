"""Hop-by-hop tuple tracing: the observability analogue of the audit layer.

The paper's headline numbers are end-to-end latency CDFs (Figs. 8c/8d)
and per-second throughput under reconfiguration (Figs. 10-14), but an
aggregate latency distribution says nothing about *where* inside a
tuple's path the time goes — executor queue, serialization, batch wait,
switch match/replicate, wire, reassembly or the receiving executor's
input queue. This module records that path for a deterministic sample
of tuples:

* :class:`Tracer` — the sampling recorder. Sampling is 1-in-N by tuple
  id: every candidate tuple increments a counter, and the tuple is
  sampled iff ``counter % sample_every == 0``. The counter value becomes
  the trace id, carried *inside the serialized tuple envelope* (see
  :mod:`repro.streaming.serialize`), so every layer a tuple crosses —
  executor, transport, switch, tunnel, reassembler — can report
  checkpoints for it without any side-channel. With ``sample_every=0``
  (the default) the tracer is disabled and every hook is a guarded no-op
  that allocates nothing; the simulated schedule is bit-identical to a
  run without a tracer.

* :class:`TupleTrace` — one sampled tuple's ordered checkpoint events.
  A checkpoint ``(hop, t)`` closes the segment since the previous
  checkpoint and names it; segment durations therefore telescope, so
  the per-hop breakdown of a delivered tuple sums *exactly* to its
  end-to-end latency. Switch-level replication forks a trace into
  branches (one per destination); sender-side trunk checkpoints are
  shared by every branch.

* :class:`TraceReport` — aggregation: per-hop latency breakdown
  (count / wall time / modelled CPU cost) and a critical-path ranking.

Completed branches feed their end-to-end latency into the cluster's
:class:`~repro.sim.metrics.MetricsRegistry` under ``trace.e2e`` — the
value recorded is the *sum of the branch's segment durations*, so the
breakdown table and the metrics distribution agree to the last bit.

Like the delivery ledger, this module imports nothing above the
simulation kernel; frame-carrying layers hand opaque frames to
:meth:`Tracer.frame_ids`, which defers to an inspector callback the
cluster runtime installs (see :func:`repro.core.tracing.frame_trace_ids`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .engine import Engine
from .metrics import MetricsRegistry

# -- hop names --------------------------------------------------------------
#
# Each constant names a checkpoint; the checkpoint closes (and names) the
# segment of the tuple's timeline since the previous checkpoint.

H_EMIT = "emit"                    #: trace opens at the emitting executor
H_SERIALIZE = "serialize"          #: tuple encoded once (cost-annotated)
H_BATCH = "batch-wait"             #: sat in the sender's batch buffer
H_SWITCH = "switch-match"          #: flow-table lookup at a switch
H_REPLICATE = "switch-replicate"   #: group action forked the frame
H_PACKET_IN = "packet-in"          #: lifted to the controller (detour)
H_TUNNEL_TX = "tunnel-tx"          #: entered a host-level TCP tunnel
H_TUNNEL_RX = "tunnel-rx"          #: left the tunnel at the peer host
H_WIRE = "wire"                    #: switch output -> receiving transport
H_REASSEMBLY = "reassembly"        #: final fragment completed the tuple
H_DESERIALIZE = "deserialize"      #: decoded at the receiver (cost)
H_QUEUE = "queue-wait"             #: receiving executor's input queue
H_EXECUTE = "execute"              #: user component ran (terminal, data)
H_CONTROL = "control-apply"        #: control handler ran (terminal)
H_DROP = "drop"                    #: tuple died (terminal; layer+reason)

#: Terminal hops: after one of these, a branch (or the trace) is closed.
TERMINAL_HOPS = (H_EXECUTE, H_CONTROL, H_DROP)

KIND_DATA = "data"
KIND_CONTROL = "control"

#: Virtual worker-id space (SDN select-group destinations, see
#: ``repro.core.rules``): frames addressed there are not yet bound to a
#: concrete receiver, so their checkpoints stay on the trunk.
_VIRTUAL_WORKER_BASE = 0xE0000000


def address_branch(address: object) -> Optional[int]:
    """Concrete destination worker id of an address, else ``None``.

    Duck-typed so the sim layer needs no knowledge of Ethernet
    addressing: anything exposing ``worker_id`` plus the broadcast /
    controller flags of ``repro.net.addresses`` qualifies.
    """
    if address is None:
        return None
    if getattr(address, "is_broadcast", False) or getattr(
            address, "is_controller", False):
        return None
    worker_id = getattr(address, "worker_id", None)
    if worker_id is None or worker_id >= _VIRTUAL_WORKER_BASE:
        return None
    return worker_id


def frame_branch(frame: object) -> Optional[int]:
    """Destination worker id of a unicast frame, else ``None``.

    Checkpoints for unicast frames are tagged with the receiving branch,
    so a replicated (broadcast) trace keeps per-destination timelines
    clean; frames not yet bound to one receiver stay on the trunk.
    """
    return address_branch(getattr(frame, "dst", None))


@dataclass
class TraceEvent:
    """One checkpoint on a sampled tuple's path."""

    hop: str
    t: float
    branch: Optional[int] = None      #: destination worker id, once known
    cost: float = 0.0                 #: modelled CPU cost of this hop
    meta: Dict[str, object] = field(default_factory=dict)


@dataclass
class Span:
    """One interval of a sampled tuple's timeline (derived from events)."""

    span_id: int
    parent_id: Optional[int]
    hop: str
    start: float
    end: float
    branch: Optional[int] = None
    cost: float = 0.0
    meta: Dict[str, object] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start


class TupleTrace:
    """Ordered checkpoint events for one sampled tuple."""

    __slots__ = ("trace_id", "kind", "t0", "meta", "events",
                 "delivered_branches", "drops")

    def __init__(self, trace_id: int, kind: str, t0: float,
                 meta: Optional[Dict[str, object]] = None):
        self.trace_id = trace_id
        self.kind = kind
        self.t0 = t0
        self.meta = meta or {}
        self.events: List[TraceEvent] = [TraceEvent(H_EMIT, t0)]
        #: Branches (destination worker ids) that reached a terminal
        #: deliver hop, with the branch's telescoped end-to-end latency.
        self.delivered_branches: Dict[int, float] = {}
        #: Terminal drops: (layer, reason) per drop event.
        self.drops: List[Tuple[str, str]] = []

    @property
    def e2e(self) -> float:
        """Sum of delivered-branch latencies (order-independent)."""
        return math.fsum(self.delivered_branches.values())

    # -- recording ---------------------------------------------------------

    def add(self, event: TraceEvent) -> None:
        self.events.append(event)

    @property
    def finished(self) -> bool:
        return bool(self.delivered_branches or self.drops)

    @property
    def open(self) -> bool:
        return not self.finished

    def branches(self) -> List[Optional[int]]:
        """Branch keys seen on this trace (None = trunk-only so far)."""
        seen: List[Optional[int]] = []
        for event in self.events:
            if event.branch not in seen and event.branch is not None:
                seen.append(event.branch)
        return seen or [None]

    def branch_events(self, branch: Optional[int]) -> List[TraceEvent]:
        """Trunk events plus the events of one branch, in recorded order,
        truncated at the branch's terminal event (trunk events recorded
        after another copy kept travelling do not belong to this branch).

        Recorded order is causal order: the engine clock is monotone and
        every hook fires at the simulated instant it models.
        """
        out = []
        for event in self.events:
            if event.branch is None or event.branch == branch:
                out.append(event)
                if event.branch == branch and event.hop in TERMINAL_HOPS:
                    break
        return out

    def segments(self, branch: Optional[int] = None
                 ) -> List[Tuple[str, float, float, TraceEvent]]:
        """``(hop, wall, cost, event)`` per closed segment of a branch."""
        events = self.branch_events(branch)
        out = []
        for previous, event in zip(events, events[1:]):
            out.append((event.hop, event.t - previous.t, event.cost, event))
        return out

    # -- span tree ---------------------------------------------------------

    def spans(self) -> List[Span]:
        """Materialize the span tree: one root covering the whole tuple,
        one container span per branch, one leaf span per segment."""
        next_id = [0]

        def make(parent: Optional[int], hop: str, start: float, end: float,
                 branch: Optional[int] = None, cost: float = 0.0,
                 meta: Optional[Dict[str, object]] = None) -> Span:
            span = Span(next_id[0], parent, hop, start, end, branch, cost,
                        meta or {})
            next_id[0] += 1
            return span

        out: List[Span] = []
        last_t = max((event.t for event in self.events), default=self.t0)
        root = make(None, "tuple", self.t0, last_t, meta=dict(self.meta))
        out.append(root)
        for branch in self.branches():
            events = self.branch_events(branch)
            branch_end = events[-1].t if events else self.t0
            container = make(root.span_id, "branch", self.t0, branch_end,
                             branch=branch)
            out.append(container)
            for previous, event in zip(events, events[1:]):
                out.append(make(container.span_id, event.hop, previous.t,
                                event.t, branch=branch, cost=event.cost,
                                meta=dict(event.meta)))
        return out


@dataclass
class HopStats:
    """Aggregated per-hop totals across delivered branches."""

    count: int = 0
    wall: float = 0.0
    cost: float = 0.0

    @property
    def mean(self) -> float:
        return self.wall / self.count if self.count else 0.0


class TraceReport:
    """Per-hop breakdown + critical path over a tracer's finished traces."""

    def __init__(self, sample_every: int):
        self.sample_every = sample_every
        self.sampled = 0
        self.delivered = 0          #: delivered branches
        self.dropped = 0            #: terminal drop events
        self.open = 0               #: traces still in flight
        self.hops: Dict[str, HopStats] = {}
        self.drop_reasons: Dict[Tuple[str, str], int] = {}
        #: How often each hop was the slowest segment of a branch.
        self.dominant: Dict[str, int] = {}
        self.e2e_count = 0
        #: Per-branch end-to-end latencies, as recorded into the metrics
        #: ``trace.e2e`` distribution — same multiset, so the fsum-based
        #: aggregates below agree with the registry to the last bit.
        self._e2e_values: List[float] = []
        self._walls: List[float] = []

    @property
    def e2e_sum(self) -> float:
        """fsum of every delivered branch's end-to-end latency. Equals
        ``Distribution.total()`` of ``trace.e2e`` exactly (same sample
        multiset, and fsum is independent of summation order)."""
        return math.fsum(self._e2e_values)

    def e2e_values(self) -> List[float]:
        return list(self._e2e_values)

    # -- accumulation ------------------------------------------------------

    def absorb(self, trace: TupleTrace) -> None:
        self.sampled += 1
        if trace.open:
            self.open += 1
        self.dropped += len(trace.drops)
        for layer_reason in trace.drops:
            self.drop_reasons[layer_reason] = (
                self.drop_reasons.get(layer_reason, 0) + 1)
        for branch, e2e in sorted(trace.delivered_branches.items()):
            self.delivered += 1
            self._e2e_values.append(e2e)
            self.e2e_count += 1
            worst_hop, worst_wall = "", -1.0
            for hop, wall, cost, _event in trace.segments(branch):
                stats = self.hops.setdefault(hop, HopStats())
                stats.count += 1
                stats.wall += wall
                stats.cost += cost
                self._walls.append(wall)
                if wall > worst_wall:
                    worst_hop, worst_wall = hop, wall
            if worst_hop:
                self.dominant[worst_hop] = self.dominant.get(worst_hop, 0) + 1

    # -- views -------------------------------------------------------------

    def hop_rows(self) -> List[Tuple[str, int, float, float, float, int]]:
        """(hop, count, wall_total, wall_mean, cost_total, dominant)
        sorted by descending wall total (the critical-path ranking)."""
        rows = []
        for hop, stats in self.hops.items():
            rows.append((hop, stats.count, stats.wall, stats.mean,
                         stats.cost, self.dominant.get(hop, 0)))
        rows.sort(key=lambda row: (-row[2], row[0]))
        return rows

    def critical_path(self) -> List[str]:
        """Hops ranked by how often they dominated a delivered branch."""
        return [hop for hop, _count in
                sorted(self.dominant.items(),
                       key=lambda item: (-item[1], item[0]))]

    def wall_total(self) -> float:
        """fsum of every delivered segment's wall time — the hop table's
        grand total. Agrees with :attr:`e2e_sum` up to regrouping of the
        per-branch fsums (identical multiset of segment walls)."""
        return math.fsum(self._walls)

    def to_dict(self) -> Dict[str, object]:
        return {
            "sample_every": self.sample_every,
            "sampled": self.sampled,
            "delivered": self.delivered,
            "dropped": self.dropped,
            "open": self.open,
            "e2e_sum": self.e2e_sum,
            "e2e_count": self.e2e_count,
            "critical_path": self.critical_path(),
            "hops": [
                {"hop": hop, "count": count, "wall_total": wall,
                 "wall_mean": mean, "cost_total": cost, "dominant": dominant}
                for hop, count, wall, mean, cost, dominant in self.hop_rows()
            ],
            "drops": [
                {"layer": layer, "reason": reason, "traces": count}
                for (layer, reason), count in sorted(self.drop_reasons.items())
            ],
        }

    def render(self) -> str:
        """Deterministic text table (identical bytes for identical runs)."""
        lines = ["per-hop latency breakdown (sampling 1 in %d)"
                 % self.sample_every,
                 "-----------------------------------------"]
        lines.append("sampled=%d delivered=%d dropped=%d open=%d"
                     % (self.sampled, self.delivered, self.dropped, self.open))
        rows = self.hop_rows()
        if rows:
            lines.append("%-18s %8s %14s %14s %14s %9s"
                         % ("hop", "count", "wall-total-us", "wall-mean-us",
                            "cost-total-us", "dominant"))
            for hop, count, wall, mean, cost, dominant in rows:
                lines.append("%-18s %8d %14.6f %14.6f %14.6f %9d"
                             % (hop, count, wall * 1e6, mean * 1e6,
                                cost * 1e6, dominant))
            lines.append("hop wall sum   = %.9f s" % self.wall_total())
            lines.append("e2e latency sum= %.9f s over %d deliveries"
                         % (self.e2e_sum, self.e2e_count))
        else:
            lines.append("(no delivered sampled tuples)")
        if self.drop_reasons:
            lines.append("terminal drops:")
            for (layer, reason), count in sorted(self.drop_reasons.items()):
                lines.append("  %-12s %-22s %d" % (layer, reason, count))
        critical = self.critical_path()
        if critical:
            lines.append("critical path: %s" % " > ".join(critical))
        return "\n".join(lines)


class Tracer:
    """Deterministic sampling span recorder shared by every layer.

    Hooks follow one convention: callers that might be on a hot path
    guard with ``tracer is not None and tracer.enabled`` (and, for
    frame-level hooks, :meth:`has_active`), so a disabled tracer costs
    one attribute read. ``maybe_trace`` both samples and opens a trace;
    every other hook silently ignores unknown trace ids, so layers never
    need to know whether sampling is on.
    """

    def __init__(self, engine: Engine,
                 metrics: Optional[MetricsRegistry] = None,
                 sample_every: int = 0,
                 frame_inspector: Optional[
                     Callable[[object], Sequence[int]]] = None,
                 max_traces: int = 100_000):
        self.engine = engine
        self.metrics = metrics
        self.sample_every = int(sample_every)
        self.frame_inspector = frame_inspector
        self.max_traces = max_traces
        self.traces: Dict[int, TupleTrace] = {}
        self._counter = 0
        self.span_events = 0          #: total checkpoint events recorded
        self.overflow_traces = 0      #: sampled tuples past max_traces

    # -- configuration -----------------------------------------------------

    @property
    def enabled(self) -> bool:
        return self.sample_every > 0

    def configure(self, sample_every: int) -> None:
        """Set the 1-in-N sampling rate; 0 disables tracing entirely."""
        if sample_every < 0:
            raise ValueError("sample_every must be >= 0")
        self.sample_every = int(sample_every)

    def reset(self) -> None:
        self.traces.clear()
        self._counter = 0
        self.span_events = 0
        self.overflow_traces = 0

    def has_active(self) -> bool:
        return bool(self.traces)

    # -- sampling ----------------------------------------------------------

    def maybe_trace(self, stream_tuple, kind: str = KIND_DATA,
                    **meta) -> Optional[int]:
        """Consider one tuple for sampling; assigns ``trace_id`` and opens
        the trace when selected. Returns the trace id or None."""
        if self.sample_every <= 0:
            return None
        if getattr(stream_tuple, "trace_id", None) is not None:
            return stream_tuple.trace_id   # already sampled upstream
        self._counter += 1
        if self._counter % self.sample_every != 0:
            return None
        if len(self.traces) >= self.max_traces:
            self.overflow_traces += 1
            return None
        trace_id = self._counter
        stream_tuple.trace_id = trace_id
        self.traces[trace_id] = TupleTrace(trace_id, kind, self.engine.now,
                                           meta=dict(meta))
        self.span_events += 1
        return trace_id

    # -- checkpoints -------------------------------------------------------

    def event(self, trace_id: Optional[int], hop: str,
              t: Optional[float] = None, branch: Optional[int] = None,
              cost: float = 0.0, **meta) -> None:
        if trace_id is None:
            return
        trace = self.traces.get(trace_id)
        if trace is None:
            return
        trace.add(TraceEvent(hop, self.engine.now if t is None else t,
                             branch=branch, cost=cost, meta=meta))
        self.span_events += 1

    def finish_delivery(self, trace_id: Optional[int], branch: int,
                        cost: float = 0.0, hop: str = H_EXECUTE,
                        **meta) -> None:
        """Terminal hop of one branch. The terminal checkpoint sits at
        ``now + cost`` so the executing hop has its compute width; the
        branch latency is the telescoped sum of its segment durations
        (not ``end - t0``) so breakdown tables match it bit-for-bit."""
        if trace_id is None:
            return
        trace = self.traces.get(trace_id)
        if trace is None or branch in trace.delivered_branches:
            return
        self.event(trace_id, hop, t=self.engine.now + cost, branch=branch,
                   cost=cost, **meta)
        e2e = math.fsum(
            wall for _hop, wall, _cost, _event in trace.segments(branch))
        trace.delivered_branches[branch] = e2e
        if self.metrics is not None:
            self.metrics.distribution("trace.e2e").record(e2e)
            self.metrics.distribution("trace.e2e.%s" % trace.kind).record(e2e)

    def finish_drop(self, trace_id: Optional[int], layer: str, reason: str,
                    branch: Optional[int] = None) -> None:
        """Terminal drop: the tuple died at ``layer`` for ``reason`` (the
        same constants the :class:`~repro.sim.audit.DeliveryLedger` uses,
        so trace terminations can be cross-checked against the ledger)."""
        if trace_id is None:
            return
        trace = self.traces.get(trace_id)
        if trace is None:
            return
        self.event(trace_id, H_DROP, branch=branch,
                   layer=layer, reason=reason)
        trace.drops.append((layer, reason))

    # -- frame-level hooks -------------------------------------------------

    def frame_ids(self, frame: object) -> Tuple[int, ...]:
        """Trace ids carried by an opaque frame (or packed frame bytes),
        restricted to ids with a live trace. Cheap when nothing is being
        traced; needs the runtime-installed inspector otherwise."""
        if not self.traces or self.frame_inspector is None:
            return ()
        try:
            ids = self.frame_inspector(frame)
        except Exception:
            return ()
        return tuple(i for i in ids if i in self.traces)

    def frame_event(self, frame: object, hop: str,
                    branch: Optional[int] = None, cost: float = 0.0,
                    **meta) -> Tuple[int, ...]:
        """Checkpoint every live trace a frame carries. Unless the caller
        supplies one, the branch is the frame's unicast destination."""
        ids = self.frame_ids(frame)
        if not ids:
            return ids
        if branch is None:
            branch = frame_branch(frame)
        for trace_id in ids:
            self.event(trace_id, hop, branch=branch, cost=cost, **meta)
        return ids

    def frame_drop(self, frame: object, layer: str, reason: str) -> None:
        ids = self.frame_ids(frame)
        if not ids:
            return
        branch = frame_branch(frame)
        for trace_id in ids:
            self.finish_drop(trace_id, layer, reason, branch=branch)

    def drop_ids(self, trace_ids: Sequence[int], layer: str,
                 reason: str) -> None:
        for trace_id in trace_ids:
            self.finish_drop(trace_id, layer, reason)

    # -- reporting ---------------------------------------------------------

    def report(self) -> TraceReport:
        out = TraceReport(self.sample_every)
        for trace_id in sorted(self.traces):
            out.absorb(self.traces[trace_id])
        return out

    def spans(self) -> List[Span]:
        out: List[Span] = []
        for trace_id in sorted(self.traces):
            out.extend(self.traces[trace_id].spans())
        return out

"""Pre-optimization reference implementations of the hot paths.

These are faithful copies of the code that shipped before the hot-path
performance overhauls (PR 4 and the sim-engine rebuild): the
linearly-scanned flow table, the concatenation-per-value tuple encoder,
the slice-copy decoder, and the single-global-heap event kernel. They
exist so ``repro bench --perf`` can measure the optimization's speedup
*on the machine it runs on* — the baseline is re-measured every run
instead of trusting numbers recorded on different hardware — and so the
golden-bytes / determinism-lock tests can assert the optimized code is
exactly compatible with the original (byte-for-byte for the codec,
event-order-identical for the scheduler).

Nothing in the runtime imports this module; it is benchmark/test
reference material only. Do not "optimize" it.
"""

from __future__ import annotations

import heapq
import itertools
import struct
from typing import Any, Callable, Generator, List, Optional, Tuple

from ..net.ethernet import EthernetFrame
from ..sdn.flow import FlowEntry
from ..sim.engine import Interrupt, SimulationError, StopEngine
from ..streaming.serialize import SerializationError
from ..streaming.tuples import Anchor, StreamTuple

# -- legacy event kernel -----------------------------------------------------
#
# The pre-rebuild scheduler: one global binary heap of (when, seq, callback)
# tuples, a fresh lambda per scheduled callback, cancelled timers dropped
# only when they surface at the heap top. The determinism-lock tests in
# tests/test_sim_determinism.py replay randomized workloads on this kernel
# and on the calendar-queue kernel and assert identical execution orders.


class LegacyEvent:
    _PENDING = object()

    def __init__(self, engine: "LegacyEngine"):
        self.engine = engine
        self.value: Any = LegacyEvent._PENDING
        self.failed = False
        self._callbacks: Optional[List[Callable[["LegacyEvent"], None]]] = []

    @property
    def triggered(self) -> bool:
        return self.value is not LegacyEvent._PENDING

    def add_callback(self, callback: Callable[["LegacyEvent"], None]) -> None:
        if self._callbacks is None:
            callback(self)
        else:
            self._callbacks.append(callback)

    def succeed(self, value: Any = None) -> "LegacyEvent":
        if self.triggered:
            raise SimulationError("event already triggered")
        self.value = value
        self._fire()
        return self

    def fail(self, exception: BaseException) -> "LegacyEvent":
        if self.triggered:
            raise SimulationError("event already triggered")
        self.value = exception
        self.failed = True
        self._fire()
        return self

    def _fire(self) -> None:
        callbacks, self._callbacks = self._callbacks, None
        for callback in callbacks or ():
            callback(self)


class LegacyTimer(LegacyEvent):
    def __init__(self, engine: "LegacyEngine", delay: float):
        super().__init__(engine)
        if delay < 0:
            raise ValueError("timer delay must be >= 0, got %r" % delay)
        self.deadline = engine.now + delay
        self.cancelled = False
        engine._push(self.deadline, self._expire)

    def cancel(self) -> None:
        self.cancelled = True

    def _expire(self) -> None:
        if not self.cancelled and not self.triggered:
            self.succeed(None)


class LegacyProcess(LegacyEvent):
    _had_waiters = False

    def __init__(self, engine: "LegacyEngine", generator: Generator,
                 name: str = ""):
        super().__init__(engine)
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._waiting_on: Optional[LegacyEvent] = None
        self._alive = True
        engine._push(engine.now, lambda: self._step(None, None))

    @property
    def alive(self) -> bool:
        return self._alive

    def interrupt(self, cause: Any = None) -> None:
        if not self._alive:
            return
        self.engine._push(self.engine.now,
                          lambda: self._deliver_interrupt(cause))

    def _deliver_interrupt(self, cause: Any) -> None:
        if not self._alive:
            return
        if isinstance(self._waiting_on, LegacyTimer):
            self._waiting_on.cancel()
        self._waiting_on = None
        self._step(None, Interrupt(cause))

    def _step(self, value: Any, exc: Optional[BaseException]) -> None:
        if not self._alive:
            return
        try:
            if exc is not None:
                target = self._generator.throw(exc)
            else:
                target = self._generator.send(value)
        except StopIteration as stop:
            self._alive = False
            self.succeed(stop.value)
            return
        except Interrupt:
            self._alive = False
            self.succeed(None)
            return
        except StopEngine:
            raise
        except BaseException as error:
            self._alive = False
            self.fail(error)
            if self._callbacks is None and not self._had_waiters:
                raise
            return
        self._wait_on(target)

    def add_callback(self, callback: Callable[["LegacyEvent"], None]) -> None:
        self._had_waiters = True
        super().add_callback(callback)

    def _wait_on(self, target: Any) -> None:
        if isinstance(target, (int, float)):
            target = LegacyTimer(self.engine, float(target))
        if not isinstance(target, LegacyEvent):
            raise SimulationError(
                "process %s yielded %r; expected a delay, Event or Process"
                % (self.name, target)
            )
        self._waiting_on = target
        target.add_callback(self._resume)

    def _resume(self, event: LegacyEvent) -> None:
        if not self._alive or self._waiting_on is not event:
            return
        self._waiting_on = None
        if event.failed:
            self._step(None, event.value)
        else:
            self._step(event.value, None)


class LegacyEngine:
    """The pre-rebuild event loop: one heap push/pop + lambda per event."""

    def __init__(self):
        self.now: float = 0.0
        self._heap: List[Tuple[float, int, Callable[[], None]]] = []
        self._seq = itertools.count()
        self._running = False

    def _push(self, when: float, callback: Callable[[], None]) -> None:
        heapq.heappush(self._heap, (when, next(self._seq), callback))

    def schedule(self, delay: float, callback: Callable[..., None],
                 *args: Any) -> None:
        if delay < 0:
            raise ValueError("delay must be >= 0, got %r" % delay)
        self._push(self.now + delay, lambda: callback(*args))

    def timeout(self, delay: float) -> LegacyTimer:
        return LegacyTimer(self, delay)

    def event(self) -> LegacyEvent:
        return LegacyEvent(self)

    def process(self, generator: Generator, name: str = "") -> LegacyProcess:
        return LegacyProcess(self, generator, name=name)

    def run(self, until: Optional[float] = None) -> float:
        if self._running:
            raise SimulationError("engine is already running")
        self._running = True
        try:
            while self._heap:
                when, _seq, callback = self._heap[0]
                owner = getattr(callback, "__self__", None)
                if isinstance(owner, LegacyTimer) and (owner.cancelled
                                                       or owner.triggered):
                    heapq.heappop(self._heap)
                    continue
                if until is not None and when > until:
                    break
                heapq.heappop(self._heap)
                self.now = when
                try:
                    callback()
                except StopEngine:
                    break
            if until is not None and self.now < until:
                self.now = until
        finally:
            self._running = False
        return self.now

    def stop(self) -> None:
        raise StopEngine()


# -- legacy flow-table lookup ------------------------------------------------


class LegacyFlowTable:
    """The pre-PR priority table: one flat list, sorted on every insert,
    linearly scanned on every lookup, no exact-match cache."""

    def __init__(self):
        self._entries: List[FlowEntry] = []

    def __len__(self) -> int:
        return len(self._entries)

    def add(self, entry: FlowEntry, now: float = 0.0) -> FlowEntry:
        entry.installed_at = now
        entry.last_used = now
        for i, existing in enumerate(self._entries):
            if existing.match == entry.match and existing.priority == entry.priority:
                self._entries[i] = entry
                return entry
        self._entries.append(entry)
        self._entries.sort(key=lambda e: (-e.priority, e.entry_id))
        return entry

    def lookup(self, frame: EthernetFrame, in_port: int) -> Optional[FlowEntry]:
        for entry in self._entries:
            if entry.match.matches(frame, in_port):
                return entry
        return None


# -- legacy codec ------------------------------------------------------------

_T_NONE = 0x00
_T_TRUE = 0x01
_T_FALSE = 0x02
_T_INT = 0x03
_T_FLOAT = 0x04
_T_STR = 0x05
_T_BYTES = 0x06
_T_LIST = 0x07
_T_DICT = 0x08
_T_BIGINT = 0x09

_I64_MIN = -(2 ** 63)
_I64_MAX = 2 ** 63 - 1

_U32 = struct.Struct("!I")
_I64 = struct.Struct("!q")
_F64 = struct.Struct("!d")

_ENVELOPE = struct.Struct("!HiBH")
_ANCHOR = struct.Struct("!QQ")
_TRACE = struct.Struct("!Q")
_FLAG_ANCHORED = 0x01
_FLAG_TRACED = 0x02


def _encode_value(value: Any, out: List[bytes]) -> None:
    if value is None:
        out.append(bytes([_T_NONE]))
    elif value is True:
        out.append(bytes([_T_TRUE]))
    elif value is False:
        out.append(bytes([_T_FALSE]))
    elif isinstance(value, int):
        if _I64_MIN <= value <= _I64_MAX:
            out.append(bytes([_T_INT]) + _I64.pack(value))
        else:
            magnitude = abs(value)
            body = magnitude.to_bytes((magnitude.bit_length() + 8) // 8,
                                      "big", signed=False)
            sign = 1 if value < 0 else 0
            out.append(bytes([_T_BIGINT, sign])
                       + _U32.pack(len(body)) + body)
    elif isinstance(value, float):
        out.append(bytes([_T_FLOAT]) + _F64.pack(value))
    elif isinstance(value, str):
        data = value.encode("utf-8")
        out.append(bytes([_T_STR]) + _U32.pack(len(data)) + data)
    elif isinstance(value, (bytes, bytearray)):
        out.append(bytes([_T_BYTES]) + _U32.pack(len(value)) + bytes(value))
    elif isinstance(value, (list, tuple)):
        out.append(bytes([_T_LIST]) + _U32.pack(len(value)))
        for item in value:
            _encode_value(item, out)
    elif isinstance(value, dict):
        out.append(bytes([_T_DICT]) + _U32.pack(len(value)))
        for key, item in value.items():
            _encode_value(key, out)
            _encode_value(item, out)
    else:
        raise SerializationError("cannot serialize %r of type %s"
                                 % (value, type(value).__name__))


def _decode_value(data: bytes, offset: int) -> Tuple[Any, int]:
    if offset >= len(data):
        raise SerializationError("truncated value")
    tag = data[offset]
    offset += 1
    if tag == _T_NONE:
        return None, offset
    if tag == _T_TRUE:
        return True, offset
    if tag == _T_FALSE:
        return False, offset
    if tag == _T_INT:
        (value,) = _I64.unpack_from(data, offset)
        return value, offset + 8
    if tag == _T_BIGINT:
        sign = data[offset]
        offset += 1
        (length,) = _U32.unpack_from(data, offset)
        offset += 4
        magnitude = int.from_bytes(data[offset:offset + length], "big")
        return (-magnitude if sign else magnitude), offset + length
    if tag == _T_FLOAT:
        (value,) = _F64.unpack_from(data, offset)
        return value, offset + 8
    if tag == _T_STR:
        (length,) = _U32.unpack_from(data, offset)
        offset += 4
        return data[offset:offset + length].decode("utf-8"), offset + length
    if tag == _T_BYTES:
        (length,) = _U32.unpack_from(data, offset)
        offset += 4
        return bytes(data[offset:offset + length]), offset + length
    if tag == _T_LIST:
        (length,) = _U32.unpack_from(data, offset)
        offset += 4
        items = []
        for _ in range(length):
            item, offset = _decode_value(data, offset)
            items.append(item)
        return items, offset
    if tag == _T_DICT:
        (length,) = _U32.unpack_from(data, offset)
        offset += 4
        mapping = {}
        for _ in range(length):
            key, offset = _decode_value(data, offset)
            value, offset = _decode_value(data, offset)
            mapping[key] = value
        return mapping, offset
    raise SerializationError("unknown type tag 0x%02x" % tag)


def legacy_encode_values(values: Tuple[Any, ...]) -> bytes:
    out: List[bytes] = []
    for value in values:
        _encode_value(value, out)
    return b"".join(out)


def legacy_encode_tuple(stream_tuple: StreamTuple) -> bytes:
    flags = _FLAG_ANCHORED if stream_tuple.anchor is not None else 0
    if stream_tuple.trace_id is not None:
        flags |= _FLAG_TRACED
    head = _ENVELOPE.pack(stream_tuple.stream, stream_tuple.source_worker,
                          flags, len(stream_tuple.values))
    body: List[bytes] = [head]
    if stream_tuple.anchor is not None:
        body.append(_ANCHOR.pack(stream_tuple.anchor.root_id,
                                 stream_tuple.anchor.edge_id))
    if stream_tuple.trace_id is not None:
        body.append(_TRACE.pack(stream_tuple.trace_id))
    body.append(legacy_encode_values(stream_tuple.values))
    return b"".join(body)


def legacy_decode_tuple(data: bytes, source_component: str = "") -> StreamTuple:
    if len(data) < _ENVELOPE.size:
        raise SerializationError("truncated tuple envelope")
    stream, source_worker, flags, nvalues = _ENVELOPE.unpack_from(data, 0)
    offset = _ENVELOPE.size
    anchor = None
    if flags & _FLAG_ANCHORED:
        root_id, edge_id = _ANCHOR.unpack_from(data, offset)
        anchor = Anchor(root_id, edge_id)
        offset += _ANCHOR.size
    trace_id = None
    if flags & _FLAG_TRACED:
        (trace_id,) = _TRACE.unpack_from(data, offset)
        offset += _TRACE.size
    values = []
    for _ in range(nvalues):
        value, offset = _decode_value(data, offset)
        values.append(value)
    if offset != len(data):
        raise SerializationError("%d trailing bytes after tuple"
                                 % (len(data) - offset))
    return StreamTuple(values=tuple(values), stream=stream,
                       source_component=source_component,
                       source_worker=source_worker, anchor=anchor,
                       trace_id=trace_id)

"""Pre-optimization reference implementations of the hot paths.

These are faithful copies of the code that shipped before the hot-path
performance overhaul (PR 4): the linearly-scanned flow table, the
concatenation-per-value tuple encoder and the slice-copy decoder. They
exist so ``repro bench --perf`` can measure the optimization's speedup
*on the machine it runs on* — the baseline is re-measured every run
instead of trusting numbers recorded on different hardware — and so the
golden-bytes tests can assert the optimized codec is byte-for-byte
compatible with the original.

Nothing in the runtime imports this module; it is benchmark/test
reference material only. Do not "optimize" it.
"""

from __future__ import annotations

import struct
from typing import Any, List, Optional, Tuple

from ..net.ethernet import EthernetFrame
from ..sdn.flow import FlowEntry
from ..streaming.serialize import SerializationError
from ..streaming.tuples import Anchor, StreamTuple

# -- legacy flow-table lookup ------------------------------------------------


class LegacyFlowTable:
    """The pre-PR priority table: one flat list, sorted on every insert,
    linearly scanned on every lookup, no exact-match cache."""

    def __init__(self):
        self._entries: List[FlowEntry] = []

    def __len__(self) -> int:
        return len(self._entries)

    def add(self, entry: FlowEntry, now: float = 0.0) -> FlowEntry:
        entry.installed_at = now
        entry.last_used = now
        for i, existing in enumerate(self._entries):
            if existing.match == entry.match and existing.priority == entry.priority:
                self._entries[i] = entry
                return entry
        self._entries.append(entry)
        self._entries.sort(key=lambda e: (-e.priority, e.entry_id))
        return entry

    def lookup(self, frame: EthernetFrame, in_port: int) -> Optional[FlowEntry]:
        for entry in self._entries:
            if entry.match.matches(frame, in_port):
                return entry
        return None


# -- legacy codec ------------------------------------------------------------

_T_NONE = 0x00
_T_TRUE = 0x01
_T_FALSE = 0x02
_T_INT = 0x03
_T_FLOAT = 0x04
_T_STR = 0x05
_T_BYTES = 0x06
_T_LIST = 0x07
_T_DICT = 0x08
_T_BIGINT = 0x09

_I64_MIN = -(2 ** 63)
_I64_MAX = 2 ** 63 - 1

_U32 = struct.Struct("!I")
_I64 = struct.Struct("!q")
_F64 = struct.Struct("!d")

_ENVELOPE = struct.Struct("!HiBH")
_ANCHOR = struct.Struct("!QQ")
_TRACE = struct.Struct("!Q")
_FLAG_ANCHORED = 0x01
_FLAG_TRACED = 0x02


def _encode_value(value: Any, out: List[bytes]) -> None:
    if value is None:
        out.append(bytes([_T_NONE]))
    elif value is True:
        out.append(bytes([_T_TRUE]))
    elif value is False:
        out.append(bytes([_T_FALSE]))
    elif isinstance(value, int):
        if _I64_MIN <= value <= _I64_MAX:
            out.append(bytes([_T_INT]) + _I64.pack(value))
        else:
            magnitude = abs(value)
            body = magnitude.to_bytes((magnitude.bit_length() + 8) // 8,
                                      "big", signed=False)
            sign = 1 if value < 0 else 0
            out.append(bytes([_T_BIGINT, sign])
                       + _U32.pack(len(body)) + body)
    elif isinstance(value, float):
        out.append(bytes([_T_FLOAT]) + _F64.pack(value))
    elif isinstance(value, str):
        data = value.encode("utf-8")
        out.append(bytes([_T_STR]) + _U32.pack(len(data)) + data)
    elif isinstance(value, (bytes, bytearray)):
        out.append(bytes([_T_BYTES]) + _U32.pack(len(value)) + bytes(value))
    elif isinstance(value, (list, tuple)):
        out.append(bytes([_T_LIST]) + _U32.pack(len(value)))
        for item in value:
            _encode_value(item, out)
    elif isinstance(value, dict):
        out.append(bytes([_T_DICT]) + _U32.pack(len(value)))
        for key, item in value.items():
            _encode_value(key, out)
            _encode_value(item, out)
    else:
        raise SerializationError("cannot serialize %r of type %s"
                                 % (value, type(value).__name__))


def _decode_value(data: bytes, offset: int) -> Tuple[Any, int]:
    if offset >= len(data):
        raise SerializationError("truncated value")
    tag = data[offset]
    offset += 1
    if tag == _T_NONE:
        return None, offset
    if tag == _T_TRUE:
        return True, offset
    if tag == _T_FALSE:
        return False, offset
    if tag == _T_INT:
        (value,) = _I64.unpack_from(data, offset)
        return value, offset + 8
    if tag == _T_BIGINT:
        sign = data[offset]
        offset += 1
        (length,) = _U32.unpack_from(data, offset)
        offset += 4
        magnitude = int.from_bytes(data[offset:offset + length], "big")
        return (-magnitude if sign else magnitude), offset + length
    if tag == _T_FLOAT:
        (value,) = _F64.unpack_from(data, offset)
        return value, offset + 8
    if tag == _T_STR:
        (length,) = _U32.unpack_from(data, offset)
        offset += 4
        return data[offset:offset + length].decode("utf-8"), offset + length
    if tag == _T_BYTES:
        (length,) = _U32.unpack_from(data, offset)
        offset += 4
        return bytes(data[offset:offset + length]), offset + length
    if tag == _T_LIST:
        (length,) = _U32.unpack_from(data, offset)
        offset += 4
        items = []
        for _ in range(length):
            item, offset = _decode_value(data, offset)
            items.append(item)
        return items, offset
    if tag == _T_DICT:
        (length,) = _U32.unpack_from(data, offset)
        offset += 4
        mapping = {}
        for _ in range(length):
            key, offset = _decode_value(data, offset)
            value, offset = _decode_value(data, offset)
            mapping[key] = value
        return mapping, offset
    raise SerializationError("unknown type tag 0x%02x" % tag)


def legacy_encode_values(values: Tuple[Any, ...]) -> bytes:
    out: List[bytes] = []
    for value in values:
        _encode_value(value, out)
    return b"".join(out)


def legacy_encode_tuple(stream_tuple: StreamTuple) -> bytes:
    flags = _FLAG_ANCHORED if stream_tuple.anchor is not None else 0
    if stream_tuple.trace_id is not None:
        flags |= _FLAG_TRACED
    head = _ENVELOPE.pack(stream_tuple.stream, stream_tuple.source_worker,
                          flags, len(stream_tuple.values))
    body: List[bytes] = [head]
    if stream_tuple.anchor is not None:
        body.append(_ANCHOR.pack(stream_tuple.anchor.root_id,
                                 stream_tuple.anchor.edge_id))
    if stream_tuple.trace_id is not None:
        body.append(_TRACE.pack(stream_tuple.trace_id))
    body.append(legacy_encode_values(stream_tuple.values))
    return b"".join(body)


def legacy_decode_tuple(data: bytes, source_component: str = "") -> StreamTuple:
    if len(data) < _ENVELOPE.size:
        raise SerializationError("truncated tuple envelope")
    stream, source_worker, flags, nvalues = _ENVELOPE.unpack_from(data, 0)
    offset = _ENVELOPE.size
    anchor = None
    if flags & _FLAG_ANCHORED:
        root_id, edge_id = _ANCHOR.unpack_from(data, offset)
        anchor = Anchor(root_id, edge_id)
        offset += _ANCHOR.size
    trace_id = None
    if flags & _FLAG_TRACED:
        (trace_id,) = _TRACE.unpack_from(data, offset)
        offset += _TRACE.size
    values = []
    for _ in range(nvalues):
        value, offset = _decode_value(data, offset)
        values.append(value)
    if offset != len(data):
        raise SerializationError("%d trailing bytes after tuple"
                                 % (len(data) - offset))
    return StreamTuple(values=tuple(values), stream=stream,
                       source_component=source_component,
                       source_worker=source_worker, anchor=anchor,
                       trace_id=trace_id)

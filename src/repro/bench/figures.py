"""Experiment implementations for every figure/table in §6.

Each ``fig*``/``table*`` function reproduces one evaluation artifact and
returns an :class:`~repro.bench.harness.ExperimentResult` whose tables
and series mirror what the paper plots. The benchmark files under
``benchmarks/`` call these, print the rendered output and assert the
paper's *shape* claims.

Scaling notes (documented per experiment in EXPERIMENTS.md): absolute
throughput comes from the calibrated cost model and lands near the
paper's magnitudes for the microbenchmarks; the long-running time-series
experiments (Figs. 10–12, 14) compress the paper's wall-clock timelines
and input rates so a pure-Python simulation finishes in minutes, while
preserving every relative claim (who wins, recovery times relative to
timeouts, before/after ratios).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..core import TyphoonCluster
from ..core.audit import verify_conservation
from ..core.apps import (
    AutoScaler,
    FaultDetector,
    LiveDebugger,
    ScalingPolicy,
    STORM_DEBUGGER_CAPABILITIES,
    TYPHOON_DEBUGGER_CAPABILITIES,
)
from ..ext import KafkaBroker, RedisStore
from ..sim import DEFAULT_COSTS, CostModel, Engine
from ..sim.rng import SeedFactory
from ..streaming import StormCluster, TopologyBuilder, TopologyConfig
from ..workloads import (
    AdEventGenerator,
    EVENTS_TOPIC,
    broadcast_topology,
    forwarding_topology,
    make_filter_factory,
    produce_events,
    word_count_topology,
    yahoo_topology,
)
from .harness import ExperimentResult, Series

#: Batch sizes swept for Typhoon in Fig. 8 (the paper's label numbers).
FIG8_BATCH_SIZES = (100, 250, 500, 1000)

#: Deployment finishes (launch + activation) by ~2.1 s; measurements
#: start after a short warm-up.
_DEPLOY = 2.1


def _audit(result: ExperimentResult, cluster, strict: bool = True) -> None:
    """Close the books on a finished experiment: quiesce the cluster and
    check the delivery ledger's conservation identity, recording the
    outcome as scalars so a leak fails the benchmark assertions loudly."""
    report = verify_conservation(cluster, strict=strict)
    result.scalars["unattributed_loss"] = float(report.unattributed)
    result.scalars["attributed_drops"] = float(report.drops)


def _cluster(system: str, engine: Engine, hosts: int,
             costs: CostModel = DEFAULT_COSTS, seed: int = 0):
    if system == "storm":
        return StormCluster(engine, num_hosts=hosts, costs=costs, seed=seed)
    if system == "typhoon":
        return TyphoonCluster(engine, num_hosts=hosts, costs=costs, seed=seed)
    raise ValueError("unknown system %r" % system)


def _sink_rate(cluster, topology_id: str, component: str,
               window: Tuple[float, float]) -> float:
    record = cluster.manager.topologies[topology_id]
    ids = record.physical.worker_ids_for(component)
    return sum(
        cluster.metrics.meter("%s.%s.%d.processed"
                              % (topology_id, component, wid)).rate(*window)
        for wid in ids
    )


def _component_series(cluster, topology_id: str, component: str,
                      end: float, label_prefix: str = "") -> List[Series]:
    record = cluster.manager.topologies[topology_id]
    out = []
    for index, wid in enumerate(record.physical.worker_ids_for(component)):
        meter = cluster.metrics.meter(
            "%s.%s.%d.processed" % (topology_id, component, wid))
        name = "%s%s%d" % (label_prefix, component.upper(), index + 1)
        out.append(Series.from_timeseries(name, meter.series(0, end)))
    return out


# =====================================================================
# Fig. 8(a)/(b): tuple forwarding throughput (without / with ACK)
# =====================================================================


def _exact_rate(engine, cluster, topology_id: str, component: str,
                start: float, end: float) -> float:
    """Throughput from exact processed-count deltas over [start, end]."""
    engine.run(until=start)
    executors = cluster.executors_for(topology_id, component)
    before = sum(e.stats.processed for e in executors)
    engine.run(until=end)
    executors = cluster.executors_for(topology_id, component)
    after = sum(e.stats.processed for e in executors)
    return (after - before) / (end - start)


def _forwarding_run(system: str, local: bool, batch: int, acking: bool,
                    seed: int = 0) -> Dict[str, float]:
    engine = Engine()
    cluster = _cluster(system, engine, hosts=1 if local else 2, seed=seed)
    config = TopologyConfig(batch_size=batch, acking=acking,
                            num_ackers=1 if acking else 0)
    cluster.submit(forwarding_topology("fwd", config))
    measure = (_DEPLOY + 0.3, _DEPLOY + 0.7)
    result = {
        "throughput": _exact_rate(engine, cluster, "fwd", "sink", *measure),
    }
    source = cluster.executors_for("fwd", "source")[0]
    if acking and len(source.latency_dist):
        result["latency_p50"] = source.latency_dist.percentile(50)
        result["latency_p99"] = source.latency_dist.percentile(99)
        result["latency_cdf"] = source.latency_dist.cdf(points=60)
    sink = cluster.executors_for("fwd", "sink")[0]
    result["out_of_order"] = sink.component.out_of_order
    return result


def _forwarding_experiment(name: str, acking: bool,
                           seed: int = 0) -> ExperimentResult:
    result = ExperimentResult(name)
    rows = []
    for placement, local in (("LOCAL", True), ("REMOTE", False)):
        storm = _forwarding_run("storm", local, 100, acking, seed)
        row = [placement, "%.0f" % storm["throughput"]]
        result.scalars["storm_%s" % placement.lower()] = storm["throughput"]
        for batch in FIG8_BATCH_SIZES:
            typhoon = _forwarding_run("typhoon", local, batch, acking, seed)
            row.append("%.0f" % typhoon["throughput"])
            result.scalars["typhoon%d_%s" % (batch, placement.lower())] = (
                typhoon["throughput"]
            )
        rows.append(row)
    headers = ["placement", "STORM"] + ["TYPHOON(%d)" % b
                                        for b in FIG8_BATCH_SIZES]
    result.add_table("%s — tuples/sec" % name, headers, rows)
    return result


def fig8a_forwarding(seed: int = 0) -> ExperimentResult:
    """Fig. 8(a): max-speed forwarding, Storm vs Typhoon batch sweep."""
    return _forwarding_experiment("Fig 8(a) tuple forwarding", False, seed)


def fig8b_forwarding_ack(seed: int = 0) -> ExperimentResult:
    """Fig. 8(b): the same with guaranteed processing (1 acker)."""
    return _forwarding_experiment("Fig 8(b) tuple forwarding with ACK",
                                  True, seed)


#: Sub-saturation input rate for the latency experiment: batching delay
#: (which depends on the configured batch size) dominates end-to-end
#: latency instead of the in-flight queueing of a saturated pipeline.
LATENCY_RATE = 200_000.0


def _latency_run(system: str, local: bool, batch: int,
                 seed: int = 0) -> Dict[str, float]:
    engine = Engine()
    # Long flush interval: batches are released when full (count-based),
    # as in the prototype's configurable batching.
    costs = DEFAULT_COSTS.scaled(batch_flush_interval=0.05)
    cluster = _cluster(system, engine, hosts=1 if local else 2,
                       costs=costs, seed=seed)
    config = TopologyConfig(batch_size=batch, acking=True, num_ackers=1,
                            max_spout_rate=LATENCY_RATE)
    topology = forwarding_topology("fwd", config)
    topology.node("source").max_pending = None  # rate-limited, not windowed
    cluster.submit(topology)
    engine.run(until=_DEPLOY + 1.2)
    source = cluster.executors_for("fwd", "source")[0]
    dist = source.latency_dist
    return {
        "latency_p50": dist.percentile(50),
        "latency_p99": dist.percentile(99),
        "latency_cdf": dist.cdf(points=60),
    }


def fig8cd_latency(local: bool, seed: int = 0) -> ExperimentResult:
    """Figs. 8(c)/(d): end-to-end tuple latency CDFs (local / remote).

    As in the paper, latency is measured at the source worker, notified
    by the acker when each tuple's processing completes.
    """
    label = "local" if local else "remote"
    result = ExperimentResult("Fig 8(%s) tuple latency (%s)"
                              % ("c" if local else "d", label))
    runs = [("STORM", _latency_run("storm", local, 100, seed))]
    for batch in FIG8_BATCH_SIZES:
        runs.append(("TYPHOON(%d)" % batch,
                     _latency_run("typhoon", local, batch, seed)))
    rows = []
    for name, run in runs:
        rows.append([name, run["latency_p50"] * 1e3, run["latency_p99"] * 1e3])
        result.scalars["%s_p50_ms" % name.lower()] = run["latency_p50"] * 1e3
        result.add_series(Series(
            name, [(value * 1e3, fraction)
                   for value, fraction in run["latency_cdf"]]))
    result.add_table("latency percentiles (ms)",
                     ["system", "p50", "p99"], rows)
    return result


# =====================================================================
# Fig. 9: one-to-many (broadcast) throughput
# =====================================================================


def fig9_broadcast(sink_counts: Sequence[int] = (2, 3, 4, 5, 6),
                   seed: int = 0) -> ExperimentResult:
    """Fig. 9: broadcast throughput vs fan-out, both placements merged.

    Storm pays one serialization per destination and degrades ~1/k;
    Typhoon serializes once and lets switches replicate, staying flat.
    """
    result = ExperimentResult("Fig 9 one-to-many communication")
    rows = []
    for placement, hosts in (("LOCAL", 1), ("REMOTE", 2)):
        for system in ("storm", "typhoon"):
            row = ["%s(%s)" % (system.upper(), placement)]
            for sinks in sink_counts:
                engine = Engine()
                cluster = _cluster(system, engine, hosts=hosts, seed=seed)
                cluster.submit(broadcast_topology(
                    "bc", sinks, TopologyConfig(batch_size=100)))
                measure = (_DEPLOY + 0.3, _DEPLOY + 0.7)
                per_sink = _exact_rate(engine, cluster, "bc", "sink",
                                       *measure) / sinks
                row.append("%.0f" % per_sink)
                result.scalars["%s_%s_%d" % (system, placement.lower(),
                                             sinks)] = per_sink
            rows.append(row)
    result.add_table(
        "per-sink delivered tuples/sec vs fan-out",
        ["system"] + ["%d sinks" % k for k in sink_counts], rows)
    return result


# =====================================================================
# Fig. 10: fault detection and recovery
# =====================================================================

FIG10_RATE = 8000.0
FIG10_FAULT_TIME = 20.0
FIG10_END = 70.0


def fig10_fault(system: str, seed: int = 0) -> ExperimentResult:
    """Fig. 10: kill one split worker at t=20 s in the word-count
    topology; plot per-count-worker throughput.

    Storm restarts locally, never heartbeats, and is only rescheduled
    after the 30 s timeout — onto a host where it stays faulty — so the
    count stage runs at half rate. Typhoon's fault detector reacts to the
    port-removal event and redirects to the healthy split immediately.
    """
    engine = Engine()
    cluster = _cluster(system, engine, hosts=3, seed=seed)
    if system == "typhoon":
        cluster.register_app(FaultDetector(cluster))
    config = TopologyConfig(batch_size=100, max_spout_rate=FIG10_RATE)
    cluster.submit(word_count_topology(
        "wc", config, splits=2, counts=4, words_per_sentence=3,
        fault_time=FIG10_FAULT_TIME))
    engine.run(until=FIG10_END)

    result = ExperimentResult("Fig 10 fault recovery (%s)" % system)
    for series in _component_series(cluster, "wc", "count", FIG10_END):
        result.add_series(series)
    aggregate_pre = _sink_rate(cluster, "wc", "count", (10, 19))
    aggregate_post = _sink_rate(cluster, "wc", "count", (35, 65))
    result.scalars["aggregate_pre_fault"] = aggregate_pre
    result.scalars["aggregate_post_fault"] = aggregate_post
    result.scalars["post_over_pre"] = (aggregate_post / aggregate_pre
                                       if aggregate_pre else 0.0)
    result.add_table(
        "aggregate count-stage throughput", ["window", "tuples/sec"],
        [["t=10..19 (pre-fault)", "%.0f" % aggregate_pre],
         ["t=35..65 (post-fault)", "%.0f" % aggregate_post]])
    _audit(result, cluster)
    return result


# =====================================================================
# Fig. 11: auto-scaling under overload
# =====================================================================

FIG11_RATE = 6000.0
FIG11_END = 300.0
FIG11_SPLIT_WORK = 400e-6  # per-sentence compute: capacity ~2500/s/worker


def fig11_autoscale(system: str, seed: int = 0) -> ExperimentResult:
    """Fig. 11: drive the word-count splits past capacity.

    Storm: the overloaded split's queue grows until OutOfMemoryError,
    the supervisor restarts it (losing the backlog), and the cycle
    repeats — periodic throughput collapses at the count stage.
    Typhoon: the auto-scaler sees queue levels rise and launches a third
    split; throughput stabilizes (Figs. 11(b)/(c)).
    """
    engine = Engine()
    # Tight memory so OOM cycles fit the compressed timeline.
    costs = DEFAULT_COSTS.scaled(worker_memory_limit_bytes=2 * 1024 * 1024)
    cluster = _cluster(system, engine, hosts=3, costs=costs, seed=seed)
    config = TopologyConfig(batch_size=100, max_spout_rate=FIG11_RATE,
                            enable_oom=True)
    cluster.submit(word_count_topology(
        "wc", config, splits=2, counts=4, words_per_sentence=1,
        split_work_cost=FIG11_SPLIT_WORK))
    scaler = None
    if system == "typhoon":
        policy = ScalingPolicy(high_queue_depth=50, max_parallelism=3,
                               min_parallelism=2, cooldown=30.0,
                               low_intervals_required=10 ** 6)
        scaler = cluster.register_app(AutoScaler(
            cluster, "wc", components=["split"], policy=policy,
            poll_interval=5.0))
    engine.run(until=FIG11_END)

    result = ExperimentResult("Fig 11 auto scaling (%s)" % system)
    for series in _component_series(cluster, "wc", "count", FIG11_END):
        result.add_series(series)
    crashes = sum(
        agent.restarts for agent in cluster.manager.agents.values())
    result.scalars["worker_restarts"] = crashes
    early = _sink_rate(cluster, "wc", "count", (10, 40))
    late = _sink_rate(cluster, "wc", "count", (150, 290))
    result.scalars["aggregate_early"] = early
    result.scalars["aggregate_late"] = late
    if scaler is not None:
        result.scalars["scale_ups"] = scaler.scale_ups
        record = cluster.manager.topologies["wc"]
        result.scalars["final_split_parallelism"] = (
            record.logical.node("split").parallelism)
        for series in _component_series(cluster, "wc", "split", FIG11_END,
                                        label_prefix="s-"):
            result.add_series(series)
    rows = [["t=10..40", "%.0f" % early], ["t=150..290", "%.0f" % late],
            ["worker restarts", crashes]]
    result.add_table("aggregate count-stage throughput",
                     ["window", "value"], rows)
    # OOM restarts discard executor input backlogs *after* delivery, which
    # the transport-level identity does not cover; record the residual but
    # do not fail the run on it.
    _audit(result, cluster, strict=False)
    return result


# =====================================================================
# Fig. 12: live debugging overhead
# =====================================================================

FIG12_END = 6.0
FIG12_DEBUG_START = _DEPLOY + 1.3
FIG12_DEBUG_END = _DEPLOY + 2.9


def fig12_debug(system: str, seed: int = 0) -> ExperimentResult:
    """Fig. 12: mirror a max-speed source to a debug worker mid-run.

    Storm replicates tuples at the application layer (one extra
    serialization per tuple) and its throughput drops while logging is
    active; Typhoon mirrors frames in the switch and is unaffected.
    (Timeline compressed: activation window ~1.6 s instead of the
    paper's ~30 s; the measured quantity is steady-state throughput.)
    """
    engine = Engine()
    cluster = _cluster(system, engine, hosts=1, seed=seed)
    config = TopologyConfig(batch_size=100)
    if system == "storm":
        # Pre-provisioned debug worker (Table 5): part of the topology.
        from ..workloads import NullSinkBolt, SequenceSpout
        builder = TopologyBuilder("dbg", config)
        builder.set_spout("source", SequenceSpout, 1)
        builder.set_bolt("sink", NullSinkBolt, 1).shuffle_grouping("source")
        builder.set_bolt("__debug__", NullSinkBolt, 1)
        cluster.submit(builder.build())
        engine.run(until=FIG12_DEBUG_START)
        cluster.set_debug_tap("dbg", "source", True)
        engine.run(until=FIG12_DEBUG_END)
        cluster.set_debug_tap("dbg", "source", False)
        engine.run(until=FIG12_END)
    else:
        cluster.submit(forwarding_topology("dbg", config))
        debugger = cluster.register_app(LiveDebugger(cluster))
        engine.run(until=FIG12_DEBUG_START)
        debugger.tap("dbg", "source")
        engine.run(until=FIG12_DEBUG_END)
        debugger.untap("dbg", "source")
        engine.run(until=FIG12_END)

    result = ExperimentResult("Fig 12 live debugging overhead (%s)" % system)
    record = cluster.manager.topologies["dbg"]
    sink_id = record.physical.worker_ids_for("sink")[0]
    meter = cluster.metrics.meter("dbg.sink.%d.processed" % sink_id)
    series = Series.from_timeseries(
        system.upper(), meter.series(0, FIG12_END))
    result.add_series(series)
    before = meter.rate(_DEPLOY + 0.4, FIG12_DEBUG_START - 0.1)
    during = meter.rate(FIG12_DEBUG_START + 0.4, FIG12_DEBUG_END - 0.1)
    after = meter.rate(FIG12_DEBUG_END + 0.4, FIG12_END)
    result.scalars["before"] = before
    result.scalars["during"] = during
    result.scalars["after"] = after
    result.scalars["during_over_before"] = (during / before) if before else 0
    result.add_table(
        "topology throughput (tuples/sec)",
        ["phase", "tuples/sec"],
        [["before debugging", "%.0f" % before],
         ["during debugging", "%.0f" % during],
         ["after debugging", "%.0f" % after]])
    return result


# =====================================================================
# Fig. 13/14: Yahoo pipeline + runtime computation-logic update
# =====================================================================

FIG14_RATE = 4000.0
FIG14_RECONFIG = 60.0
FIG14_END = 120.0


def fig14_reconfig(seed: int = 0) -> ExperimentResult:
    """Fig. 14: hot-swap the Yahoo pipeline's filter (view -> view+click)
    at t=60 with no shutdown; the store stage's windowed input roughly
    doubles while the parse stage is unaffected."""
    engine = Engine()
    cluster = TyphoonCluster(engine, num_hosts=3, seed=seed)
    broker = KafkaBroker(engine, num_partitions=4)
    broker.create_topic(EVENTS_TOPIC)
    store = RedisStore()
    generator = AdEventGenerator(SeedFactory(seed).rng("ads"),
                                 num_campaigns=20, ads_per_campaign=5)
    generator.seed_redis(store)
    cluster.services["kafka"] = broker
    cluster.services["redis"] = store
    produce_events(engine, broker, EVENTS_TOPIC, generator, rate=FIG14_RATE)
    cluster.submit(yahoo_topology("yahoo", TopologyConfig(batch_size=50),
                                  allowed_events=("view",)))
    engine.run(until=FIG14_RECONFIG)
    request = cluster.replace_computation(
        "yahoo", "filter", make_filter_factory(("view", "click")))
    engine.run(until=FIG14_END)

    result = ExperimentResult("Fig 14 runtime update on computation logic")
    record = cluster.manager.topologies["yahoo"]
    for component, label in (("parse", "Parse worker"),
                             ("store", "Store worker (sink)")):
        worker_ids = record.physical.worker_ids_for(component)
        meter = cluster.metrics.meter(
            "yahoo.%s.%d.processed" % (component, worker_ids[0]))
        result.add_series(Series.from_timeseries(
            label, meter.series(0, FIG14_END)))
        result.scalars["%s_pre" % component] = meter.rate(
            20, FIG14_RECONFIG - 5)
        result.scalars["%s_post" % component] = meter.rate(
            FIG14_RECONFIG + 20, FIG14_END - 2)
    result.scalars["reconfig_ok"] = float(bool(
        request.triggered and not request.failed))
    result.scalars["store_post_over_pre"] = (
        result.scalars["store_post"] / result.scalars["store_pre"]
        if result.scalars["store_pre"] else 0.0)
    result.add_table(
        "throughput around the reconfiguration (tuples/sec)",
        ["worker", "pre (t<60)", "post (t>80)"],
        [["parse", "%.0f" % result.scalars["parse_pre"],
          "%.0f" % result.scalars["parse_post"]],
         ["store", "%.0f" % result.scalars["store_pre"],
          "%.0f" % result.scalars["store_post"]]])
    _audit(result, cluster)
    return result


# =====================================================================
# Table 5: live debugger capability comparison
# =====================================================================


def table5_debugger() -> ExperimentResult:
    """Table 5: Storm vs Typhoon live-debugging capabilities, generated
    from the capability flags the two implementations declare."""
    result = ExperimentResult("Table 5 live debugger comparison")
    rows = []
    fields = (("Debugging granularity", "granularity"),
              ("Resource requirement", "resources"),
              ("Dynamic provisioning", "dynamic_provisioning"),
              ("Multiple serialization", "multiple_serialization"))
    for label, key in fields:
        rows.append([
            label,
            _yesno(STORM_DEBUGGER_CAPABILITIES[key]),
            _yesno(TYPHOON_DEBUGGER_CAPABILITIES[key]),
        ])
    result.add_table("capability matrix", ["property", "Storm", "Typhoon"],
                     rows)
    result.scalars["typhoon_dynamic"] = float(
        TYPHOON_DEBUGGER_CAPABILITIES["dynamic_provisioning"])
    result.scalars["storm_multi_serialization"] = float(
        STORM_DEBUGGER_CAPABILITIES["multiple_serialization"])
    return result


def _yesno(value) -> str:
    if isinstance(value, bool):
        return "Yes" if value else "No"
    return str(value)

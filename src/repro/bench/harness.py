"""Experiment harness: run the paper's experiments and print the same
rows/series the evaluation section reports.

Each experiment function in :mod:`repro.bench.figures` returns a typed
result object; the helpers here render them as aligned text tables and
ASCII series so the benchmark runs are self-describing (see
``bench_output.txt`` / EXPERIMENTS.md).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence, Tuple

from ..sim.metrics import TimeSeries


def write_json_report(result: Dict[str, Any], path: str) -> None:
    """Write a benchmark result dict as stable, diff-friendly JSON (the
    BENCH_*.json convention: indented, sorted keys, trailing newline).
    Shared by every bench harness so the artifact format cannot drift."""
    with open(path, "w") as handle:
        json.dump(result, handle, indent=2, sort_keys=True)
        handle.write("\n")


@dataclass
class Series:
    """One named line in a time-series or CDF figure."""

    name: str
    points: List[Tuple[float, float]]

    @classmethod
    def from_timeseries(cls, name: str, series: TimeSeries) -> "Series":
        return cls(name, list(series))

    def value_near(self, x: float) -> float:
        if not self.points:
            return 0.0
        best = min(self.points, key=lambda p: abs(p[0] - x))
        return best[1]

    def mean_between(self, x0: float, x1: float) -> float:
        values = [y for x, y in self.points if x0 <= x <= x1]
        if not values:
            return 0.0
        return sum(values) / len(values)

    def max_between(self, x0: float, x1: float) -> float:
        values = [y for x, y in self.points if x0 <= x <= x1]
        return max(values) if values else 0.0


def format_table(title: str, headers: Sequence[str],
                 rows: Sequence[Sequence[object]]) -> str:
    """Render an aligned text table."""
    cells = [[str(h) for h in headers]]
    for row in rows:
        cells.append([_fmt(value) for value in row])
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = [title, "-" * len(title)]
    for index, row in enumerate(cells):
        lines.append("  ".join(cell.ljust(width)
                               for cell, width in zip(row, widths)))
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return "%.0f" % value
        if abs(value) >= 1:
            return "%.2f" % value
        return "%.4f" % value
    return str(value)


def format_series(title: str, series_list: Sequence[Series],
                  width: int = 64, height: int = 12) -> str:
    """Render overlapping series as a compact ASCII chart plus summary."""
    lines = [title, "-" * len(title)]
    all_points = [p for s in series_list for p in s.points]
    if not all_points:
        lines.append("(no data)")
        return "\n".join(lines)
    xs = [p[0] for p in all_points]
    ys = [p[1] for p in all_points]
    x0, x1 = min(xs), max(xs)
    y0, y1 = 0.0, max(ys) or 1.0
    grid = [[" "] * width for _ in range(height)]
    marks = "0123456789abcdefghijklmnopqrstuvwxyz"
    for index, series in enumerate(series_list):
        mark = marks[index % len(marks)]
        for x, y in series.points:
            col = 0 if x1 == x0 else int((x - x0) / (x1 - x0) * (width - 1))
            row = 0 if y1 == y0 else int((y - y0) / (y1 - y0) * (height - 1))
            grid[height - 1 - row][col] = mark
    lines.append("y: 0 .. %s" % _fmt(y1))
    lines.extend("|" + "".join(row) for row in grid)
    lines.append("+" + "-" * width)
    lines.append("x: %s .. %s" % (_fmt(x0), _fmt(x1)))
    for index, series in enumerate(series_list):
        mark = marks[index % len(marks)]
        lines.append("  [%s] %s" % (mark, series.name))
    return "\n".join(lines)


@dataclass
class ExperimentResult:
    """Uniform container for one experiment's output."""

    experiment: str
    tables: List[str] = field(default_factory=list)
    series: Dict[str, Series] = field(default_factory=dict)
    scalars: Dict[str, float] = field(default_factory=dict)

    def add_table(self, title: str, headers: Sequence[str],
                  rows: Sequence[Sequence[object]]) -> None:
        self.tables.append(format_table(title, headers, rows))

    def add_series(self, series: Series) -> None:
        self.series[series.name] = series

    def render(self) -> str:
        sections = ["=== %s ===" % self.experiment]
        sections.extend(self.tables)
        if self.series:
            sections.append(format_series(
                "%s (series)" % self.experiment, list(self.series.values())))
        if self.scalars:
            rows = sorted(self.scalars.items())
            sections.append(format_table("scalars", ("name", "value"), rows))
        return "\n\n".join(sections)

    def show(self) -> None:
        print()
        print(self.render())

"""Wall-clock hot-path micro-benchmarks (``repro bench --perf``).

Every other bench in this repo measures *virtual* time — deterministic,
machine-independent, and blind to how fast the reproduction itself runs.
This harness establishes the repo's wall-clock perf trajectory: it times
the three real hot paths (flow-table lookup, tuple encode, tuple decode)
plus the fig8 forwarding and fig9 broadcast end-to-end paths on the host
clock, and writes ``BENCH_hotpath.json``.

The baseline is not a number copied from an older commit: the pre-PR
implementations live on in :mod:`repro.bench.legacy` and are re-measured
in the same process, so the reported speedups compare optimized vs.
unoptimized code *on the same machine, same Python, same run*.

Determinism note: wall-clock numbers vary run to run, but the harness's
*virtual* outputs (fig8/fig9 throughputs, cache hit counts, encoded
corpus bytes) are seed-determined and double as a regression check.
"""

from __future__ import annotations

import cProfile
import io
import pstats
import time
from typing import Any, Dict, List, Tuple

from ..net.addresses import BROADCAST, CONTROLLER_ADDRESS, TYPHOON_ETHERTYPE, WorkerAddress
from ..net.ethernet import EthernetFrame
from ..sdn.flow import FlowEntry, FlowTable, Match, Output, SetTunnelDst
from ..sdn.flow import OFPP_CONTROLLER
from ..sim import Engine
from ..sim.rng import SeedFactory
from ..streaming import TopologyConfig
from ..streaming.serialize import decode_tuple, encode_tuple
from ..streaming.tuples import Anchor, StreamTuple
from ..workloads import broadcast_topology, forwarding_topology
from .harness import write_json_report
from .legacy import (
    LegacyFlowTable,
    legacy_decode_tuple,
    legacy_encode_tuple,
)

#: Steady-state exact-match hit rate the fig8 forwarding path must reach
#: (the perf-smoke CI gate).
MIN_FIG8_HIT_RATE = 0.95

#: Share of fig8 steady-state tuples that must ride the fused
#: tuple-train fast path (perf-smoke CI gate). Seed-determined and
#: machine-independent: the forwarding workload is single-hop,
#: single-stream and unstamped, so in steady state essentially every
#: tuple belongs on a train — a drop below this means the fast-path
#: eligibility checks regressed, not that the machine was slow.
MIN_FIG8_FAST_PATH_FRACTION = 0.95

#: Tuples the fig8 steady state must deliver per wall-clock second
#: (perf-smoke CI gate). Wall-clock, so the floor follows the
#: events-per-second gate's philosophy: an order of magnitude below
#: healthy numbers (~600k/s on a quiet development machine), catching
#: an accidental return to per-tuple processing — roughly a 10-20x
#: slowdown — rather than flaking on loaded CI runners.
MIN_FIG8_TUPLES_PER_WALL_SEC = 60_000.0

#: Engine events the fig8 steady state must execute per wall second
#: (perf-smoke CI gate). The batch executor deliberately retires few,
#: large events (~7.5k/s here while delivering ~240k tuples/s), so the
#: floor sits an order of magnitude below healthy numbers — it catches
#: scheduler collapses, not machine noise on loaded CI runners.
MIN_ENGINE_EVENTS_PER_WALL_SEC = 1_500.0

#: Heap operations per executed event in the fig8 steady state
#: (perf-smoke CI gate). Seed-determined and machine-independent: the
#: calendar queue plus same-timestamp batching keeps this well under
#: one; losing either pushes it back toward the old kernel's ~2.0
#: (one push + one pop per event).
MAX_ENGINE_HEAP_OPS_PER_EVENT = 1.5

#: Entry-record allocations per executed event in the fig8 steady state
#: (perf-smoke CI gate). The free list recycles entry records, so in
#: steady state nearly every scheduled event reuses one; a value near
#: 1.0 means the free list stopped working.
MAX_ENGINE_ALLOCS_PER_EVENT = 0.5

_DEPLOY = 2.1


# -- workload construction ---------------------------------------------------


def _table_entries(app_id: int = 1, workers: int = 12,
                   tunnel_port: int = 1) -> List[FlowEntry]:
    """A representative Table-3 rule set for one fig8/fig9-style host:
    local transfers between every worker pair (quadratic in collocated
    workers, so a 12-worker host carries ~170 rules), remote-sender
    rules, a one-to-many broadcast rule per source, controller taps, and
    a pair of boosted-priority mirror rules (the live debugger's
    signature)."""
    entries: List[FlowEntry] = []
    ports = {wid: tunnel_port + 1 + wid for wid in range(workers)}
    for src in range(workers):
        src_port = ports[src]
        for dst in range(workers):
            if dst == src:
                continue
            entries.append(FlowEntry(
                Match(in_port=src_port,
                      dl_src=WorkerAddress(app_id, src),
                      dl_dst=WorkerAddress(app_id, dst),
                      ether_type=TYPHOON_ETHERTYPE),
                (Output(ports[dst]),), priority=100))
        entries.append(FlowEntry(
            Match(in_port=src_port,
                  dl_src=WorkerAddress(app_id, src),
                  dl_dst=WorkerAddress(app_id, 1000 + src),
                  ether_type=TYPHOON_ETHERTYPE),
            (SetTunnelDst("peer-host"), Output(tunnel_port)), priority=100))
        entries.append(FlowEntry(
            Match(in_port=src_port, dl_dst=BROADCAST,
                  ether_type=TYPHOON_ETHERTYPE),
            tuple(Output(ports[dst]) for dst in range(workers) if dst != src),
            priority=100))
        entries.append(FlowEntry(
            Match(in_port=src_port, dl_dst=CONTROLLER_ADDRESS,
                  ether_type=TYPHOON_ETHERTYPE),
            (Output(OFPP_CONTROLLER),), priority=100))
    # Two live-debugger mirror rules at boosted priority.
    for src in (0, 1):
        entries.append(FlowEntry(
            Match(in_port=ports[src],
                  dl_src=WorkerAddress(app_id, src),
                  dl_dst=WorkerAddress(app_id, (src + 1) % workers),
                  ether_type=TYPHOON_ETHERTYPE),
            (Output(ports[(src + 1) % workers]), Output(ports[workers - 1])),
            priority=150))
    return entries


def _lookup_frames(app_id: int = 1, workers: int = 12,
                   tunnel_port: int = 1) -> List[Tuple[EthernetFrame, int]]:
    """The frame mix a fig8 steady state offers the table: a cycle over
    the active (src, dst) pairs plus the occasional broadcast."""
    ports = {wid: tunnel_port + 1 + wid for wid in range(workers)}
    frames = []
    for src in range(workers):
        dst = (src + 1) % workers
        frames.append((EthernetFrame(dst=WorkerAddress(app_id, dst),
                                     src=WorkerAddress(app_id, src),
                                     ethertype=TYPHOON_ETHERTYPE,
                                     payload=b"x"), ports[src]))
    frames.append((EthernetFrame(dst=BROADCAST,
                                 src=WorkerAddress(app_id, 0),
                                 ethertype=TYPHOON_ETHERTYPE,
                                 payload=b"x"), ports[0]))
    return frames


def codec_corpus(seed: int = 0) -> List[StreamTuple]:
    """A fixed, seed-determined corpus covering every type tag, the
    anchored and traced envelope variants, big ints and nesting — the
    same mix the golden-bytes tests lock down."""
    rng = SeedFactory(seed).rng("bench.perf.codec")
    corpus: List[StreamTuple] = []
    words = ["the", "quick", "brown", "typhoon", "switch", "東京", "straße"]
    for i in range(64):
        kind = i % 4
        if kind == 0:       # wordcount-style: (word, count)
            values: Tuple[Any, ...] = (words[i % len(words)],
                                       rng.randrange(1, 100000))
        elif kind == 1:     # yahoo-style: dict event
            values = ({"ad_id": rng.randrange(10 ** 9),
                       "event": "view" if i % 2 else "click",
                       "ts": rng.random() * 100.0,
                       "tags": [words[i % len(words)], None, True]},)
        elif kind == 2:     # binary payload + bigint ack id
            values = (bytes(rng.randrange(256) for _ in range(32)),
                      2 ** 64 + rng.randrange(2 ** 32),
                      -(2 ** 70 + i), False)
        else:               # mixed flat tuple
            values = (None, True, False, rng.randrange(-2 ** 40, 2 ** 40),
                      rng.random(), words[i % len(words)] * (i % 7),
                      [1, "two", [3.5, None]])
        anchor = Anchor(rng.getrandbits(64), rng.getrandbits(32)) \
            if i % 3 == 0 else None
        trace_id = rng.getrandbits(63) if i % 5 == 0 else None
        corpus.append(StreamTuple(values, stream=i % 7, source_worker=i,
                                  anchor=anchor, trace_id=trace_id))
    return corpus


# -- micro timing ------------------------------------------------------------


def _time_loop(func, reps: int) -> float:
    """Wall seconds for ``reps`` calls of ``func`` (best of 3 passes)."""
    best = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        for _ in range(reps):
            func()
        best = min(best, time.perf_counter() - start)
    return best


def bench_table_lookup(iterations: int = 50_000) -> Dict[str, float]:
    entries = _table_entries()
    frames = _lookup_frames()
    table = FlowTable()
    legacy = LegacyFlowTable()
    for entry in entries:
        table.add(entry)
    for entry in _table_entries():   # fresh entries: ids differ, matches equal
        legacy.add(entry)
    # Sanity: cached and legacy answers agree on the whole frame mix.
    for frame, in_port in frames:
        hit = table.lookup_cached(frame, in_port)
        ref = legacy.lookup(frame, in_port)
        assert (hit is None) == (ref is None)
        if hit is not None:
            assert hit.match == ref.match and hit.priority == ref.priority
    n = len(frames)

    def run_current():
        for frame, in_port in frames:
            table.lookup_cached(frame, in_port)

    def run_legacy():
        for frame, in_port in frames:
            legacy.lookup(frame, in_port)

    reps = max(1, iterations // n)
    t_new = _time_loop(run_current, reps)
    t_old = _time_loop(run_legacy, reps)
    ops = reps * n
    return {
        "ops": ops,
        "current_ops_per_sec": ops / t_new,
        "baseline_ops_per_sec": ops / t_old,
        "speedup": t_old / t_new,
        "current_sec_per_op": t_new / ops,
        "baseline_sec_per_op": t_old / ops,
        "cache_hit_rate": table.cache.hit_rate,
    }


def _bench_codec(corpus: List[StreamTuple],
                 iterations: int) -> Tuple[Dict[str, float], Dict[str, float]]:
    encoded = [encode_tuple(st) for st in corpus]
    n = len(corpus)
    reps = max(1, iterations // n)

    def enc_new():
        for st in corpus:
            encode_tuple(st)

    def enc_old():
        for st in corpus:
            legacy_encode_tuple(st)

    def dec_new():
        for data in encoded:
            decode_tuple(data)

    def dec_old():
        for data in encoded:
            legacy_decode_tuple(data)

    t_enc_new = _time_loop(enc_new, reps)
    t_enc_old = _time_loop(enc_old, reps)
    t_dec_new = _time_loop(dec_new, reps)
    t_dec_old = _time_loop(dec_old, reps)
    ops = reps * n
    encode = {
        "ops": ops,
        "current_ops_per_sec": ops / t_enc_new,
        "baseline_ops_per_sec": ops / t_enc_old,
        "speedup": t_enc_old / t_enc_new,
        "current_sec_per_op": t_enc_new / ops,
        "baseline_sec_per_op": t_enc_old / ops,
    }
    decode = {
        "ops": ops,
        "current_ops_per_sec": ops / t_dec_new,
        "baseline_ops_per_sec": ops / t_dec_old,
        "speedup": t_dec_old / t_dec_new,
        "current_sec_per_op": t_dec_new / ops,
        "baseline_sec_per_op": t_dec_old / ops,
    }
    return encode, decode


# -- end-to-end wall-clock paths ---------------------------------------------


def _switch_cache_stats(cluster) -> Dict[str, float]:
    hits = sum(s.cache_hits for s in cluster.fabric.switches())
    misses = sum(s.cache_misses for s in cluster.fabric.switches())
    total = hits + misses
    return {
        "cache_hits": hits,
        "cache_misses": misses,
        "cache_hit_rate": hits / total if total else 0.0,
    }


def _train_counters(cluster, topology_id: str,
                    components=("source", "sink")) -> Dict[str, int]:
    """Tuple-train counters summed over a topology's transports and the
    fabric switches: tuples accepted for send, fused (whole-window)
    flushes and the tuples they carried, and the switch-side train
    injections / frames they fanned out to."""
    sent = flushes = fused = 0
    for component in components:
        for executor in cluster.executors_for(topology_id, component):
            transport = executor.transport
            sent += getattr(transport, "tuples_sent", 0)
            flushes += getattr(transport, "fused_flushes", 0)
            fused += getattr(transport, "fused_tuples", 0)
    return {
        "tuples_sent": sent,
        "fused_flushes": flushes,
        "fused_tuples": fused,
        "switch_trains": sum(s.trains for s in cluster.fabric.switches()),
        "switch_train_frames": sum(s.train_frames
                                   for s in cluster.fabric.switches()),
    }


def _train_metrics(pre: Dict[str, int], post: Dict[str, int],
                   wall: float) -> Dict[str, float]:
    """Steady-window train metrics from counter deltas. The deltas are
    seed-determined (regression anchors); only the rate is wall-clock."""
    sent = post["tuples_sent"] - pre["tuples_sent"]
    flushes = post["fused_flushes"] - pre["fused_flushes"]
    fused = post["fused_tuples"] - pre["fused_tuples"]
    return {
        "fast_path_fraction": fused / sent if sent else 0.0,
        "trains_per_wall_sec": flushes / wall if wall else 0.0,
        "avg_train_tuples": fused / flushes if flushes else 0.0,
        "switch_trains": post["switch_trains"] - pre["switch_trains"],
        "switch_train_frames": (post["switch_train_frames"]
                                - pre["switch_train_frames"]),
    }


#: Consecutive steady-state windows each e2e bench times; the reported
#: wall number is the best window (same best-of-N philosophy as
#: :func:`_time_loop` — one descheduling blip should not define the
#: repo's perf trajectory). Virtual outputs come from the first window
#: only and stay seed-determined.
_E2E_WINDOWS = 3
_WINDOW = 0.4


def bench_fig8_hotpath(seed: int = 0) -> Dict[str, float]:
    """Wall-clock the fig8 forwarding path (2 workers, max rate)."""
    from .figures import _cluster, _exact_rate

    engine = Engine()
    cluster = _cluster("typhoon", engine, hosts=1, seed=seed)
    cluster.submit(forwarding_topology("fwd", TopologyConfig(batch_size=100)))
    # Warm up through deployment, then measure the steady state on both
    # clocks: tuples delivered per *virtual* second (determinism check)
    # and engine events per *wall* second (the perf trajectory number).
    engine.run(until=_DEPLOY + 0.3)
    warm = _switch_cache_stats(cluster)
    trains_pre = _train_counters(cluster, "fwd")
    pre = engine.stats()
    wall_start = time.perf_counter()
    virtual_rate = _exact_rate(engine, cluster, "fwd", "sink",
                               _DEPLOY + 0.3, _DEPLOY + _WINDOW + 0.3)
    wall = time.perf_counter() - wall_start
    post = engine.stats()
    stats = _switch_cache_stats(cluster)
    trains_post = _train_counters(cluster, "fwd")
    for extra in range(1, _E2E_WINDOWS):
        t0 = _DEPLOY + 0.3 + _WINDOW * extra
        wall_start = time.perf_counter()
        _exact_rate(engine, cluster, "fwd", "sink", t0, t0 + _WINDOW)
        wall = min(wall, time.perf_counter() - wall_start)
    steady_hits = stats["cache_hits"] - warm["cache_hits"]
    steady_misses = stats["cache_misses"] - warm["cache_misses"]
    steady_total = steady_hits + steady_misses
    delivered = virtual_rate * _WINDOW
    # Calendar-queue scheduler metrics over the first measured window
    # only (warm-up events excluded): the perf trajectory tracks how
    # many events the kernel retires per wall second and how much heap
    # and allocator work each event costs.
    events = post["events_executed"] - pre["events_executed"]
    heap_ops = ((post["heap_pushes"] + post["heap_pops"])
                - (pre["heap_pushes"] + pre["heap_pops"]))
    allocs = post["entry_allocs"] - pre["entry_allocs"]
    return {
        "virtual_tuples_per_sec": virtual_rate,
        "wall_seconds": wall,
        "tuples_per_wall_sec": delivered / wall if wall else 0.0,
        "steady_state_hit_rate": (steady_hits / steady_total
                                  if steady_total else 0.0),
        "trains": _train_metrics(trains_pre, trains_post, wall),
        "engine": {
            "events_executed": events,
            "events_per_wall_sec": events / wall if wall else 0.0,
            "heap_ops_per_event": heap_ops / events if events else 0.0,
            "allocs_per_event": allocs / events if events else 0.0,
            "cancelled_high_water": post["cancelled_high_water"],
            "compactions": post["compactions"],
        },
        **stats,
    }


def bench_fig9_hotpath(seed: int = 0, sinks: int = 4) -> Dict[str, float]:
    """Wall-clock the fig9 broadcast path (1 source -> k sinks, remote)."""
    from .figures import _cluster, _exact_rate

    engine = Engine()
    cluster = _cluster("typhoon", engine, hosts=2, seed=seed)
    cluster.submit(broadcast_topology("bc", sinks,
                                     TopologyConfig(batch_size=100)))
    engine.run(until=_DEPLOY + 0.3)
    trains_pre = _train_counters(cluster, "bc")
    wall_start = time.perf_counter()
    virtual_rate = _exact_rate(engine, cluster, "bc", "sink",
                               _DEPLOY + 0.3, _DEPLOY + _WINDOW + 0.3)
    wall = time.perf_counter() - wall_start
    trains_post = _train_counters(cluster, "bc")
    for extra in range(1, _E2E_WINDOWS):
        t0 = _DEPLOY + 0.3 + _WINDOW * extra
        wall_start = time.perf_counter()
        _exact_rate(engine, cluster, "bc", "sink", t0, t0 + _WINDOW)
        wall = min(wall, time.perf_counter() - wall_start)
    delivered = virtual_rate * _WINDOW
    return {
        "sinks": sinks,
        "virtual_tuples_per_sec": virtual_rate,
        "wall_seconds": wall,
        "tuples_per_wall_sec": delivered / wall if wall else 0.0,
        "trains": _train_metrics(trains_pre, trains_post, wall),
        **_switch_cache_stats(cluster),
    }


# -- harness entry point -----------------------------------------------------


def _profiled(enabled: bool, label: str, sink: Dict[str, str], func):
    """Run ``func()``; when ``enabled``, capture a cProfile of the call
    and store its top-25-by-cumulative-time table under ``label``. The
    profiled numbers are for attribution only — cProfile's tracing
    overhead inflates the wall clocks, so gate decisions always come
    from unprofiled runs."""
    if not enabled:
        return func()
    profiler = cProfile.Profile()
    profiler.enable()
    result = func()
    profiler.disable()
    text = io.StringIO()
    pstats.Stats(profiler, stream=text).sort_stats(
        "cumulative").print_stats(25)
    sink[label] = text.getvalue()
    return result


def run_perf_bench(seed: int = 0, iterations: int = 50_000,
                   e2e: bool = True, profile: bool = False) -> Dict[str, Any]:
    """Run the full hot-path benchmark; returns the BENCH_hotpath dict.

    With ``profile`` on, each phase (micro ops, fig8 forwarding, fig9
    broadcast) also runs under cProfile and the report gains a
    ``profile`` section with the top-25 cumulative entries per phase —
    the artifact CI uploads when a perf gate fails.
    """
    profiles: Dict[str, str] = {}
    lookup = _profiled(profile, "table_lookup", profiles,
                       lambda: bench_table_lookup(iterations))
    encode, decode = _profiled(
        profile, "codec", profiles,
        lambda: _bench_codec(codec_corpus(seed), iterations))
    combined_new = (lookup["current_sec_per_op"]
                    + encode["current_sec_per_op"]
                    + decode["current_sec_per_op"])
    combined_old = (lookup["baseline_sec_per_op"]
                    + encode["baseline_sec_per_op"]
                    + decode["baseline_sec_per_op"])
    result: Dict[str, Any] = {
        "benchmark": "hotpath",
        "seed": seed,
        "iterations": iterations,
        "ops": {
            "table_lookup": lookup,
            "encode": encode,
            "decode": decode,
        },
        "combined": {
            "current_sec_per_op": combined_new,
            "baseline_sec_per_op": combined_old,
            "speedup": combined_old / combined_new,
        },
    }
    if e2e:
        fig8 = _profiled(profile, "fig8_forwarding", profiles,
                         lambda: bench_fig8_hotpath(seed))
        result["e2e"] = {
            "fig8_forwarding": fig8,
            "fig9_broadcast": _profiled(profile, "fig9_broadcast", profiles,
                                        lambda: bench_fig9_hotpath(seed)),
        }
        # Scheduler metrics from the fig8 steady state, surfaced at the
        # top level so the trajectory is one JSON path away.
        result["engine"] = fig8["engine"]
    if profile:
        result["profile"] = profiles
    return result


#: Back-compat alias: the JSON writer moved to :mod:`repro.bench.harness`
#: so every bench shares one artifact format.
write_report = write_json_report


def render_report(result: Dict[str, Any]) -> str:
    lines = ["=== hot-path wall-clock benchmark (seed %d) ==="
             % result["seed"]]
    lines.append("%-14s %14s %14s %9s" % ("op", "baseline/s", "current/s",
                                          "speedup"))
    for name in ("table_lookup", "encode", "decode"):
        op = result["ops"][name]
        lines.append("%-14s %14.0f %14.0f %8.2fx"
                     % (name, op["baseline_ops_per_sec"],
                        op["current_ops_per_sec"], op["speedup"]))
    combined = result["combined"]
    lines.append("%-14s %14s %14s %8.2fx"
                 % ("combined", "-", "-", combined["speedup"]))
    lookup = result["ops"]["table_lookup"]
    lines.append("micro lookup cache hit rate: %.4f"
                 % lookup["cache_hit_rate"])
    e2e = result.get("e2e")
    if e2e:
        fig8 = e2e["fig8_forwarding"]
        fig9 = e2e["fig9_broadcast"]
        lines.append("fig8 forwarding: %.0f virtual tuples/s, "
                     "%.0f tuples per wall second, "
                     "steady-state hit rate %.4f"
                     % (fig8["virtual_tuples_per_sec"],
                        fig8["tuples_per_wall_sec"],
                        fig8["steady_state_hit_rate"]))
        lines.append("fig9 broadcast(%d): %.0f virtual tuples/s, "
                     "%.0f tuples per wall second, hit rate %.4f"
                     % (fig9["sinks"], fig9["virtual_tuples_per_sec"],
                        fig9["tuples_per_wall_sec"],
                        fig9["cache_hit_rate"]))
        trains = fig8.get("trains")
        if trains:
            lines.append("trains: %.0f/s, %.1f tuples avg, "
                         "fast-path fraction %.4f, "
                         "%d switch trains -> %d frames"
                         % (trains["trains_per_wall_sec"],
                            trains["avg_train_tuples"],
                            trains["fast_path_fraction"],
                            trains["switch_trains"],
                            trains["switch_train_frames"]))
        eng = fig8["engine"]
        lines.append("engine: %.0f events per wall second, "
                     "%.3f heap ops/event, %.4f allocs/event, "
                     "cancelled high-water %d"
                     % (eng["events_per_wall_sec"],
                        eng["heap_ops_per_event"],
                        eng["allocs_per_event"],
                        eng["cancelled_high_water"]))
    return "\n".join(lines)


def check_gates(result: Dict[str, Any]) -> List[str]:
    """The perf-smoke CI gates; returns a list of violation messages.

    Results produced under ``--profile`` skip the wall-clock floors:
    cProfile's tracing overhead slows every loop, and the profiled run
    exists to attribute a failure already detected, not to re-judge it.
    Seed-determined gates (hit rates, fast-path fraction, heap/alloc
    ratios) still apply — profiling cannot change those.
    """
    profiled = "profile" in result
    failures = []
    e2e = result.get("e2e")
    if e2e:
        fig8 = e2e["fig8_forwarding"]
        hit_rate = fig8["steady_state_hit_rate"]
        if hit_rate < MIN_FIG8_HIT_RATE:
            failures.append(
                "fig8 steady-state cache hit rate %.4f < %.2f"
                % (hit_rate, MIN_FIG8_HIT_RATE))
        trains = fig8.get("trains")
        if trains:
            fraction = trains["fast_path_fraction"]
            if fraction < MIN_FIG8_FAST_PATH_FRACTION:
                failures.append(
                    "fig8 train fast-path fraction %.4f < %.2f "
                    "(tuples fell off the fused train path)"
                    % (fraction, MIN_FIG8_FAST_PATH_FRACTION))
        rate = fig8["tuples_per_wall_sec"]
        if not profiled and rate < MIN_FIG8_TUPLES_PER_WALL_SEC:
            failures.append(
                "fig8 tuples/wall-sec %.0f < %.0f"
                % (rate, MIN_FIG8_TUPLES_PER_WALL_SEC))
    micro_rate = result["ops"]["table_lookup"]["cache_hit_rate"]
    if micro_rate < MIN_FIG8_HIT_RATE:
        failures.append("micro lookup cache hit rate %.4f < %.2f"
                        % (micro_rate, MIN_FIG8_HIT_RATE))
    engine = result.get("engine")
    if engine:
        rate = engine["events_per_wall_sec"]
        if not profiled and rate < MIN_ENGINE_EVENTS_PER_WALL_SEC:
            failures.append(
                "engine events/wall-sec %.0f < %.0f"
                % (rate, MIN_ENGINE_EVENTS_PER_WALL_SEC))
        heap_ops = engine["heap_ops_per_event"]
        if heap_ops > MAX_ENGINE_HEAP_OPS_PER_EVENT:
            failures.append(
                "engine heap ops/event %.3f > %.2f "
                "(calendar-queue batching regressed)"
                % (heap_ops, MAX_ENGINE_HEAP_OPS_PER_EVENT))
        allocs = engine["allocs_per_event"]
        if allocs > MAX_ENGINE_ALLOCS_PER_EVENT:
            failures.append(
                "engine entry allocs/event %.4f > %.2f "
                "(free-list recycling regressed)"
                % (allocs, MAX_ENGINE_ALLOCS_PER_EVENT))
    return failures

"""Congested-scenario scheduling benchmark (``repro bench --sched``).

Two word-count-like pipelines with a skewed fields grouping share a
small cluster whose inter-host links are two orders of magnitude slower
than the default 10 GbE — the congested regime §5 motivates. The same
workload runs twice:

* **naive** — the historic block-placement scheduler, no meters;
* **resource-aware** — R-Storm-style placement from declared demand
  vectors plus the online SDN bandwidth allocator.

Both runs are fully deterministic for a fixed seed. The report
(``BENCH_sched.json``) compares end-to-end throughput, p99 tuple
latency (spouts stamp virtual send time into the payload; sinks measure
on arrival), drop counts, remote adjacent-worker crossings, and the
allocator's time-to-rebalance telemetry. The sched-smoke CI gate holds
the resource-aware/naive throughput ratio at >= 1.0 and the p99 ratio
at <= 1.0: the new scheduler must never lose to the old one here.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from .harness import write_json_report
from ..net.hosts import Cluster, HostCapacity
from ..sim.costs import DEFAULT_COSTS
from ..sim.engine import Engine
from ..streaming.topology import (
    Bolt,
    LogicalTopology,
    ResourceDemand,
    Spout,
    TopologyBuilder,
    TopologyConfig,
)
from ..core.runtime import TyphoonCluster

#: Inter-host link + NIC bandwidth (bytes/sec). ~100 KB/s: a few
#: thousand small tuples per second saturate one link, so placement
#: decides whether the pipelines congest.
LINK_BANDWIDTH = 100_000.0

#: Per-spout emission rate (tuples/sec). Two pipelines at this rate
#: overcommit a single shared link (~125 KB/s of crossing traffic under
#: block placement) but fit comfortably when spread over two links.
SPOUT_RATE = 2_500.0

#: Virtual seconds of steady-state traffic measured per run.
DURATION = 20.0

#: Fraction of tuples carrying the hot key (skewed fields grouping).
HOT_FRACTION = 0.8

#: Per-worker demand vector: four workers exactly fill no host, so
#: every pipeline must split across hosts and the placement of the
#: split decides how much traffic crosses which link.
DEMAND = ResourceDemand(cpu=30.0, memory=512.0, bandwidth=60_000.0)

#: CI gates on the resource-aware/naive comparison.
MIN_THROUGHPUT_RATIO = 1.0
MAX_P99_RATIO = 1.0


class _StampSpout(Spout):
    """Emits (key, virtual-send-time) pairs with a skewed key mix."""

    def __init__(self, rng, now):
        self.rng = rng
        self.now = now
        self.seq = 0

    def next_tuple(self, collector) -> None:
        if self.rng.random() < HOT_FRACTION:
            key = "hot"
        else:
            key = "k%d" % self.rng.randrange(8)
        collector.emit((key, self.now()), message_id=self.seq)
        self.seq += 1


class _CountBolt(Bolt):
    """Skew magnet: counts per key, forwards (key, stamp) downstream."""

    def __init__(self):
        self.counts: Dict[str, int] = {}

    def execute(self, stream_tuple, collector) -> None:
        key, stamp = stream_tuple.values
        self.counts[key] = self.counts.get(key, 0) + 1
        collector.emit((key, stamp), anchor=stream_tuple)


class _LatencySink(Bolt):
    """Terminal stage: records end-to-end virtual latencies."""

    def __init__(self, latencies: List[float], now):
        self.latencies = latencies
        self.now = now

    def execute(self, stream_tuple, collector) -> None:
        _key, stamp = stream_tuple.values
        self.latencies.append(self.now() - stamp)


def _pipeline(topology_id: str, engine: Engine, seed: int,
              latencies: List[float]) -> LogicalTopology:
    import random

    rng = random.Random(seed)
    builder = TopologyBuilder(topology_id, TopologyConfig(
        batch_size=20, max_spout_rate=SPOUT_RATE))
    builder.set_spout("gen", lambda: _StampSpout(rng, lambda: engine.now),
                      1, demand=DEMAND)
    builder.set_bolt("count", _CountBolt, 2,
                     demand=DEMAND).fields_grouping("gen", [0])
    builder.set_bolt("sink",
                     lambda: _LatencySink(latencies, lambda: engine.now),
                     1, demand=DEMAND).shuffle_grouping("count")
    return builder.build()


def _build_cluster(num_hosts: int = 3) -> Cluster:
    capacity = HostCapacity(cpu=100.0, memory=4096.0,
                            bandwidth=LINK_BANDWIDTH)
    cluster = Cluster.of_size(num_hosts, capacity=capacity)
    names = [host.name for host in cluster]
    for index, src in enumerate(names):
        for dst in names[index + 1:]:
            cluster.set_link_bandwidth(src, dst, LINK_BANDWIDTH)
    return cluster


def _remote_crossings(physical) -> int:
    """Adjacent worker pairs scheduled onto different hosts."""
    crossings = 0
    by_component: Dict[str, List[str]] = {}
    for assignment in physical.assignments.values():
        by_component.setdefault(assignment.component,
                                []).append(assignment.hostname)
    for edge in physical.edges:
        for src_host in by_component.get(edge.src, ()):
            for dst_host in by_component.get(edge.dst, ()):
                if src_host != dst_host:
                    crossings += 1
    return crossings


def _percentile(values: List[float], fraction: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(fraction * len(ordered)))
    return ordered[index]


def _run_scenario(resource_aware: bool, seed: int,
                  duration: float = DURATION) -> Dict[str, Any]:
    engine = Engine()
    costs = DEFAULT_COSTS.scaled(
        lan_bandwidth_bytes_per_sec=LINK_BANDWIDTH)
    typhoon = TyphoonCluster(engine, costs=costs, seed=seed,
                             resource_aware=resource_aware,
                             cluster=_build_cluster())
    # Congested regime: tunnels serialize at link bandwidth, so a link
    # offered more than LINK_BANDWIDTH builds a real queue.
    seen = set()
    for fabric in typhoon.fabric.hosts.values():
        for tunnel in fabric.tunnels.values():
            if id(tunnel) in seen:
                continue
            seen.add(id(tunnel))
            for host in (tunnel.host_a, tunnel.host_b):
                tunnel.channel_from(host).serialize = True
    latencies: Dict[str, List[float]] = {"alpha": [], "beta": []}
    physicals = {}
    for index, topology_id in enumerate(("alpha", "beta")):
        logical = _pipeline(topology_id, engine, seed * 1000 + index,
                            latencies[topology_id])
        physicals[topology_id] = typhoon.submit(logical)
    engine.run(until=duration)

    switch_drops = 0
    meter_drops = 0
    for fabric in typhoon.fabric.hosts.values():
        switch_drops += fabric.switch.packets_dropped
        meter_drops += fabric.switch.meter_drops
    delivered = sum(len(values) for values in latencies.values())
    all_latencies = [value for values in latencies.values()
                     for value in values]
    result: Dict[str, Any] = {
        "scheduler": "resource-aware" if resource_aware else "naive",
        "delivered": delivered,
        "throughput_tuples_per_sec": delivered / duration,
        "p50_latency": _percentile(all_latencies, 0.50),
        "p99_latency": _percentile(all_latencies, 0.99),
        "switch_drops": switch_drops,
        "meter_drops": meter_drops,
        "remote_crossings": sum(
            _remote_crossings(physical) for physical in physicals.values()),
        "placements": {
            topology_id: {
                str(wid): [a.component, a.hostname]
                for wid, a in sorted(physical.assignments.items())
            }
            for topology_id, physical in sorted(physicals.items())
        },
        "per_topology": {
            topology_id: {
                "delivered": len(values),
                "p99_latency": _percentile(values, 0.99),
            }
            for topology_id, values in sorted(latencies.items())
        },
    }
    allocator = typhoon.bandwidth_allocator
    if allocator is not None:
        snapshot = allocator.snapshot()
        result["rebalance"] = {
            "rounds": snapshot["rounds"],
            "reallocations": snapshot["reallocations"],
            "meters_installed": snapshot["meters_installed"],
            "time_to_rebalance": snapshot["last_change_time"],
            "settled_rounds": snapshot["settled_rounds"],
            "flows": snapshot["flows"],
        }
    return result


def run_sched_bench(seed: int = 0,
                    duration: float = DURATION) -> Dict[str, Any]:
    """Run both scenarios; returns the BENCH_sched dict."""
    naive = _run_scenario(False, seed, duration)
    aware = _run_scenario(True, seed, duration)
    naive_p99 = naive["p99_latency"]
    return {
        "benchmark": "sched",
        "seed": seed,
        "duration": duration,
        "link_bandwidth_bytes_per_sec": LINK_BANDWIDTH,
        "spout_rate_tuples_per_sec": SPOUT_RATE,
        "naive": naive,
        "resource_aware": aware,
        "comparison": {
            "throughput_ratio": (
                aware["throughput_tuples_per_sec"]
                / max(naive["throughput_tuples_per_sec"], 1e-9)),
            "p99_ratio": (aware["p99_latency"] / naive_p99
                          if naive_p99 > 0 else 0.0),
            "crossings_delta": (aware["remote_crossings"]
                                - naive["remote_crossings"]),
        },
    }


#: Back-compat alias: the JSON writer moved to :mod:`repro.bench.harness`
#: so every bench shares one artifact format.
write_report = write_json_report


def render_report(result: Dict[str, Any]) -> str:
    lines = ["=== congested scheduling benchmark (seed %d) ==="
             % result["seed"]]
    lines.append("%-16s %12s %12s %12s %10s" % (
        "scheduler", "tuples/s", "p99 (s)", "crossings", "drops"))
    for key in ("naive", "resource_aware"):
        run = result[key]
        lines.append("%-16s %12.0f %12.4f %12d %10d" % (
            run["scheduler"], run["throughput_tuples_per_sec"],
            run["p99_latency"], run["remote_crossings"],
            run["switch_drops"]))
    comparison = result["comparison"]
    lines.append("throughput ratio (aware/naive): %.3f"
                 % comparison["throughput_ratio"])
    lines.append("p99 ratio (aware/naive): %.3f" % comparison["p99_ratio"])
    rebalance = result["resource_aware"].get("rebalance")
    if rebalance:
        lines.append("bandwidth allocator: %d meters, %d reallocations, "
                     "rebalanced by t=%.2fs, settled for %d rounds"
                     % (rebalance["meters_installed"],
                        rebalance["reallocations"],
                        rebalance["time_to_rebalance"],
                        rebalance["settled_rounds"]))
    return "\n".join(lines)


def check_gates(result: Dict[str, Any]) -> List[str]:
    """The sched-smoke CI gates; returns a list of violation messages."""
    failures = []
    comparison = result["comparison"]
    if comparison["throughput_ratio"] < MIN_THROUGHPUT_RATIO:
        failures.append(
            "resource-aware/naive throughput ratio %.3f < %.2f"
            % (comparison["throughput_ratio"], MIN_THROUGHPUT_RATIO))
    if comparison["p99_ratio"] > MAX_P99_RATIO:
        failures.append(
            "resource-aware/naive p99 latency ratio %.3f > %.2f"
            % (comparison["p99_ratio"], MAX_P99_RATIO))
    return failures

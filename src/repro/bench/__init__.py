"""Benchmark harness and experiment implementations for §6."""

from .figures import (
    fig8a_forwarding,
    fig8b_forwarding_ack,
    fig8cd_latency,
    fig9_broadcast,
    fig10_fault,
    fig11_autoscale,
    fig12_debug,
    fig14_reconfig,
    table5_debugger,
)
from .harness import ExperimentResult, Series, format_series, format_table

__all__ = [
    "ExperimentResult",
    "Series",
    "fig10_fault",
    "fig11_autoscale",
    "fig12_debug",
    "fig14_reconfig",
    "fig8a_forwarding",
    "fig8b_forwarding_ack",
    "fig8cd_latency",
    "fig9_broadcast",
    "format_series",
    "format_table",
    "table5_debugger",
]

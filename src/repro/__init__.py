"""Typhoon: an SDN-enhanced real-time stream processing framework.

A from-scratch Python reproduction of "Typhoon: An SDN Enhanced
Real-Time Big Data Streaming Framework" (CoNEXT 2017), including the
Storm-like baseline it is evaluated against, the SDN substrate
(software switches + OpenFlow-style controller), the coordination layer,
and the paper's SDN control-plane applications.

Quickstart::

    from repro import Engine, TyphoonCluster, TopologyBuilder

    engine = Engine()
    typhoon = TyphoonCluster(engine, num_hosts=3)
    builder = TopologyBuilder("my-app")
    ...
    typhoon.submit(builder.build())
    engine.run(until=60)
"""

from .core import TyphoonCluster
from .core.apps import (
    AutoScaler,
    FaultDetector,
    LiveDebugger,
    ScalingPolicy,
    SdnLoadBalancer,
)
from .sim import DEFAULT_COSTS, CostModel, Engine
from .streaming import (
    Bolt,
    Grouping,
    LogicalTopology,
    Spout,
    StormCluster,
    StreamTuple,
    TopologyBuilder,
    TopologyConfig,
)

__version__ = "1.0.0"

__all__ = [
    "DEFAULT_COSTS",
    "AutoScaler",
    "Bolt",
    "CostModel",
    "Engine",
    "FaultDetector",
    "Grouping",
    "LiveDebugger",
    "LogicalTopology",
    "ScalingPolicy",
    "SdnLoadBalancer",
    "Spout",
    "StormCluster",
    "StreamTuple",
    "TopologyBuilder",
    "TopologyConfig",
    "TyphoonCluster",
]

"""External-system substrates: Kafka-like broker, Redis-like KV store."""

from .kafka import KafkaBroker, KafkaConsumer, KafkaProducer, Record
from .redis import RedisClient, RedisStore

__all__ = [
    "KafkaBroker",
    "KafkaConsumer",
    "KafkaProducer",
    "Record",
    "RedisClient",
    "RedisStore",
]

"""Redis-like in-memory key-value store (Yahoo benchmark state, Fig. 13).

Supports the operations the Yahoo streaming benchmark uses: plain
GET/SET, hashes (HGET/HSET/HINCRBY) and a handful of conveniences. Every
operation bills a virtual-time cost through the ``drain_cost`` protocol;
a shared store can be fronted by per-worker :class:`RedisClient` handles
so costs land on the calling worker.
"""

from __future__ import annotations

from typing import Any, Dict, List

#: Per-operation virtual-time cost (local-network Redis round trip,
#: pipelined client).
OP_COST = 25.0e-6


class RedisStore:
    """The server-side state: strings and hashes."""

    def __init__(self):
        self._strings: Dict[str, Any] = {}
        self._hashes: Dict[str, Dict[str, Any]] = {}
        self.ops = 0

    # -- strings -----------------------------------------------------------

    def get(self, key: str) -> Any:
        self.ops += 1
        return self._strings.get(key)

    def set(self, key: str, value: Any) -> None:
        self.ops += 1
        self._strings[key] = value

    def delete(self, key: str) -> bool:
        self.ops += 1
        existed = key in self._strings or key in self._hashes
        self._strings.pop(key, None)
        self._hashes.pop(key, None)
        return existed

    def exists(self, key: str) -> bool:
        self.ops += 1
        return key in self._strings or key in self._hashes

    # -- hashes --------------------------------------------------------------

    def hget(self, key: str, field: str) -> Any:
        self.ops += 1
        return self._hashes.get(key, {}).get(field)

    def hset(self, key: str, field: str, value: Any) -> None:
        self.ops += 1
        self._hashes.setdefault(key, {})[field] = value

    def hincrby(self, key: str, field: str, amount: int = 1) -> int:
        self.ops += 1
        bucket = self._hashes.setdefault(key, {})
        bucket[field] = int(bucket.get(field, 0)) + amount
        return bucket[field]

    def hgetall(self, key: str) -> Dict[str, Any]:
        self.ops += 1
        return dict(self._hashes.get(key, {}))

    def keys(self, prefix: str = "") -> List[str]:
        self.ops += 1
        names = set(self._strings) | set(self._hashes)
        return sorted(k for k in names if k.startswith(prefix))


class RedisClient:
    """Per-worker handle billing operation costs to its executor."""

    def __init__(self, store: RedisStore, op_cost: float = OP_COST):
        self.store = store
        self.op_cost = op_cost
        self._accrued = 0.0

    def _bill(self) -> None:
        self._accrued += self.op_cost

    def get(self, key: str) -> Any:
        self._bill()
        return self.store.get(key)

    def set(self, key: str, value: Any) -> None:
        self._bill()
        self.store.set(key, value)

    def delete(self, key: str) -> bool:
        self._bill()
        return self.store.delete(key)

    def exists(self, key: str) -> bool:
        self._bill()
        return self.store.exists(key)

    def hget(self, key: str, field: str) -> Any:
        self._bill()
        return self.store.hget(key, field)

    def hset(self, key: str, field: str, value: Any) -> None:
        self._bill()
        self.store.hset(key, field, value)

    def hincrby(self, key: str, field: str, amount: int = 1) -> int:
        self._bill()
        return self.store.hincrby(key, field, amount)

    def hgetall(self, key: str) -> Dict[str, Any]:
        self._bill()
        return self.store.hgetall(key)

    def drain_cost(self) -> float:
        cost, self._accrued = self._accrued, 0.0
        return cost

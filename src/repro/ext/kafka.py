"""Kafka-like partitioned log broker (Yahoo benchmark ingestion, Fig. 13).

A minimal but structurally faithful broker: named topics split into
partitions, append-only logs, offset-based consumption, and consumer
groups with static partition assignment. Producers and consumers bill
virtual-time costs through the ``drain_cost`` protocol so worker
executors charge broker round-trips to the simulation clock.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from ..sim.engine import Engine

#: Per-operation virtual-time costs (local broker, batched client).
PRODUCE_COST = 1.0e-6
FETCH_COST_PER_RECORD = 0.4e-6
FETCH_COST_BASE = 3.0e-6


@dataclass(frozen=True)
class Record:
    """One log record."""

    topic: str
    partition: int
    offset: int
    key: Any
    value: Any
    timestamp: float


class _Partition:
    __slots__ = ("log",)

    def __init__(self):
        self.log: List[Record] = []


class KafkaBroker:
    """In-memory broker with per-topic partitions."""

    def __init__(self, engine: Engine, num_partitions: int = 4):
        self.engine = engine
        self.default_partitions = num_partitions
        self._topics: Dict[str, List[_Partition]] = {}
        self.records_produced = 0

    def create_topic(self, topic: str, partitions: Optional[int] = None) -> None:
        if topic in self._topics:
            raise ValueError("topic %r exists" % topic)
        count = self.default_partitions if partitions is None else partitions
        if count <= 0:
            raise ValueError("partitions must be positive")
        self._topics[topic] = [_Partition() for _ in range(count)]

    def topics(self) -> List[str]:
        return sorted(self._topics)

    def partitions_of(self, topic: str) -> int:
        return len(self._partitions(topic))

    def _partitions(self, topic: str) -> List[_Partition]:
        if topic not in self._topics:
            raise KeyError("no topic %r" % topic)
        return self._topics[topic]

    def _partition_for(self, topic: str, key: Any) -> int:
        partitions = self._partitions(topic)
        if key is None:
            return self.records_produced % len(partitions)
        digest = zlib.crc32(repr(key).encode("utf-8"))
        return digest % len(partitions)

    def produce(self, topic: str, value: Any, key: Any = None) -> Record:
        index = self._partition_for(topic, key)
        partition = self._partitions(topic)[index]
        record = Record(topic=topic, partition=index,
                        offset=len(partition.log), key=key, value=value,
                        timestamp=self.engine.now)
        partition.log.append(record)
        self.records_produced += 1
        return record

    def fetch(self, topic: str, partition: int, offset: int,
              max_records: int) -> List[Record]:
        log = self._partitions(topic)[partition].log
        return log[offset:offset + max_records]

    def end_offset(self, topic: str, partition: int) -> int:
        return len(self._partitions(topic)[partition].log)

    def lag(self, topic: str, offsets: Dict[int, int]) -> int:
        """Total unconsumed records given per-partition offsets."""
        return sum(self.end_offset(topic, p) - offsets.get(p, 0)
                   for p in range(self.partitions_of(topic)))


class KafkaProducer:
    """Producer handle with cost billing."""

    def __init__(self, broker: KafkaBroker):
        self.broker = broker
        self._accrued = 0.0
        self.sent = 0

    def send(self, topic: str, value: Any, key: Any = None) -> Record:
        self._accrued += PRODUCE_COST
        self.sent += 1
        return self.broker.produce(topic, value, key=key)

    def drain_cost(self) -> float:
        cost, self._accrued = self._accrued, 0.0
        return cost


class KafkaConsumer:
    """Offset-tracking consumer; group members split partitions statically.

    ``member_index`` / ``group_size`` model a consumer group: member *i*
    of *n* owns partitions ``p`` with ``p % n == i``.
    """

    def __init__(self, broker: KafkaBroker, topic: str,
                 member_index: int = 0, group_size: int = 1):
        if group_size < 1 or not 0 <= member_index < group_size:
            raise ValueError("bad consumer-group coordinates")
        self.broker = broker
        self.topic = topic
        self.partitions = [p for p in range(broker.partitions_of(topic))
                           if p % group_size == member_index]
        self.offsets: Dict[int, int] = {p: 0 for p in self.partitions}
        self._accrued = 0.0
        self._next_index = 0
        self.consumed = 0

    def poll(self, max_records: int = 100) -> List[Record]:
        """Round-robin over owned partitions; advances offsets."""
        if not self.partitions:
            return []
        self._accrued += FETCH_COST_BASE
        out: List[Record] = []
        for _ in range(len(self.partitions)):
            partition = self.partitions[self._next_index % len(self.partitions)]
            self._next_index += 1
            budget = max_records - len(out)
            if budget <= 0:
                break
            records = self.broker.fetch(self.topic, partition,
                                        self.offsets[partition], budget)
            if records:
                self.offsets[partition] = records[-1].offset + 1
                out.extend(records)
        self._accrued += FETCH_COST_PER_RECORD * len(out)
        self.consumed += len(out)
        return out

    def lag(self) -> int:
        return sum(self.broker.end_offset(self.topic, p) - self.offsets[p]
                   for p in self.partitions)

    def drain_cost(self) -> float:
        cost, self._accrued = self._accrued, 0.0
        return cost

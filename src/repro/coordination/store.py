"""Central coordinator: a ZooKeeper-like hierarchical store.

Typhoon coordinates the streaming manager, worker agents, workers and the
SDN controller through global state kept in a central coordinator
(Table 1). This module reproduces the ZooKeeper primitives that design
relies on:

* a tree of *znodes* addressed by slash paths, each holding a Python
  object (the Thrift-object stand-in) and a version counter,
* compare-and-set writes (``expected_version``),
* *ephemeral* nodes bound to a session, removed when the session expires
  (how worker liveness/heartbeats surface),
* *sequence* nodes (``create(..., sequence=True)``) whose final name gets
  a monotonically increasing zero-padded counter appended — the ordering
  half of the classic leader-election recipe,
* persistent data and child watches, delivered after the coordinator
  round-trip latency.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from ..sim.costs import CostModel
from ..sim.engine import Engine


class CoordinationError(Exception):
    """Base class for coordinator errors."""


class NoNodeError(CoordinationError):
    pass


class NodeExistsError(CoordinationError):
    pass


class BadVersionError(CoordinationError):
    pass


class NotEmptyError(CoordinationError):
    pass


#: Data-watch callbacks receive ``(path, data, version)``; ``data`` is
#: ``None`` when the node was deleted.
DataWatch = Callable[[str, Any, Optional[int]], None]

#: Child-watch callbacks receive ``(path, sorted_child_names)``.
ChildWatch = Callable[[str, List[str]], None]


def _validate_path(path: str) -> str:
    if not path.startswith("/") or (path != "/" and path.endswith("/")):
        raise ValueError("bad znode path: %r" % path)
    return path


def _parent(path: str) -> str:
    if path == "/":
        raise ValueError("root has no parent")
    head, _sep, _tail = path.rpartition("/")
    return head or "/"


class _Znode:
    __slots__ = ("data", "version", "ephemeral_owner", "children")

    def __init__(self, data: Any, ephemeral_owner: Optional[str]):
        self.data = data
        self.version = 0
        self.ephemeral_owner = ephemeral_owner
        self.children: Dict[str, None] = {}


class Coordinator:
    """The central coordination store."""

    def __init__(self, engine: Engine, costs: CostModel):
        self.engine = engine
        self.costs = costs
        self._nodes: Dict[str, _Znode] = {"/": _Znode(None, None)}
        self._sessions: Dict[str, List[str]] = {}
        self._data_watches: Dict[str, List[DataWatch]] = {}
        self._child_watches: Dict[str, List[ChildWatch]] = {}
        self._sequence_counter = 0
        self.write_count = 0
        self.read_count = 0

    # -- basic operations ---------------------------------------------------

    def exists(self, path: str) -> bool:
        return _validate_path(path) in self._nodes

    def create(self, path: str, data: Any = None,
               ephemeral_owner: Optional[str] = None,
               make_parents: bool = False, sequence: bool = False) -> str:
        """Create a znode and return its final path.

        With ``sequence=True`` the given ``path`` is a name *prefix*: a
        zero-padded monotonic counter is appended (ZooKeeper's sequential
        flag), so concurrent creators get distinct, totally ordered names
        — the building block of the leader-election recipe.
        """
        _validate_path(path)
        if sequence:
            path = "%s%010d" % (path, self._sequence_counter)
            self._sequence_counter += 1
        if path in self._nodes:
            raise NodeExistsError(path)
        parent = _parent(path)
        if parent not in self._nodes:
            if not make_parents:
                raise NoNodeError(parent)
            self.create(parent, None, make_parents=True)
        if ephemeral_owner is not None:
            if ephemeral_owner not in self._sessions:
                raise CoordinationError("unknown session %r" % ephemeral_owner)
            self._sessions[ephemeral_owner].append(path)
        self.write_count += 1
        self._nodes[path] = _Znode(data, ephemeral_owner)
        name = path.rsplit("/", 1)[1]
        self._nodes[parent].children[name] = None
        self._fire_data(path)
        self._fire_children(parent)
        return path

    def set(self, path: str, data: Any, expected_version: int = -1) -> int:
        node = self._nodes.get(_validate_path(path))
        if node is None:
            raise NoNodeError(path)
        if expected_version != -1 and node.version != expected_version:
            raise BadVersionError(
                "%s: expected v%d, found v%d" % (path, expected_version,
                                                 node.version)
            )
        self.write_count += 1
        node.data = data
        node.version += 1
        self._fire_data(path)
        return node.version

    def ensure(self, path: str, data: Any = None) -> None:
        """Create ``path`` (with parents) if missing, else overwrite data."""
        if self.exists(path):
            self.set(path, data)
        else:
            self.create(path, data, make_parents=True)

    def get(self, path: str) -> Tuple[Any, int]:
        node = self._nodes.get(_validate_path(path))
        if node is None:
            raise NoNodeError(path)
        self.read_count += 1
        return node.data, node.version

    def get_data(self, path: str, default: Any = None) -> Any:
        try:
            data, _version = self.get(path)
        except NoNodeError:
            return default
        return data

    def children(self, path: str) -> List[str]:
        node = self._nodes.get(_validate_path(path))
        if node is None:
            raise NoNodeError(path)
        self.read_count += 1
        return sorted(node.children)

    def delete(self, path: str, recursive: bool = False) -> None:
        node = self._nodes.get(_validate_path(path))
        if node is None:
            raise NoNodeError(path)
        if node.children:
            if not recursive:
                raise NotEmptyError(path)
            for child in sorted(node.children):
                self.delete("%s/%s" % (path.rstrip("/"), child) if path != "/"
                            else "/" + child, recursive=True)
        self.write_count += 1
        del self._nodes[path]
        if node.ephemeral_owner is not None:
            owned = self._sessions.get(node.ephemeral_owner)
            if owned and path in owned:
                owned.remove(path)
        parent = _parent(path)
        parent_node = self._nodes.get(parent)
        if parent_node is not None:
            parent_node.children.pop(path.rsplit("/", 1)[1], None)
            self._fire_children(parent)
        self._fire_data(path, deleted=True)

    # -- sessions / ephemerals ------------------------------------------------

    def start_session(self, owner: str) -> None:
        if owner in self._sessions:
            raise CoordinationError("session %r already active" % owner)
        self._sessions[owner] = []

    def session_active(self, owner: str) -> bool:
        return owner in self._sessions

    def expire_session(self, owner: str) -> None:
        """Drop a session and delete its ephemeral nodes (worker death).

        All owned nodes are removed first; watches then fire in one
        deterministic sorted pass. Each parent that lost children gets a
        *single* child-watch delivery reflecting the final membership
        (level-triggered, like ZooKeeper) rather than one delivery per
        deleted node, and every removed path gets its data-watch delete
        notification.
        """
        paths = self._sessions.pop(owner, [])
        removed: List[str] = []
        parents = set()
        for path in sorted(paths):
            if path not in self._nodes:
                continue  # already deleted, or swept as a descendant
            parents.add(_parent(path))
            self._remove_subtree(path, removed)
        for parent in sorted(parents):
            if parent in self._nodes:
                self._fire_children(parent)
        for path in sorted(removed):
            self._fire_data(path, deleted=True)

    def _remove_subtree(self, path: str, removed: List[str]) -> None:
        """Unlink ``path`` and its descendants without firing watches."""
        node = self._nodes.get(path)
        if node is None:
            return
        for child in sorted(node.children):
            child_path = ("/" + child if path == "/"
                          else "%s/%s" % (path, child))
            self._remove_subtree(child_path, removed)
        self.write_count += 1
        del self._nodes[path]
        if node.ephemeral_owner is not None:
            owned = self._sessions.get(node.ephemeral_owner)
            if owned and path in owned:
                owned.remove(path)
        parent_node = self._nodes.get(_parent(path))
        if parent_node is not None:
            parent_node.children.pop(path.rsplit("/", 1)[1], None)
        removed.append(path)

    # -- introspection ------------------------------------------------------

    def stats(self) -> Dict[str, int]:
        """Store-health snapshot for the REST/chaos surfaces."""
        ephemerals = sum(1 for node in self._nodes.values()
                         if node.ephemeral_owner is not None)
        return {
            "znodes": len(self._nodes),
            "ephemerals": ephemerals,
            "sessions": len(self._sessions),
            "data_watches": sum(len(w) for w in self._data_watches.values()),
            "child_watches": sum(len(w) for w in self._child_watches.values()),
            "writes": self.write_count,
            "reads": self.read_count,
        }

    # -- watches ------------------------------------------------------------------

    def watch_data(self, path: str, callback: DataWatch) -> Callable[[], None]:
        """Register a persistent data watch; returns an unsubscribe."""
        watchers = self._data_watches.setdefault(_validate_path(path), [])
        watchers.append(callback)

        def unsubscribe() -> None:
            if callback in watchers:
                watchers.remove(callback)

        return unsubscribe

    def watch_children(self, path: str, callback: ChildWatch) -> Callable[[], None]:
        watchers = self._child_watches.setdefault(_validate_path(path), [])
        watchers.append(callback)

        def unsubscribe() -> None:
            if callback in watchers:
                watchers.remove(callback)

        return unsubscribe

    def _fire_data(self, path: str, deleted: bool = False) -> None:
        watchers = self._data_watches.get(path)
        if not watchers:
            return
        if deleted:
            data, version = None, None
        else:
            node = self._nodes[path]
            data, version = node.data, node.version
        for callback in list(watchers):
            self.engine.schedule(self.costs.coordinator_op_latency,
                                 callback, path, data, version)

    def _fire_children(self, path: str) -> None:
        watchers = self._child_watches.get(path)
        if not watchers:
            return
        node = self._nodes.get(path)
        names = sorted(node.children) if node is not None else []
        for callback in list(watchers):
            self.engine.schedule(self.costs.coordinator_op_latency,
                                 callback, path, names)

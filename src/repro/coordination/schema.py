"""Coordinator path schema for Typhoon's global states (Table 1).

Three state families live in the coordinator:

* **logical topologies** — topology ID, reconfiguration options,
  inter-node connectivity, node parallelism, per-node routing info;
  written by the streaming manager (and the SDN controller for
  SDN-initiated reconfigurations), read by both;
* **physical topologies** — per-worker assignment info (worker ID,
  hostname, SDN switch port, binary location); written by the streaming
  manager, read by the SDN controller, worker agents and workers;
* **worker agents** — hostname plus used/available switch ports; written
  by the agents, read by the streaming manager and SDN controller.

The payloads themselves are the dataclasses in
:mod:`repro.streaming.topology` / :mod:`repro.streaming.physical`
(our stand-in for Storm's Thrift objects).
"""

from __future__ import annotations

from typing import Any, List

from .store import Coordinator, NoNodeError

TOPOLOGIES = "/typhoon/topologies"
AGENTS = "/typhoon/agents"
WORKER_BEATS = "/typhoon/workerbeats"
METRICS = "/typhoon/metrics"


def topology_root(topology_id: str) -> str:
    return "%s/%s" % (TOPOLOGIES, topology_id)


def logical_path(topology_id: str) -> str:
    return "%s/logical" % topology_root(topology_id)


def physical_path(topology_id: str) -> str:
    return "%s/physical" % topology_root(topology_id)


def agent_path(hostname: str) -> str:
    return "%s/%s" % (AGENTS, hostname)


def worker_beat_path(topology_id: str, worker_id: int) -> str:
    return "%s/%s/%d" % (WORKER_BEATS, topology_id, worker_id)


class GlobalState:
    """Typed access to Table 1 states on top of a :class:`Coordinator`."""

    def __init__(self, coordinator: Coordinator):
        self.coordinator = coordinator

    # -- topologies ----------------------------------------------------------

    def list_topologies(self) -> List[str]:
        try:
            return self.coordinator.children(TOPOLOGIES)
        except NoNodeError:
            return []

    def write_logical(self, topology_id: str, logical: Any) -> None:
        self.coordinator.ensure(logical_path(topology_id), logical)

    def read_logical(self, topology_id: str) -> Any:
        return self.coordinator.get_data(logical_path(topology_id))

    def write_physical(self, topology_id: str, physical: Any) -> None:
        self.coordinator.ensure(physical_path(topology_id), physical)

    def read_physical(self, topology_id: str) -> Any:
        return self.coordinator.get_data(physical_path(topology_id))

    def remove_topology(self, topology_id: str) -> None:
        root = topology_root(topology_id)
        if self.coordinator.exists(root):
            self.coordinator.delete(root, recursive=True)

    def watch_physical(self, topology_id: str, callback) -> None:
        self.coordinator.watch_data(physical_path(topology_id), callback)

    def watch_logical(self, topology_id: str, callback) -> None:
        self.coordinator.watch_data(logical_path(topology_id), callback)

    # -- agents -----------------------------------------------------------------

    def register_agent(self, hostname: str, info: Any) -> None:
        self.coordinator.ensure(agent_path(hostname), info)

    def agent_info(self, hostname: str) -> Any:
        return self.coordinator.get_data(agent_path(hostname))

    def list_agents(self) -> List[str]:
        try:
            return self.coordinator.children(AGENTS)
        except NoNodeError:
            return []

    # -- worker heartbeats ---------------------------------------------------------

    def write_beat(self, topology_id: str, worker_id: int, beat: Any) -> None:
        path = worker_beat_path(topology_id, worker_id)
        if self.coordinator.exists(path):
            self.coordinator.set(path, beat)
        else:
            self.coordinator.create(path, beat, make_parents=True)

    def read_beat(self, topology_id: str, worker_id: int) -> Any:
        return self.coordinator.get_data(
            worker_beat_path(topology_id, worker_id)
        )

    def clear_beat(self, topology_id: str, worker_id: int) -> None:
        path = worker_beat_path(topology_id, worker_id)
        if self.coordinator.exists(path):
            self.coordinator.delete(path)

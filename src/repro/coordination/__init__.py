"""Central coordination: ZooKeeper-like store and Typhoon state schema."""

from .schema import AGENTS, TOPOLOGIES, WORKER_BEATS, GlobalState
from .store import (
    BadVersionError,
    CoordinationError,
    Coordinator,
    NoNodeError,
    NodeExistsError,
    NotEmptyError,
)

__all__ = [
    "AGENTS",
    "TOPOLOGIES",
    "WORKER_BEATS",
    "BadVersionError",
    "CoordinationError",
    "Coordinator",
    "GlobalState",
    "NoNodeError",
    "NodeExistsError",
    "NotEmptyError",
]

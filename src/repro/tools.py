"""Operator tooling: textual cluster/topology inspection (the Storm-UI
analog for this reproduction).

``describe_cluster`` renders a full status report for a running Storm or
Typhoon cluster: topologies, per-component worker placement and rates,
and — for Typhoon — the SDN data plane (switch flow tables, tunnel
traffic, controller counters).
"""

from __future__ import annotations

from typing import List

from .bench.harness import format_table


def describe_topology(cluster, topology_id: str,
                      rate_window: float = 5.0) -> str:
    """One topology's worker table plus recent throughput."""
    record = cluster.manager.topologies.get(topology_id)
    if record is None:
        return "topology %r is not running" % topology_id
    now = cluster.engine.now
    start = max(0.0, now - rate_window)
    rows = []
    for component in record.logical.nodes:
        for assignment in record.physical.workers_for(component):
            executor = cluster.executor(assignment.worker_id)
            if executor is None:
                status, processed, emitted, queue = "dead", "-", "-", "-"
            else:
                status = "up"
                processed = "%.0f/s" % executor.processed_meter.rate(start, now)
                emitted = "%.0f/s" % executor.emitted_meter.rate(start, now)
                queue = executor.queue_depth
            rows.append([component, assignment.worker_id,
                         assignment.hostname, status, processed, emitted,
                         queue])
    header = "topology %s (v%d, %d workers) at t=%.1f" % (
        topology_id, record.logical.version,
        len(record.physical.assignments), now)
    return format_table(header,
                        ("component", "worker", "host", "status",
                         "processed", "emitted", "queue"),
                        rows)


def describe_data_plane(cluster) -> str:
    """Typhoon SDN data plane summary (switches, rules, tunnels)."""
    fabric = getattr(cluster, "fabric", None)
    if fabric is None:
        return "no SDN data plane (Storm baseline cluster)"
    sections: List[str] = []
    rows = []
    for hostname in sorted(fabric.hosts):
        switch = fabric.hosts[hostname].switch
        rows.append([
            hostname, len(switch.flows), len(switch.ports),
            switch.packets_forwarded, switch.packets_dropped,
            switch.table_misses,
        ])
    sections.append(format_table(
        "switches", ("host", "rules", "ports", "forwarded", "dropped",
                     "misses"), rows))

    tunnel_rows = []
    seen = set()
    for hostname in sorted(fabric.hosts):
        for peer, tunnel in sorted(fabric.hosts[hostname].tunnels.items()):
            key = tuple(sorted((hostname, peer)))
            if key in seen:
                continue
            seen.add(key)
            tunnel_rows.append(["%s <-> %s" % key, tunnel.total_bytes])
    sections.append(format_table("host tunnels", ("link", "bytes"),
                                 tunnel_rows))

    controller = getattr(cluster, "sdn", None)
    if controller is not None:
        app = getattr(cluster, "app", None)
        rows = [["messages sent", controller.messages_sent],
                ["events received", controller.events_received],
                ["apps", ", ".join(a.name for a in controller.apps)]]
        if app is not None:
            rows.append(["rules installed", app.rules_installed])
            rows.append(["rules removed", app.rules_removed])
            rows.append(["control tuples sent", app.control_tuples_sent])
        sections.append(format_table("controller", ("metric", "value"),
                                     rows))
    return "\n\n".join(sections)


def describe_cluster(cluster, rate_window: float = 5.0) -> str:
    """Full status report: every topology plus the data plane."""
    sections = []
    for topology_id in sorted(cluster.manager.topologies):
        sections.append(describe_topology(cluster, topology_id,
                                          rate_window))
    if not sections:
        sections.append("(no topologies running)")
    sections.append(describe_data_plane(cluster))
    return "\n\n".join(sections)

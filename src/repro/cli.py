"""Command-line interface (the CLI box in Figs. 1 and 3).

Usage::

    python -m repro list-experiments
    python -m repro experiment fig9 [--seed N]
    python -m repro wordcount [--rate R] [--duration S] [--hosts H]
                              [--system typhoon|storm]

``experiment`` regenerates one of the paper's figures/tables and prints
the same rows/series the benchmark harness reports; ``wordcount`` runs
the Fig. 2 pipeline end to end and prints a topology summary; ``audit``
runs a scenario, quiesces the cluster and prints the per-layer tuple
conservation table (exit status 1 if any tuple is unaccounted for);
``chaos`` runs a seeded random fault scenario against the chaos workload
and checks the chaos invariants (exit status 1 on any violation) —
``--acked`` turns on the full reliability stack (acking, spout replay,
checkpointing, reliable control) and additionally requires zero
permanently-lost roots, while ``--exactly-once`` runs the actively
replicated workload under targeted regimes (replica/leader kills,
broadcast-link flap, controller outage) and requires zero lost and zero
duplicate committed tuples;
``trace`` runs the Fig. 8 forwarding workload with hop-by-hop tracing
enabled and prints the per-hop latency breakdown, verifying that every
sampled tuple's hop segments sum exactly to the end-to-end latency the
metrics registry recorded for it (exit status 1 on any mismatch);
``bench --perf`` wall-clocks the hot paths (flow-table lookup, tuple
encode/decode, fig8/fig9 end to end) against the pre-optimization
reference implementations and optionally writes ``BENCH_hotpath.json``
(exit status 1 if the fig8 steady-state cache hit rate drops below the
perf-smoke gate);
``bench --sched`` runs the congested scheduling scenario (two skewed
pipelines over bandwidth-limited links) under the naive and the
resource-aware scheduler and writes ``BENCH_sched.json`` (exit status 1
if resource-aware placement loses to naive on throughput or p99).
"""

from __future__ import annotations

import argparse
import math
import sys
from typing import Callable, Dict, List, Optional

from . import bench
from .core import TyphoonCluster
from .sim import Engine
from .streaming import StormCluster, TopologyConfig
from .workloads import word_count_topology

#: Experiment registry: name -> zero/one-arg callable returning a result.
EXPERIMENTS: Dict[str, Callable] = {
    "fig8a": bench.fig8a_forwarding,
    "fig8b": bench.fig8b_forwarding_ack,
    "fig8c": lambda seed=0: bench.fig8cd_latency(True, seed),
    "fig8d": lambda seed=0: bench.fig8cd_latency(False, seed),
    "fig9": bench.fig9_broadcast,
    "fig10-storm": lambda seed=0: bench.fig10_fault("storm", seed),
    "fig10-typhoon": lambda seed=0: bench.fig10_fault("typhoon", seed),
    "fig11-storm": lambda seed=0: bench.fig11_autoscale("storm", seed),
    "fig11-typhoon": lambda seed=0: bench.fig11_autoscale("typhoon", seed),
    "fig12-storm": lambda seed=0: bench.fig12_debug("storm", seed),
    "fig12-typhoon": lambda seed=0: bench.fig12_debug("typhoon", seed),
    "fig14": bench.fig14_reconfig,
    "table5": lambda seed=0: bench.table5_debugger(),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Typhoon (CoNEXT'17) reproduction command line",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list-experiments",
                        help="list reproducible figures/tables")

    experiment = commands.add_parser(
        "experiment", help="regenerate one evaluation figure/table")
    experiment.add_argument("name", choices=sorted(EXPERIMENTS))
    experiment.add_argument("--seed", type=int, default=0)

    wordcount = commands.add_parser(
        "wordcount", help="run the word-count pipeline end to end")
    wordcount.add_argument("--system", choices=("typhoon", "storm"),
                           default="typhoon")
    wordcount.add_argument("--rate", type=float, default=5000.0,
                           help="sentences/second")
    wordcount.add_argument("--duration", type=float, default=30.0,
                           help="virtual seconds to run")
    wordcount.add_argument("--hosts", type=int, default=3)
    wordcount.add_argument("--splits", type=int, default=2)
    wordcount.add_argument("--counts", type=int, default=4)
    wordcount.add_argument("--seed", type=int, default=0)

    audit = commands.add_parser(
        "audit",
        help="run a scenario and print the tuple-conservation table")
    audit.add_argument("--system", choices=("typhoon", "storm"),
                       default="typhoon")
    audit.add_argument("--rate", type=float, default=2000.0,
                       help="sentences/second")
    audit.add_argument("--duration", type=float, default=20.0,
                       help="virtual seconds to run before auditing")
    audit.add_argument("--hosts", type=int, default=3)
    audit.add_argument("--splits", type=int, default=2)
    audit.add_argument("--counts", type=int, default=4)
    audit.add_argument("--fault-time", type=float, default=None,
                       help="crash one split worker at this virtual time "
                            "(the Fig. 10 failure)")
    audit.add_argument("--settle", type=float, default=2.0,
                       help="drain time after deactivation")
    audit.add_argument("--seed", type=int, default=0)

    chaos = commands.add_parser(
        "chaos",
        help="run a seeded fault scenario and check the chaos invariants")
    chaos.add_argument("--system", choices=("typhoon", "storm", "both"),
                       default="typhoon")
    chaos.add_argument("--seed", type=int, default=0,
                       help="scenario seed (same seed => identical report)")
    chaos.add_argument("--hosts", type=int, default=3)
    chaos.add_argument("--duration", type=float, default=16.0,
                       help="virtual seconds of faulted run")
    chaos.add_argument("--faults", type=int, default=6,
                       help="number of injected faults")
    chaos.add_argument("--rate", type=float, default=1500.0,
                       help="tuples/second from the chaos source")
    chaos.add_argument("--acked", action="store_true",
                       help="enable the reliability stack (acking + replay "
                            "+ checkpointing + reliable control) and require "
                            "zero permanently-lost roots")
    chaos.add_argument("--exactly-once", action="store_true",
                       help="run the actively-replicated workload under "
                            "targeted fault regimes (replica/leader kills, "
                            "broadcast flap, controller outage) and require "
                            "zero lost and zero duplicate committed tuples "
                            "(typhoon only)")
    chaos.add_argument("--ha", action="store_true",
                       help="run with a replicated control plane (3 "
                            "controller instances, leader election) under "
                            "targeted HA regimes — leader kill mid-update, "
                            "successor kill, leader/store partition — and "
                            "require single-master convergence, zero rule "
                            "divergence, complete stale-master fencing and "
                            "bounded failover blackout (typhoon only)")

    trace = commands.add_parser(
        "trace",
        help="trace the forwarding workload hop by hop and print the "
             "per-hop latency breakdown")
    trace.add_argument("--seed", type=int, default=0,
                       help="same seed => byte-identical breakdown")
    trace.add_argument("--sample-every", type=int, default=7,
                       help="sample 1 in N tuples (0 disables tracing)")
    trace.add_argument("--rate", type=float, default=50_000.0,
                       help="tuples/second from the forwarding source")
    trace.add_argument("--duration", type=float, default=0.5,
                       help="virtual seconds of traced traffic")
    trace.add_argument("--hosts", type=int, default=2)

    bench_cmd = commands.add_parser(
        "bench",
        help="wall-clock benchmarks of the reproduction itself")
    bench_cmd.add_argument("--perf", action="store_true",
                           help="run the hot-path benchmark (flow lookup, "
                                "tuple encode/decode, fig8/fig9 end to end) "
                                "against the pre-optimization baselines")
    bench_cmd.add_argument("--sched", action="store_true",
                           help="run the congested-scenario scheduling "
                                "benchmark (resource-aware vs naive "
                                "placement, SDN bandwidth allocation)")
    bench_cmd.add_argument("--seed", type=int, default=0)
    bench_cmd.add_argument("--iterations", type=int, default=50_000,
                           help="target op count per micro-benchmark")
    bench_cmd.add_argument("--no-e2e", action="store_true",
                           help="skip the fig8/fig9 end-to-end runs "
                                "(micro-benchmarks only)")
    bench_cmd.add_argument("--profile", action="store_true",
                           help="run each --perf phase under cProfile and "
                                "embed the top-25 cumulative entries per "
                                "phase in the JSON report (wall-clock "
                                "gates are skipped: profiled clocks are "
                                "inflated)")
    bench_cmd.add_argument("--output", default=None, metavar="PATH",
                           help="also write the full report as JSON "
                                "(e.g. BENCH_hotpath.json)")
    return parser


def cmd_list_experiments(out=sys.stdout) -> int:
    for name in sorted(EXPERIMENTS):
        out.write("%s\n" % name)
    return 0


def cmd_experiment(name: str, seed: int, out=sys.stdout) -> int:
    runner = EXPERIMENTS[name]
    try:
        result = runner(seed)
    except TypeError:
        result = runner()
    out.write(result.render())
    out.write("\n")
    return 0


def cmd_wordcount(system: str, rate: float, duration: float, hosts: int,
                  splits: int, counts: int, seed: int,
                  out=sys.stdout) -> int:
    engine = Engine()
    cluster_class = TyphoonCluster if system == "typhoon" else StormCluster
    cluster = cluster_class(engine, num_hosts=hosts, seed=seed)
    config = TopologyConfig(batch_size=100, max_spout_rate=rate)
    physical = cluster.submit(word_count_topology(
        "wc", config, splits=splits, counts=counts))
    engine.run(until=duration)
    out.write("system: %s\n" % system)
    out.write("workers: %d across %s\n"
              % (len(physical.assignments), ", ".join(physical.hosts())))
    for component in ("source", "split", "count"):
        executors = cluster.executors_for("wc", component)
        total = sum(e.stats.processed if component != "source"
                    else e.stats.emitted for e in executors)
        out.write("%-8s workers=%d tuples=%d\n"
                  % (component, len(executors), total))
    return 0


def cmd_audit(system: str, rate: float, duration: float, hosts: int,
              splits: int, counts: int, fault_time: Optional[float],
              settle: float, seed: int, out=sys.stdout) -> int:
    from .core.audit import verify_conservation

    engine = Engine()
    cluster_class = TyphoonCluster if system == "typhoon" else StormCluster
    cluster = cluster_class(engine, num_hosts=hosts, seed=seed)
    config = TopologyConfig(batch_size=100, max_spout_rate=rate)
    cluster.submit(word_count_topology(
        "wc", config, splits=splits, counts=counts, fault_time=fault_time))
    engine.run(until=duration)
    report = verify_conservation(cluster, settle=settle, strict=False)
    out.write("system: %s\n" % system)
    out.write(report.render())
    out.write("\n")
    return 0 if report.ok else 1


def cmd_chaos(system: str, seed: int, hosts: int, duration: float,
              faults: int, rate: float, acked: bool = False,
              exactly_once: bool = False, ha: bool = False,
              out=sys.stdout) -> int:
    from .core.chaos import run_chaos, run_chaos_exactly_once, run_chaos_ha

    if ha:
        if system != "typhoon":
            out.write("--ha requires the typhoon runtime (the replicated "
                      "control plane drives the SDN fabric)\n")
            return 2
        result = run_chaos_ha(seed=seed, hosts=hosts, duration=duration,
                              rate=rate)
        out.write(result.render())
        out.write("\n")
        return 0 if result.ok else 1
    if exactly_once:
        if system != "typhoon":
            out.write("--exactly-once requires the typhoon runtime "
                      "(active replication rides the SDN fabric)\n")
            return 2
        result = run_chaos_exactly_once(seed=seed, hosts=hosts,
                                        duration=duration, faults=faults,
                                        rate=rate)
        out.write(result.render())
        out.write("\n")
        return 0 if result.ok else 1
    systems = ("typhoon", "storm") if system == "both" else (system,)
    status = 0
    for index, name in enumerate(systems):
        if index:
            out.write("\n")
        result = run_chaos(name, seed=seed, hosts=hosts, duration=duration,
                           faults=faults, rate=rate, acked=acked)
        out.write(result.render())
        out.write("\n")
        if not result.ok:
            status = 1
    return status


def cmd_trace(seed: int, sample_every: int, rate: float, duration: float,
              hosts: int, out=sys.stdout) -> int:
    from .core.tracing import run_forwarding_trace

    report, tracer, cluster = run_forwarding_trace(
        seed=seed, sample_every=sample_every, rate=rate,
        duration=duration, hosts=hosts)
    out.write(report.render())
    out.write("\n")
    if sample_every == 0:
        # Disabled tracing must be a true no-op: no spans recorded.
        ok = tracer.span_events == 0 and not tracer.traces
        out.write("tracing disabled: %s (span events=%d)\n"
                  % ("OK" if ok else "FAIL", tracer.span_events))
        return 0 if ok else 1
    if report.delivered == 0:
        out.write("hop-sum identity: FAIL (no delivered sampled tuples)\n")
        return 1
    dist = cluster.metrics.distribution("trace.e2e")
    # Per-tuple: each delivered branch's hop segments re-sum exactly to
    # the latency stored at delivery time (same fsum over the same walls).
    per_branch_ok = all(
        math.fsum(wall for _hop, wall, _cost, _event
                  in trace.segments(branch)) == e2e
        for trace in tracer.traces.values()
        for branch, e2e in trace.delivered_branches.items())
    # Aggregate: the report and the metrics registry hold the same e2e
    # sample multiset, and their fsum-based totals agree to the last bit.
    multiset_ok = sorted(report.e2e_values()) == sorted(dist.samples())
    total_ok = report.e2e_sum == dist.total()
    ok = per_branch_ok and multiset_ok and total_ok
    out.write("hop-sum identity vs metrics trace.e2e: %s "
              "(%d deliveries, per-tuple=%s multiset=%s total=%s)\n"
              % ("OK" if ok else "FAIL", report.e2e_count,
                 per_branch_ok, multiset_ok, total_ok))
    return 0 if ok else 1


def cmd_bench(perf: bool, seed: int, iterations: int, e2e: bool,
              output: Optional[str], sched: bool = False,
              profile: bool = False, out=sys.stdout) -> int:
    if sched:
        from .bench.sched import (
            check_gates,
            render_report,
            run_sched_bench,
            write_report,
        )

        result = run_sched_bench(seed=seed)
        default_output = "BENCH_sched.json"
    elif perf:
        from .bench.perf import (
            check_gates,
            render_report,
            run_perf_bench,
            write_report,
        )

        result = run_perf_bench(seed=seed, iterations=iterations, e2e=e2e,
                                profile=profile)
        default_output = None
    else:
        out.write("nothing to do: pass --perf or --sched\n")
        return 2
    out.write(render_report(result))
    out.write("\n")
    output = output or default_output
    if output:
        write_report(result, output)
        out.write("wrote %s\n" % output)
    failures = check_gates(result)
    for failure in failures:
        out.write("GATE FAIL: %s\n" % failure)
    return 1 if failures else 0


def main(argv: Optional[List[str]] = None, out=sys.stdout) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list-experiments":
        return cmd_list_experiments(out)
    if args.command == "experiment":
        return cmd_experiment(args.name, args.seed, out)
    if args.command == "wordcount":
        return cmd_wordcount(args.system, args.rate, args.duration,
                             args.hosts, args.splits, args.counts,
                             args.seed, out)
    if args.command == "audit":
        return cmd_audit(args.system, args.rate, args.duration, args.hosts,
                         args.splits, args.counts, args.fault_time,
                         args.settle, args.seed, out)
    if args.command == "chaos":
        return cmd_chaos(args.system, args.seed, args.hosts, args.duration,
                         args.faults, args.rate, args.acked,
                         args.exactly_once, args.ha, out)
    if args.command == "trace":
        return cmd_trace(args.seed, args.sample_every, args.rate,
                         args.duration, args.hosts, out)
    if args.command == "bench":
        return cmd_bench(args.perf, args.seed, args.iterations,
                         not args.no_e2e, args.output, args.sched,
                         args.profile, out)
    return 2

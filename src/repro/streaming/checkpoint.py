"""Stateful worker checkpoint/restore (§8's external storage, owned by
the framework instead of the application).

The Fig. 6 stable-update machinery already migrates state *between*
workers during planned reconfigurations; this module covers the
*unplanned* path: a stateful worker crashes, the supervisor relaunches
it, and without help the replacement opens with empty state. With
checkpointing enabled (``TopologyConfig.checkpoint_interval``) the
executor periodically asks the component for a snapshot
(:meth:`~repro.streaming.topology.Component.snapshot`) and persists it
in a :class:`CheckpointStore` kept in ``cluster.services`` — the same
durable-external-storage stand-in the chaos workload's dedup registry
uses. On start, a worker whose store holds a snapshot restores it
before processing anything.

Exactly-once composition: when the topology also enables acking, the
executor *defers* the acks of tuples a checkpointing component applied
until the next snapshot is persisted. A crash therefore loses only
tuples whose trees had not completed, and those are exactly the ones
the spout replay layer (:mod:`.replay`) re-emits — the restored state
never silently contains unacked work.

For a stronger guarantee that needs neither acking nor replay, see
active replication (:mod:`.replication`): replicated bolts restore from
the group's own leader snapshot (superseding any checkpoint restore)
and catch up from the sequenced input log, giving exactly-once output
through a transactional commit protocol instead of deferred acks.
"""

from __future__ import annotations

import copy
from typing import Any, Dict, Optional, Tuple

#: ``cluster.services`` key the executor looks the store up by.
CHECKPOINT_SERVICE = "checkpoints"


class CheckpointStore:
    """Durable snapshot store keyed by worker id.

    Snapshots are deep-copied on both save and load: the store models
    external storage, so a component mutating its live state must never
    reach back into a persisted snapshot (and vice versa)."""

    def __init__(self):
        self._snapshots: Dict[int, Tuple[float, Any]] = {}
        self.saves = 0
        self.restores = 0

    def save(self, worker_id: int, state: Any, now: float) -> None:
        self._snapshots[worker_id] = (now, copy.deepcopy(state))
        self.saves += 1

    def load(self, worker_id: int) -> Optional[Any]:
        entry = self._snapshots.get(worker_id)
        if entry is None:
            return None
        self.restores += 1
        return copy.deepcopy(entry[1])

    def has(self, worker_id: int) -> bool:
        return worker_id in self._snapshots

    def time_of(self, worker_id: int) -> Optional[float]:
        entry = self._snapshots.get(worker_id)
        return entry[0] if entry is not None else None

    def discard(self, worker_id: int) -> None:
        self._snapshots.pop(worker_id, None)

    def stats(self) -> Dict[str, int]:
        return {
            "workers": len(self._snapshots),
            "saves": self.saves,
            "restores": self.restores,
        }

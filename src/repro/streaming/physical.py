"""Physical topologies: scheduled worker assignments (Fig. 2b).

The scheduler converts a logical topology into a physical one by
expanding node parallelism into *workers* and placing each worker on a
compute host. Each worker receives a unique worker ID and its transport
endpoint: a TCP (host, port) pair in the Storm baseline, or an SDN switch
port (plus the 16-bit application address prefix) in Typhoon — exactly
the per-worker assignment info of Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

from .topology import Edge


@dataclass(frozen=True)
class WorkerAssignment:
    """Placement of one worker (one parallel task of one node)."""

    worker_id: int
    component: str
    task_index: int
    hostname: str
    switch_port: Optional[int] = None   # Typhoon: host switch port
    tcp_port: Optional[int] = None      # Storm: worker TCP listen port

    def relocated(self, hostname: str,
                  switch_port: Optional[int] = None,
                  tcp_port: Optional[int] = None) -> "WorkerAssignment":
        return replace(self, hostname=hostname, switch_port=switch_port,
                       tcp_port=tcp_port)


@dataclass
class PhysicalTopology:
    """The scheduled form of a logical topology."""

    topology_id: str
    app_id: int                     # 16-bit address prefix (Typhoon)
    assignments: Dict[int, WorkerAssignment]
    edges: List[Edge]
    version: int = 0
    binary_location: str = ""       # "location of application binaries"

    def worker(self, worker_id: int) -> WorkerAssignment:
        if worker_id not in self.assignments:
            raise KeyError("no worker %d in topology %s"
                           % (worker_id, self.topology_id))
        return self.assignments[worker_id]

    def workers_for(self, component: str) -> List[WorkerAssignment]:
        out = [a for a in self.assignments.values() if a.component == component]
        out.sort(key=lambda a: (a.task_index, a.worker_id))
        return out

    def worker_ids_for(self, component: str) -> List[int]:
        return [a.worker_id for a in self.workers_for(component)]

    def components(self) -> List[str]:
        return sorted({a.component for a in self.assignments.values()})

    def on_host(self, hostname: str) -> List[WorkerAssignment]:
        out = [a for a in self.assignments.values() if a.hostname == hostname]
        out.sort(key=lambda a: a.worker_id)
        return out

    def hosts(self) -> List[str]:
        return sorted({a.hostname for a in self.assignments.values()})

    def downstream_edges(self, component: str) -> List[Edge]:
        return [e for e in self.edges if e.src == component]

    def next_hop_ids(self, component: str) -> Dict[Tuple[str, int], List[int]]:
        """Map (dst_component, stream) -> ordered next-hop worker ids."""
        out: Dict[Tuple[str, int], List[int]] = {}
        for edge in self.downstream_edges(component):
            out[(edge.dst, edge.stream)] = self.worker_ids_for(edge.dst)
        return out

    def add_worker(self, assignment: WorkerAssignment) -> "PhysicalTopology":
        if assignment.worker_id in self.assignments:
            raise ValueError("worker id %d already assigned"
                             % assignment.worker_id)
        assignments = dict(self.assignments)
        assignments[assignment.worker_id] = assignment
        return PhysicalTopology(self.topology_id, self.app_id, assignments,
                                list(self.edges), self.version + 1,
                                self.binary_location)

    def remove_worker(self, worker_id: int) -> "PhysicalTopology":
        assignments = dict(self.assignments)
        assignments.pop(worker_id, None)
        return PhysicalTopology(self.topology_id, self.app_id, assignments,
                                list(self.edges), self.version + 1,
                                self.binary_location)

    def replace_worker(self, assignment: WorkerAssignment) -> "PhysicalTopology":
        assignments = dict(self.assignments)
        assignments[assignment.worker_id] = assignment
        return PhysicalTopology(self.topology_id, self.app_id, assignments,
                                list(self.edges), self.version + 1,
                                self.binary_location)

    def with_edges(self, edges: List[Edge]) -> "PhysicalTopology":
        return PhysicalTopology(self.topology_id, self.app_id,
                                dict(self.assignments), list(edges),
                                self.version + 1, self.binary_location)

    def max_worker_id(self) -> int:
        return max(self.assignments) if self.assignments else 0

"""Exactly-once via network-assisted active replication.

PR 5 delivered at-least-once (acking + spout replay + checkpoints); this
module delivers the next reliability step on the ROADMAP: *exactly-once*
for stateful bolts, built on the asset the paper gets for free from the
SDN data plane — switch-level packet replication. The design maps
Stream-based State-Machine Replication onto Typhoon's fabric:

* a component declared with ``replicas=N`` runs N copies on distinct
  hosts (the scheduler spreads them), all fed the *same* serialized
  stream: upstream workers serialize once and the sender switch fans the
  frame out through a ``GROUP_ALL`` group-table entry (GroupMod);
* a per-group **sequencer** stamps a monotonic ``(epoch, seq)`` into the
  envelope at the sender (``_FLAG_SEQUENCED`` in
  :mod:`repro.streaming.serialize`) and appends the tuple to the group's
  durable input log — the external-storage stand-in §8 prescribes;
* every replica applies inputs in strict sequence order (out-of-order
  arrivals are held, gaps are repaired from the input log), so replica
  state evolves deterministically and replica *outputs* carry identical
  deterministic output sequence numbers;
* only the **leader** replica dispatches outputs downstream; followers
  log them (first-writer-wins, divergence-checked) and stay silent;
* downstream consumers **dedup** on the output sequence (group-global
  admit watermark + sparse set), collapsing leader re-emissions and
  failover overlap to one logical stream;
* when the leader dies (the fault detector's port-delete signal), the
  smallest alive replica is promoted, the epoch is bumped, and the new
  leader re-emits every output not yet admitted downstream — duplicates
  collapse at the dedup stage, so failover is transparent;
* a **transactional sink** applies state iff :meth:`ReplicaGroup.commit`
  accepts the output sequence — commits are idempotent across crash and
  retry, which is where exactly-once actually lands.

The whole subsystem is opt-in: topologies without ``replicas > 1`` take
byte-identical code paths (two ``is not None`` tests on the hot path).
"""

from __future__ import annotations

import copy
from typing import Any, Dict, List, Optional, Set, Tuple

from .topology import (
    ALL,
    BOLT,
    DEFAULT_STREAM,
    FIELDS,
    GLOBAL,
    Edge,
    Grouping,
    LogicalTopology,
    TopologyError,
)
from .tuples import StreamTuple

#: The cluster-services key the replication subsystem lives under.
REPLICATION_SERVICE = "replication"

#: Replica aux-loop cadence: gap repair, leader snapshot/trim/re-emit.
REPLICATION_TICK = 0.25
#: Unadmitted leader outputs older than this are re-sent each tick.
REEMIT_AGE = 1.0
#: Per-tick bound on log-repair applications.  Catch-up throughput is
#: ``REPAIR_BUDGET / REPLICATION_TICK`` sequences per second; it must
#: comfortably exceed the live input rate or a replica restarted after
#: a deep failover never closes its gap before the run drains.
REPAIR_BUDGET = 1024
#: Per-tick bound on re-emitted outputs.
REEMIT_CAP = 512
#: Out-of-order arrivals a replica holds before relying on log repair.
REORDER_LIMIT = 512


class _OutputRecord:
    """One logged replica output awaiting downstream admission."""

    __slots__ = ("values", "stream", "last_sent")

    def __init__(self, values: Tuple[Any, ...], stream: int):
        self.values = values
        self.stream = stream
        #: virtual time of the most recent (re-)send; None until the
        #: leader first dispatches it.
        self.last_sent: Optional[float] = None


class ReplicaGroup:
    """Shared state of one replicated component.

    Lives in ``cluster.services`` (like the chaos dedup registry), so it
    survives worker crashes and relaunches — it models the durable
    sequencer + log the paper's §8 external storage provides. Methods are
    called from the sender (stamping), every replica (apply/log), the
    downstream consumers (admit/commit) and the failover listener.
    """

    def __init__(self, topology_id: str, component: str,
                 worker_ids: List[int], hosts: Dict[int, str]):
        self.topology_id = topology_id
        self.component = component
        self.worker_ids = sorted(worker_ids)
        self.hosts = dict(hosts)
        #: Failover generation; bumped on every promotion.
        self.epoch = 0
        self.leader: Optional[int] = self.worker_ids[0]
        self.alive: Set[int] = set()
        self.needs_reemit = False
        self.promotions = 0

        # -- sequenced input log (sender side) --
        self.next_in = 0
        self.input_log: Dict[int, StreamTuple] = {}
        self.input_base = 0

        # -- replica progress --
        #: worker -> next input seq that replica will apply
        self.applied: Dict[int, int] = {}
        #: worker -> outputs produced so far (deterministic across replicas)
        self.out_counts: Dict[int, int] = {}
        self.duplicate_inputs = 0
        self.reorder_overflow = 0
        self.repairs = 0

        # -- replica outputs --
        self.output_log: Dict[int, _OutputRecord] = {}
        self.outputs_logged = 0       # == max logged out seq + 1
        self.divergence = 0
        self.suppressed = 0
        self.reemits = 0

        # -- leader state snapshot (rejoin catch-up base) --
        #: (applied_seq, out_seq, deep-copied component state) or None
        self.state: Optional[Tuple[int, int, Any]] = None

        # -- downstream admission (dedup) --
        self.admitted_floor = -1
        self.admitted_extra: Set[int] = set()
        self.admitted = 0
        self.duplicates_collapsed = 0

        # -- transactional commits --
        self.committed: Dict[int, Tuple[Any, ...]] = {}
        self.commits = 0
        self.commit_retries = 0
        self.commit_conflicts = 0

    # -- sequencer (called by upstream senders) ----------------------------

    def stamp_input(self, stream_tuple: StreamTuple) -> Tuple[int, int]:
        """Assign the next input sequence and log the tuple durably.

        Returns the ``(epoch, seq)`` stamp the sender writes into the
        envelope before the one-and-only serialization. Replicas order
        on ``seq`` alone; the epoch rides along for observability."""
        seq = self.next_in
        self.next_in = seq + 1
        self.input_log[seq] = stream_tuple
        return (self.epoch, seq)

    def fetch_input(self, seq: int) -> Optional[StreamTuple]:
        """Gap repair: read one logged input back (None if not logged)."""
        return self.input_log.get(seq)

    # -- replica lifecycle --------------------------------------------------

    def join(self, worker_id: int, component) -> Tuple[int, int]:
        """A replica executor starts (first launch or supervisor
        relaunch). Restores the component from the leader's latest state
        snapshot when one exists and returns ``(resume_seq, out_seq)`` —
        the input position to apply next and the output count already
        produced at that position."""
        self.alive.add(worker_id)
        if self.leader is None:
            self._promote(worker_id)
        if self.state is not None:
            applied_seq, out_seq, state = self.state
            try:
                component.restore(copy.deepcopy(state))
            except Exception:
                applied_seq, out_seq = self.input_base, 0
            self.applied[worker_id] = applied_seq
            self.out_counts[worker_id] = out_seq
            return applied_seq, out_seq
        self.applied[worker_id] = self.input_base
        self.out_counts[worker_id] = 0
        return self.input_base, 0

    def mark_down(self, worker_id: int) -> None:
        """Fault-detector signal: a replica's port vanished."""
        if worker_id not in self.alive:
            return
        self.alive.discard(worker_id)
        if worker_id == self.leader:
            survivor = min(self.alive) if self.alive else None
            if survivor is None:
                self.leader = None   # next join() promotes itself
            else:
                self._promote(survivor)

    def mark_up(self, worker_id: int) -> None:
        """Port reappeared (join() does the real catch-up wiring)."""
        if worker_id in self.worker_ids:
            self.alive.add(worker_id)
            if self.leader is None:
                self._promote(worker_id)

    def _promote(self, worker_id: int) -> None:
        self.leader = worker_id
        self.epoch += 1
        self.promotions += 1
        #: the new leader must re-send everything not yet admitted —
        #: the old leader may have died with dispatched-but-lost output.
        self.needs_reemit = True

    # -- replica progress ---------------------------------------------------

    def note_applied(self, worker_id: int, next_seq: int,
                     out_seq: int) -> None:
        self.applied[worker_id] = next_seq
        self.out_counts[worker_id] = out_seq

    def log_output(self, seq: int, values: Tuple[Any, ...],
                   stream: int) -> None:
        """First-writer-wins output log with divergence detection: every
        replica logs deterministically, so a mismatch means replica
        state diverged — surfaced, never silently resolved."""
        record = self.output_log.get(seq)
        if record is None:
            if seq < self.outputs_logged and seq <= self.admitted_floor:
                return  # already admitted and trimmed; late replica
            self.output_log[seq] = _OutputRecord(values, stream)
            if seq >= self.outputs_logged:
                self.outputs_logged = seq + 1
        elif record.values != values or record.stream != stream:
            self.divergence += 1

    def mark_sent(self, seq: int, now: float) -> None:
        record = self.output_log.get(seq)
        if record is not None:
            record.last_sent = now

    def reemit_due(self, now: float) -> List[Tuple[int, Tuple[Any, ...], int]]:
        """Unadmitted outputs the leader should (re-)send now.

        After a promotion everything unadmitted is due immediately;
        otherwise an output is due once it has gone ``REEMIT_AGE``
        without being admitted. Returned entries are stamped as sent, so
        each is re-sent at most once per age window."""
        force = self.needs_reemit
        self.needs_reemit = False
        due: List[Tuple[int, Tuple[Any, ...], int]] = []
        for seq in sorted(self.output_log):
            if seq <= self.admitted_floor or seq in self.admitted_extra:
                continue
            record = self.output_log[seq]
            if not force:
                if record.last_sent is None:
                    continue  # leader hasn't produced it yet; it will send
                if now - record.last_sent < REEMIT_AGE:
                    continue
            record.last_sent = now
            due.append((seq, record.values, record.stream))
            if len(due) >= REEMIT_CAP:
                break
        if due:
            self.reemits += len(due)
        return due

    # -- leader snapshot + log trimming ------------------------------------

    def save_state(self, worker_id: int, applied_seq: int, out_seq: int,
                   state: Any) -> None:
        """Leader persists its state each tick; rejoining replicas
        restore from here instead of replaying the whole log."""
        if worker_id != self.leader or state is None:
            return
        if self.state is not None and self.state[0] >= applied_seq:
            return
        self.state = (applied_seq, out_seq, copy.deepcopy(state))

    def trim(self) -> None:
        """Drop log entries nobody can ever need again: inputs below the
        snapshot *and* below every alive replica's position; outputs at
        or below the downstream admit watermark."""
        floor = self.state[0] if self.state is not None else 0
        for worker_id in self.alive:
            floor = min(floor, self.applied.get(worker_id, 0))
        if floor > self.input_base:
            for seq in [s for s in self.input_log if s < floor]:
                del self.input_log[seq]
            self.input_base = floor
        for seq in [s for s in self.output_log
                    if s <= self.admitted_floor]:
            del self.output_log[seq]

    # -- downstream admission + transactional commit -----------------------

    def admit(self, seq: int) -> bool:
        """Group-global dedup: True exactly once per output sequence.

        The window is a compacted watermark + sparse overflow set, so
        memory stays bounded by the reorder spread, not the stream
        length."""
        if seq <= self.admitted_floor or seq in self.admitted_extra:
            self.duplicates_collapsed += 1
            return False
        self.admitted_extra.add(seq)
        self.admitted += 1
        while self.admitted_floor + 1 in self.admitted_extra:
            self.admitted_floor += 1
            self.admitted_extra.discard(self.admitted_floor)
        return True

    def commit(self, seq: int, values: Tuple[Any, ...]) -> bool:
        """Idempotent transactional commit: the sink applies its state
        change iff this returns True. A retry of an identical commit is
        collapsed; a retry carrying *different* values is a conflict
        (would-be duplicate with divergent payload) and is counted and
        refused."""
        existing = self.committed.get(seq)
        if existing is not None:
            if existing != tuple(values):
                self.commit_conflicts += 1
            else:
                self.commit_retries += 1
            return False
        self.committed[seq] = tuple(values)
        self.commits += 1
        return True

    # -- reporting ----------------------------------------------------------

    def applied_floor(self) -> int:
        """Slowest alive replica's input position (0 when none alive)."""
        if not self.alive:
            return 0
        return min(self.applied.get(w, 0) for w in self.alive)

    def snapshot(self) -> Dict[str, object]:
        return {
            "topology": self.topology_id,
            "component": self.component,
            "replicas": list(self.worker_ids),
            "hosts": {str(w): h for w, h in sorted(self.hosts.items())},
            "alive": sorted(self.alive),
            "leader": self.leader,
            "epoch": self.epoch,
            "promotions": self.promotions,
            "inputs": self.next_in,
            "applied": {str(w): self.applied.get(w, 0)
                        for w in self.worker_ids},
            "input_log": len(self.input_log),
            "duplicate_inputs": self.duplicate_inputs,
            "repairs": self.repairs,
            "reorder_overflow": self.reorder_overflow,
            "outputs": self.outputs_logged,
            "divergence": self.divergence,
            "suppressed": self.suppressed,
            "reemits": self.reemits,
            "admitted": self.admitted,
            "duplicates_collapsed": self.duplicates_collapsed,
            "commits": self.commits,
            "commit_retries": self.commit_retries,
            "commit_conflicts": self.commit_conflicts,
        }


class ReplicationService:
    """Registry of replica groups plus the failover entry points.

    One per cluster, under :data:`REPLICATION_SERVICE` in
    ``cluster.services``. The runtime registers groups at submit time and
    wires the controller app's port listeners to
    :meth:`on_worker_down` / :meth:`on_worker_up`."""

    def __init__(self) -> None:
        self.groups: Dict[Tuple[str, str], ReplicaGroup] = {}
        self._by_worker: Dict[int, ReplicaGroup] = {}
        #: (topology_id, consumer component) -> the group it dedups for
        self._consumers: Dict[Tuple[str, str], ReplicaGroup] = {}

    def register_topology(self, logical: LogicalTopology,
                          physical) -> List[ReplicaGroup]:
        """Create groups for every replicated node of a deployed
        topology and index the downstream dedup consumers."""
        out: List[ReplicaGroup] = []
        for name, node in logical.nodes.items():
            if getattr(node, "replicas", 1) <= 1:
                continue
            worker_ids = sorted(physical.worker_ids_for(name))
            hosts = {
                wid: physical.assignments[wid].hostname
                for wid in worker_ids
            }
            group = ReplicaGroup(logical.topology_id, name, worker_ids,
                                 hosts)
            self.groups[(logical.topology_id, name)] = group
            for wid in worker_ids:
                self._by_worker[wid] = group
            for edge in logical.outgoing(name):
                self._consumers[(logical.topology_id, edge.dst)] = group
            out.append(group)
        return out

    def unregister_topology(self, topology_id: str) -> None:
        for key in [k for k in self.groups if k[0] == topology_id]:
            group = self.groups.pop(key)
            for wid in group.worker_ids:
                self._by_worker.pop(wid, None)
        for key in [k for k in self._consumers if k[0] == topology_id]:
            del self._consumers[key]

    # -- lookups ------------------------------------------------------------

    def group_of(self, topology_id: str,
                 component: str) -> Optional[ReplicaGroup]:
        """The group ``component`` is a replica of (None if not one)."""
        return self.groups.get((topology_id, component))

    def dedup_of(self, topology_id: str,
                 component: str) -> Optional[ReplicaGroup]:
        """The group whose outputs ``component`` consumes (and must
        dedup), or None."""
        return self._consumers.get((topology_id, component))

    def active(self) -> bool:
        return bool(self.groups)

    # -- failover entry points (controller port listeners) ------------------

    def on_worker_down(self, worker_id: int) -> None:
        group = self._by_worker.get(worker_id)
        if group is not None:
            group.mark_down(worker_id)

    def on_worker_up(self, worker_id: int) -> None:
        group = self._by_worker.get(worker_id)
        if group is not None:
            group.mark_up(worker_id)

    # -- reporting ----------------------------------------------------------

    def totals(self) -> Dict[str, int]:
        keys = ("inputs", "outputs", "admitted", "duplicates_collapsed",
                "commits", "commit_retries", "commit_conflicts",
                "divergence", "suppressed", "reemits", "repairs",
                "promotions", "duplicate_inputs")
        totals = {key: 0 for key in keys}
        totals["groups"] = len(self.groups)
        totals["applied_floor"] = 0
        for group in self.groups.values():
            snap = group.snapshot()
            for key in keys:
                totals[key] += snap[key]  # type: ignore[operator]
            totals["applied_floor"] += group.applied_floor()
        return totals

    def snapshot(self) -> Dict[str, object]:
        return {
            "%s/%s" % key: group.snapshot()
            for key, group in sorted(self.groups.items())
        }


# -- topology expansion --------------------------------------------------------


def expand_replicas(logical: LogicalTopology) -> LogicalTopology:
    """Rewrite a topology with ``replicas > 1`` nodes for deployment.

    Each replicated node's parallelism becomes its replica count and
    every incoming data edge switches to ALL grouping, so the sender
    switch broadcasts one serialized stream to all replicas (GroupMod
    fan-out). Topologies without replicated nodes are returned unchanged
    — the default path stays byte-identical.
    """
    replicated = [name for name, node in logical.nodes.items()
                  if getattr(node, "replicas", 1) > 1]
    if not replicated:
        return logical
    if logical.config.acking:
        # The XOR ack ledger counts every delivery; N byte-identical
        # replica deliveries per tuple would corrupt it. Replication
        # brings its own reliability (sequenced log + re-emit + commit).
        raise TopologyError(
            "replicated topologies provide exactly-once themselves; "
            "run them with acking off")
    out = logical.clone()
    for name in replicated:
        node = out.nodes[name]
        if node.kind != BOLT or not node.stateful:
            raise TopologyError(
                "only stateful bolts can be replicated (%r)" % name)
        node.parallelism = node.replicas
        for edge in out.outgoing(name):
            if edge.stream == DEFAULT_STREAM and \
                    edge.grouping.kind not in (FIELDS, GLOBAL):
                # Leader re-emits must route identically to the original
                # sends for dedup to collapse them; only value-determined
                # routing guarantees that.
                raise TopologyError(
                    "replicated node %r requires key-based or global "
                    "routing on its outputs" % name)
    out.edges = [
        Edge(edge.src, edge.dst, Grouping(ALL), edge.stream)
        if edge.dst in replicated else edge
        for edge in out.edges
    ]
    out.version = logical.version
    out._validate()
    return out

"""Guaranteed processing: the acker component (§6.1, "tuple forwarding
with reliability guarantee").

Storm's scheme, reproduced faithfully: every tuple tree is tracked by a
64-bit XOR ledger keyed by the root tuple id. The spout sends an INIT
entry with the root's first edge id; every bolt that finishes processing
an anchored tuple sends ``input_edge_id XOR (xor of emitted edge ids)``.
When a root's ledger reaches zero, every edge was both created and
consumed exactly once, so the tree is fully processed and the acker sends
COMPLETE back to the originating spout worker (which records end-to-end
latency — the measurement behind Figs. 8c/8d).

Two hardening layers beyond the bare scheme:

* **explicit FAIL** — a bolt calling ``collector.fail`` sends a FAIL
  entry; the acker drops the ledger and notifies the spout immediately,
  so the failure surfaces at message latency instead of tuple-timeout
  latency;
* **ledger expiry** — entries whose roots the spout has already timed
  out (tuples lost to a crash, acks that raced ahead of a lost INIT)
  would otherwise leak forever. With an ``expiry`` horizon (wired to
  ``1.5 x tuple_timeout`` by the runtime, so the spout's own timeout
  always fires first) the acker lazily evicts stale entries while
  processing ack traffic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from .executor import ACK_ACK, ACK_COMPLETE, ACK_FAIL, ACK_INIT
from .topology import Bolt, ComponentContext, EmitterApi
from .tuples import ACK_STREAM, StreamTuple

ACKER_COMPONENT = "__acker__"


@dataclass
class _Ledger:
    value: int
    spout_worker: int
    created: float = 0.0   # for per-root age tracking
    touched: float = 0.0   # last activity; expiry sweeps key off this
    failed: bool = False   # FAIL seen before INIT (notify spout on INIT)


class AckerBolt(Bolt):
    """Framework-provided bolt maintaining the XOR ledgers."""

    def __init__(self, expiry: Optional[float] = None):
        self.ledgers: Dict[int, _Ledger] = {}
        self.completed = 0
        self.initialized = 0
        self.failed = 0
        self.expired = 0
        self.expiry = expiry
        self.age_sum = 0.0   # summed completion ages (seconds)
        self.age_max = 0.0
        self._now = None
        self._next_sweep = 0.0

    def open(self, ctx: ComponentContext) -> None:
        self._now = ctx.services.get("now")

    def _time(self) -> float:
        return self._now() if self._now is not None else 0.0

    def execute(self, stream_tuple: StreamTuple, collector: EmitterApi) -> None:
        kind, root_id, value, src_worker = stream_tuple.values
        now = self._time()
        if kind == ACK_INIT:
            self.initialized += 1
            existing = self.ledgers.get(root_id)
            if existing is None:
                self.ledgers[root_id] = _Ledger(value, src_worker,
                                                created=now, touched=now)
            elif existing.failed:
                # A bolt FAILed this root before its INIT arrived.
                del self.ledgers[root_id]
                self._notify_fail(root_id, src_worker, collector)
            else:
                # Ack from a bolt raced ahead of the spout's init.
                existing.value ^= value
                existing.spout_worker = src_worker
                existing.touched = now
                self._maybe_complete(root_id, now, collector)
        elif kind == ACK_ACK:
            ledger = self.ledgers.get(root_id)
            if ledger is None:
                # Ack before init: remember the partial XOR.
                self.ledgers[root_id] = _Ledger(value, -1,
                                                created=now, touched=now)
            else:
                ledger.value ^= value
                ledger.touched = now
                self._maybe_complete(root_id, now, collector)
        elif kind == ACK_FAIL:
            self.failed += 1
            ledger = self.ledgers.get(root_id)
            if ledger is None:
                # Fail before init: leave a tombstone so the INIT (which
                # carries the spout worker id) triggers the notification.
                self.ledgers[root_id] = _Ledger(0, -1, created=now,
                                                touched=now, failed=True)
            elif ledger.spout_worker < 0:
                ledger.failed = True
                ledger.touched = now
            else:
                del self.ledgers[root_id]
                self._notify_fail(root_id, ledger.spout_worker, collector)
        self._sweep(now)

    def _maybe_complete(self, root_id: int, now: float,
                        collector: EmitterApi) -> None:
        ledger = self.ledgers.get(root_id)
        if ledger is None or ledger.value != 0 or ledger.spout_worker < 0:
            return
        del self.ledgers[root_id]
        self.completed += 1
        age = max(0.0, now - ledger.created)
        self.age_sum += age
        if age > self.age_max:
            self.age_max = age
        collector.emit_direct(
            ledger.spout_worker,
            (ACK_COMPLETE, root_id, 0, -1),
            stream=ACK_STREAM,
        )

    def _notify_fail(self, root_id: int, spout_worker: int,
                     collector: EmitterApi) -> None:
        collector.emit_direct(
            spout_worker,
            (ACK_FAIL, root_id, 0, -1),
            stream=ACK_STREAM,
        )

    def _sweep(self, now: float) -> None:
        """Lazily evict ledgers idle past the expiry horizon. Runs at
        most every ``expiry / 4`` so long-lived ackers stay O(traffic),
        and only off virtual time — no timers, no RNG, so topologies
        without leaks behave identically with or without expiry."""
        if self.expiry is None or now < self._next_sweep:
            return
        self._next_sweep = now + self.expiry / 4
        horizon = now - self.expiry
        stale = [root for root, ledger in self.ledgers.items()
                 if ledger.touched <= horizon]
        for root in stale:
            del self.ledgers[root]
        self.expired += len(stale)

    def stats(self) -> Dict[str, float]:
        """Ledger health, surfaced through the chaos snapshot."""
        mean_age = self.age_sum / self.completed if self.completed else 0.0
        return {
            "ledgers": len(self.ledgers),
            "initialized": self.initialized,
            "completed": self.completed,
            "failed": self.failed,
            "expired": self.expired,
            "mean_age": mean_age,
            "max_age": self.age_max,
        }

"""Guaranteed processing: the acker component (§6.1, "tuple forwarding
with reliability guarantee").

Storm's scheme, reproduced faithfully: every tuple tree is tracked by a
64-bit XOR ledger keyed by the root tuple id. The spout sends an INIT
entry with the root's first edge id; every bolt that finishes processing
an anchored tuple sends ``input_edge_id XOR (xor of emitted edge ids)``.
When a root's ledger reaches zero, every edge was both created and
consumed exactly once, so the tree is fully processed and the acker sends
COMPLETE back to the originating spout worker (which records end-to-end
latency — the measurement behind Figs. 8c/8d).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from .executor import ACK_ACK, ACK_COMPLETE, ACK_INIT
from .topology import Bolt, EmitterApi
from .tuples import ACK_STREAM, StreamTuple

ACKER_COMPONENT = "__acker__"


@dataclass
class _Ledger:
    value: int
    spout_worker: int


class AckerBolt(Bolt):
    """Framework-provided bolt maintaining the XOR ledgers."""

    def __init__(self):
        self.ledgers: Dict[int, _Ledger] = {}
        self.completed = 0
        self.initialized = 0

    def execute(self, stream_tuple: StreamTuple, collector: EmitterApi) -> None:
        kind, root_id, value, src_worker = stream_tuple.values
        if kind == ACK_INIT:
            self.initialized += 1
            existing = self.ledgers.get(root_id)
            if existing is None:
                self.ledgers[root_id] = _Ledger(value, src_worker)
            else:
                # Ack from a bolt raced ahead of the spout's init.
                existing.value ^= value
                existing.spout_worker = src_worker
                self._maybe_complete(root_id, collector)
        elif kind == ACK_ACK:
            ledger = self.ledgers.get(root_id)
            if ledger is None:
                # Ack before init: remember the partial XOR.
                self.ledgers[root_id] = _Ledger(value, -1)
            else:
                ledger.value ^= value
                self._maybe_complete(root_id, collector)

    def _maybe_complete(self, root_id: int, collector: EmitterApi) -> None:
        ledger = self.ledgers.get(root_id)
        if ledger is None or ledger.value != 0 or ledger.spout_worker < 0:
            return
        del self.ledgers[root_id]
        self.completed += 1
        collector.emit_direct(
            ledger.spout_worker,
            (ACK_COMPLETE, root_id, 0, -1),
            stream=ACK_STREAM,
        )

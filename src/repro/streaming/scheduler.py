"""Topology schedulers (the pluggable ``IScheduler`` interface).

The Storm baseline uses round-robin placement across hosts (the paper
runs Storm with "a round-robin topology scheduler for fair comparisons");
Typhoon plugs in a locality-aware scheduler (see
:mod:`repro.core.scheduler`) that co-locates topologically neighbouring
workers to minimize remote inter-worker communication.
"""

from __future__ import annotations

import itertools
from typing import Dict, List

from ..net.hosts import Cluster
from .physical import PhysicalTopology, WorkerAssignment
from .topology import LogicalTopology


class SchedulingError(RuntimeError):
    """Raised when a topology cannot be placed."""


class WorkerIdAllocator:
    """Hands out cluster-unique worker ids (the scheduler's job, §2)."""

    def __init__(self, start: int = 1):
        self._next = start

    def allocate(self) -> int:
        worker_id = self._next
        self._next += 1
        return worker_id

    def reserve_through(self, worker_id: int) -> None:
        self._next = max(self._next, worker_id + 1)


class IScheduler:
    """Pluggable scheduler interface (mirrors Storm's ``IScheduler``)."""

    def schedule(self, logical: LogicalTopology, cluster: Cluster,
                 app_id: int, allocator: WorkerIdAllocator) -> PhysicalTopology:
        raise NotImplementedError

    def place_one(self, physical: PhysicalTopology, component: str,
                  cluster: Cluster) -> str:
        """Pick a host for one additional worker of ``component``."""
        raise NotImplementedError


def _expand_tasks(logical: LogicalTopology) -> List[tuple]:
    """List of (component, task_index) in deterministic node order."""
    tasks = []
    for name in logical.nodes:  # insertion order = declaration order
        node = logical.nodes[name]
        for index in range(node.parallelism):
            tasks.append((name, index))
    return tasks


class RoundRobinScheduler(IScheduler):
    """Storm's default: spread tasks across hosts round-robin."""

    def schedule(self, logical: LogicalTopology, cluster: Cluster,
                 app_id: int, allocator: WorkerIdAllocator) -> PhysicalTopology:
        hosts = list(cluster)
        if not hosts:
            raise SchedulingError("no hosts available")
        assignments: Dict[int, WorkerAssignment] = {}
        host_cycle = itertools.cycle(hosts)
        for component, task_index in _expand_tasks(logical):
            worker_id = allocator.allocate()
            host = next(host_cycle)
            assignments[worker_id] = WorkerAssignment(
                worker_id=worker_id,
                component=component,
                task_index=task_index,
                hostname=host.name,
            )
        return PhysicalTopology(
            topology_id=logical.topology_id,
            app_id=app_id,
            assignments=assignments,
            edges=list(logical.edges),
            binary_location="coordinator://%s/binary" % logical.topology_id,
        )

    def place_one(self, physical: PhysicalTopology, component: str,
                  cluster: Cluster) -> str:
        # Least-loaded host keeps the round-robin spirit for increments.
        load = {host.name: 0 for host in cluster}
        for assignment in physical.assignments.values():
            load[assignment.hostname] = load.get(assignment.hostname, 0) + 1
        return min(sorted(load), key=lambda name: load[name])

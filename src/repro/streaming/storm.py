"""The Storm-like baseline runtime.

This is the system Typhoon is evaluated against: workers communicate
over **application-level TCP connections**, and a tuple sent to *k*
next-hop workers is serialized *k* times (each copy carries distinct
per-destination metadata — §1). Routing state is baked into workers at
deployment; the only reaction to failure is supervisor-local restart
plus Nimbus rescheduling after the 30 s heartbeat timeout.

The implementation note that matters for fidelity: tuple *batches* cross
TCP channels as Python objects, but every cost — per-destination
serialization, per-message syscalls, per-byte copies — is charged from
real encoded byte counts, and the byte counts come from actually encoding
each tuple once with the shared codec.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..coordination.schema import GlobalState
from ..coordination.store import Coordinator
from ..net.hosts import Cluster
from ..net.tcp import TcpChannel
from ..sim.audit import (
    LAYER_REGISTRY,
    LAYER_TRANSPORT,
    R_AFTER_CLOSE,
    R_DELIVER_REJECTED,
    R_UNRESOLVED,
    DeliveryLedger,
)
from ..sim.costs import DEFAULT_COSTS, CostModel
from ..sim.engine import Engine
from ..sim.metrics import MetricsRegistry
from ..sim.rng import as_factory
from .acker import ACKER_COMPONENT, AckerBolt
from .checkpoint import CHECKPOINT_SERVICE, CheckpointStore
from .executor import WorkerExecutor
from .grouping import Router
from .manager import StreamingManager, TopologyRecord
from .physical import PhysicalTopology, WorkerAssignment
from .replay import REPLAY_SERVICE, ReplayService
from .scheduler import RoundRobinScheduler
from .serialize import deserialize_cost, encode_tuple, serialize_cost
from .topology import (
    ALL,
    BOLT,
    Grouping,
    LogicalNode,
    LogicalTopology,
    TopologyBuilder,
)
from .transport import Delivery, Transport
from .tuples import StreamTuple


class _WireBatch:
    """A batch of tuples on a TCP channel; ``len()`` is its wire size."""

    __slots__ = ("tuples", "nbytes", "scope")

    def __init__(self, tuples: List[Tuple[StreamTuple, int]], nbytes: int,
                 scope: int = 0):
        self.tuples = tuples
        self.nbytes = nbytes
        self.scope = scope

    def __len__(self) -> int:
        return self.nbytes


def storm_batch_tuples(batch: object) -> Optional[Tuple[int, int]]:
    """Ledger inspector for the Storm wire format."""
    if isinstance(batch, _WireBatch):
        return batch.scope, len(batch.tuples)
    return None


class WorkerRegistry:
    """Cluster-wide lookup: worker id -> (executor, hostname)."""

    def __init__(self):
        self._entries: Dict[int, Tuple[WorkerExecutor, str]] = {}
        self.lost_tuples = 0

    def register(self, executor: WorkerExecutor, hostname: str) -> None:
        self._entries[executor.worker_id] = (executor, hostname)

    def resolve(self, worker_id: int) -> Optional[Tuple[WorkerExecutor, str]]:
        entry = self._entries.get(worker_id)
        if entry is None or not entry[0].alive:
            return None
        return entry


class StormTransport(Transport):
    """Per-worker TCP transport with per-destination serialization."""

    def __init__(self, engine: Engine, costs: CostModel, worker_id: int,
                 hostname: str, registry: WorkerRegistry,
                 batch_size: int = 100,
                 ledger: Optional[DeliveryLedger] = None, scope: int = 0):
        self.engine = engine
        self.costs = costs
        self.worker_id = worker_id
        self.hostname = hostname
        self.registry = registry
        self.batch_size = batch_size
        self.ledger = ledger
        self.scope = scope
        self._buffers: Dict[int, List[Tuple[StreamTuple, int]]] = {}
        self._channels: Dict[Tuple[int, str], TcpChannel] = {}
        self.tuples_sent = 0
        self.serializations = 0
        self.dropped_after_close = 0
        self.closed = False

    # -- outbound ---------------------------------------------------------

    def send(self, stream_tuple: StreamTuple,
             dst_worker_ids: Sequence[int]) -> float:
        if self.closed or not dst_worker_ids:
            return 0.0
        nbytes = len(encode_tuple(stream_tuple))
        cost = 0.0
        for dst in dst_worker_ids:
            # One serialization per destination: each copy carries its own
            # destination metadata (the overhead Typhoon eliminates).
            cost += serialize_cost(self.costs, nbytes)
            cost += self.costs.storm_enqueue_per_tuple
            self.serializations += 1
            buffer = self._buffers.setdefault(dst, [])
            buffer.append((stream_tuple, nbytes))
            self.tuples_sent += 1
            if self.ledger is not None:
                self.ledger.record_sent(self.scope)
            if len(buffer) >= self.batch_size:
                cost += self._flush_destination(dst)
        return cost

    def send_broadcast(self, stream_tuple: StreamTuple,
                       dst_worker_ids: Sequence[int]) -> float:
        # No network-level replication available: degenerate to unicast.
        return self.send(stream_tuple, dst_worker_ids)

    def send_offloaded(self, stream_tuple: StreamTuple, edge_key,
                       dst_worker_ids: Sequence[int]) -> float:
        # SDN offload unavailable: fall back to round-robin.
        if not dst_worker_ids:
            return 0.0
        index = self.tuples_sent % len(dst_worker_ids)
        return self.send(stream_tuple, [dst_worker_ids[index]])

    def flush(self) -> float:
        cost = 0.0
        for dst in list(self._buffers):
            cost += self._flush_destination(dst)
        return cost

    def _flush_destination(self, dst: int) -> float:
        buffer = self._buffers.get(dst)
        if not buffer:
            return 0.0
        self._buffers[dst] = []
        payload = sum(nbytes for _t, nbytes in buffer) + 4 * len(buffer)
        cost = (self.costs.tcp_send_per_message
                + payload * self.costs.tcp_send_per_byte)
        resolved = self.registry.resolve(dst)
        if resolved is None:
            self.registry.lost_tuples += len(buffer)
            if self.ledger is not None:
                self.ledger.record_drop(self.scope, LAYER_REGISTRY,
                                        R_UNRESOLVED, len(buffer))
            return cost
        _executor, dst_host = resolved
        channel = self._channel_to(dst, dst_host)
        channel.send(_WireBatch(buffer, payload, self.scope))
        return cost

    def _channel_to(self, dst: int, dst_host: str) -> TcpChannel:
        key = (dst, dst_host)
        channel = self._channels.get(key)
        if channel is None:
            channel = TcpChannel(
                self.engine, self.costs,
                on_receive=lambda batch, _dst=dst: self._deliver(_dst, batch),
                remote=dst_host != self.hostname,
                name="tcp:%d->%d" % (self.worker_id, dst),
                extra_delay=self.costs.storm_pipeline_delay,
                ledger=self.ledger,
            )
            self._channels[key] = channel
        return channel

    # -- inbound (runs on the destination's side of the channel) -----------

    def _deliver(self, dst: int, batch: _WireBatch) -> None:
        resolved = self.registry.resolve(dst)
        if resolved is None:
            self.registry.lost_tuples += len(batch.tuples)
            if self.ledger is not None:
                self.ledger.record_drop(batch.scope, LAYER_REGISTRY,
                                        R_UNRESOLVED, len(batch.tuples))
            return
        executor, _host = resolved
        cost = (self.costs.tcp_recv_per_message
                + batch.nbytes * self.costs.tcp_recv_per_byte)
        for _stream_tuple, nbytes in batch.tuples:
            cost += deserialize_cost(self.costs, nbytes)
        delivered = executor.deliver(Delivery(
            tuples=[t for t, _n in batch.tuples], cost=cost,
        ))
        if self.ledger is not None:
            if delivered:
                self.ledger.record_delivered(batch.scope, len(batch.tuples))
            else:
                self.ledger.record_drop(batch.scope, LAYER_TRANSPORT,
                                        R_DELIVER_REJECTED, len(batch.tuples))
        if not delivered:
            self.registry.lost_tuples += len(batch.tuples)

    def set_batch_size(self, batch_size: int) -> None:
        self.batch_size = max(1, batch_size)

    def pending_tuples(self) -> int:
        """Tuples sitting in outbound batch buffers (conservation term)."""
        return sum(len(buffer) for buffer in self._buffers.values())

    def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        # Drain outbound buffers so a retired transport leaves no
        # unaccounted residue (matches TyphoonTransport.close()).
        for buffer in self._buffers.values():
            if buffer:
                self.dropped_after_close += len(buffer)
                if self.ledger is not None:
                    self.ledger.record_drop(self.scope, LAYER_TRANSPORT,
                                            R_AFTER_CLOSE, len(buffer))
        self._buffers.clear()
        for channel in self._channels.values():
            channel.close()


class StormManager(StreamingManager):
    """Nimbus with the default round-robin scheduler."""


class StormCluster:
    """End-to-end baseline runtime: coordinator + Nimbus + supervisors.

    Typical use::

        cluster = StormCluster(engine, num_hosts=3)
        cluster.submit(builder.build())
        engine.run(until=60)
    """

    def __init__(self, engine: Engine, num_hosts: int = 3,
                 costs: CostModel = DEFAULT_COSTS, seed: int = 0):
        self.engine = engine
        self.costs = costs
        self.seeds = as_factory(seed)
        self.cluster = Cluster.of_size(num_hosts)
        self.coordinator = Coordinator(engine, costs)
        self.state = GlobalState(self.coordinator)
        self.metrics = MetricsRegistry(engine)
        self.registry = WorkerRegistry()
        self.ledger = DeliveryLedger(inspector=storm_batch_tuples)
        self.transports: Dict[int, StormTransport] = {}
        self.services: Dict[str, object] = {
            "now": lambda: engine.now,
            REPLAY_SERVICE: ReplayService(),
            CHECKPOINT_SERVICE: CheckpointStore(),
        }
        self.manager = StormManager(engine, costs, self.cluster, self.state,
                                    RoundRobinScheduler())
        from .agent import WorkerAgent  # local import to avoid cycle noise
        for host in self.cluster:
            agent = WorkerAgent(
                engine, costs, host.name, self.state,
                worker_factory=self._make_worker_factory(host.name),
            )
            self.manager.register_agent(agent)

    # -- public API -------------------------------------------------------------

    def submit(self, logical: LogicalTopology) -> PhysicalTopology:
        logical = _with_ackers(logical)
        physical = self.manager.submit(logical)
        self.ledger.name_scope(physical.app_id, logical.topology_id)
        return physical

    def kill_topology(self, topology_id: str) -> None:
        self.manager.kill_topology(topology_id)

    def executor(self, worker_id: int) -> Optional[WorkerExecutor]:
        resolved = self.registry.resolve(worker_id)
        return resolved[0] if resolved else None

    def executors_for(self, topology_id: str,
                      component: str) -> List[WorkerExecutor]:
        record = self.manager.topologies.get(topology_id)
        if record is None:
            return []
        out = []
        for worker_id in record.physical.worker_ids_for(component):
            resolved = self.registry.resolve(worker_id)
            if resolved is not None:
                out.append(resolved[0])
        return out

    def _spout_executors(self, topology_id: str):
        record = self.manager.topologies.get(topology_id)
        if record is None:
            raise KeyError(topology_id)
        out = []
        for spout in record.logical.spouts():
            out.extend(self.executors_for(topology_id, spout.name))
        return out

    def deactivate(self, topology_id: str) -> None:
        """Throttle the topology's spouts (Storm's ``deactivate``
        command, propagated through Nimbus/ZooKeeper)."""
        delay = self.costs.coordinator_op_latency
        for executor in self._spout_executors(topology_id):
            self.engine.schedule(delay, setattr, executor, "active", False)

    def activate(self, topology_id: str) -> None:
        delay = self.costs.coordinator_op_latency
        for executor in self._spout_executors(topology_id):
            self.engine.schedule(delay, setattr, executor, "active", True)

    def set_debug_tap(self, topology_id: str, component: str,
                      enabled: bool) -> None:
        """Toggle replication of ``component``'s output to the topology's
        pre-provisioned debug worker (Storm-style event logging; the extra
        per-destination serialization is the Fig. 12 overhead)."""
        record = self.manager.topologies.get(topology_id)
        if record is None:
            raise KeyError(topology_id)
        debug_ids = record.physical.worker_ids_for("__debug__")
        if not debug_ids:
            raise RuntimeError("topology has no pre-provisioned debug worker")
        for worker in record.physical.workers_for(component):
            resolved = self.registry.resolve(worker.worker_id)
            if resolved is None:
                continue
            executor = resolved[0]
            key = ("__debug__", 0)
            if enabled:
                executor.routers[key] = Router(Grouping(ALL), debug_ids)
            else:
                executor.routers.pop(key, None)

    # -- worker construction --------------------------------------------------------

    def _make_worker_factory(self, hostname: str):
        def factory(assignment: WorkerAssignment) -> WorkerExecutor:
            return self._build_worker(hostname, assignment)

        return factory

    def _build_worker(self, hostname: str,
                      assignment: WorkerAssignment) -> WorkerExecutor:
        record = self._record_of(assignment)
        logical = record.logical
        physical = record.physical
        node = logical.node(assignment.component)
        routers = build_routers(logical, physical, assignment.component)
        transport = StormTransport(
            self.engine, self.costs, assignment.worker_id, hostname,
            self.registry, batch_size=logical.config.batch_size,
            ledger=self.ledger, scope=physical.app_id,
        )
        executor = WorkerExecutor(
            engine=self.engine,
            costs=self.costs,
            assignment=assignment,
            node=node,
            config=logical.config,
            transport=transport,
            routers=routers,
            metrics=self.metrics,
            rng=self.seeds.rng("worker:%d" % assignment.worker_id),
            topology_id=logical.topology_id,
            ackers=physical.worker_ids_for(ACKER_COMPONENT),
            services=getattr(self, "services", {}),
        )
        self.registry.register(executor, hostname)
        self.transports[assignment.worker_id] = transport
        return executor

    def _record_of(self, assignment: WorkerAssignment) -> TopologyRecord:
        for record in self.manager.topologies.values():
            if assignment.worker_id in record.physical.assignments:
                return record
        raise KeyError("no topology owns worker %d" % assignment.worker_id)


def _with_ackers(logical: LogicalTopology) -> LogicalTopology:
    """Add the framework acker node when guaranteed processing is on."""
    if not logical.config.acking or ACKER_COMPONENT in logical.nodes:
        return logical
    out = logical.clone()
    # Ledger expiry above the spout timeout: the spout's own sweeper
    # always declares the root failed first; the acker then garbage
    # collects the stale (or orphaned ack-before-init) entry.
    expiry = logical.config.tuple_timeout * 1.5
    out.nodes[ACKER_COMPONENT] = LogicalNode(
        name=ACKER_COMPONENT, kind=BOLT,
        factory=lambda: AckerBolt(expiry=expiry),
        parallelism=max(1, logical.config.num_ackers),
    )
    return out


def build_routers(logical: LogicalTopology, physical: PhysicalTopology,
                  component: str) -> Dict[Tuple[str, int], Router]:
    """Instantiate per-edge routing state for one worker (Listing 1)."""
    routers: Dict[Tuple[str, int], Router] = {}
    for edge in logical.outgoing(component):
        next_hops = physical.worker_ids_for(edge.dst)
        routers[(edge.dst, edge.stream)] = Router(
            edge.grouping, next_hops, stream=edge.stream
        )
    return routers

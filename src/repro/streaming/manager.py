"""The streaming manager (Storm's Nimbus).

Responsibilities, per §2: build the logical topology, schedule it into a
physical topology, record both in the central coordinator (Table 1),
drive worker agents to launch workers, and monitor worker heartbeats —
rescheduling a worker onto another host when its beats stop for
``heartbeat_timeout`` (30 s by default, Storm's task timeout; this delay
is exactly what the Typhoon fault detector short-circuits in Fig. 10).

The transport-specific wiring (TCP channels vs SDN switches) lives in
the cluster runtimes; they subclass and implement the ``_deploy_worker``
/ ``_on_worker_relocated`` hooks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from ..coordination.schema import GlobalState
from ..net.hosts import Cluster
from ..sim.costs import CostModel
from ..sim.engine import Engine, Interrupt
from .agent import WorkerAgent
from .physical import PhysicalTopology, WorkerAssignment
from .scheduler import IScheduler, WorkerIdAllocator
from .topology import LogicalTopology


@dataclass
class TopologyRecord:
    """Manager-side bookkeeping for one running topology."""

    logical: LogicalTopology
    physical: PhysicalTopology
    assignment_times: Dict[int, float] = field(default_factory=dict)
    active: bool = True


class StreamingManager:
    """Central job management: build, schedule, deploy, monitor."""

    def __init__(
        self,
        engine: Engine,
        costs: CostModel,
        cluster: Cluster,
        state: GlobalState,
        scheduler: IScheduler,
    ):
        self.engine = engine
        self.costs = costs
        self.cluster = cluster
        self.state = state
        self.scheduler = scheduler
        self.agents: Dict[str, WorkerAgent] = {}
        self.topologies: Dict[str, TopologyRecord] = {}
        self.allocator = WorkerIdAllocator()
        self._next_app_id = 1
        self.reschedules = 0
        self._monitor = engine.process(self._heartbeat_monitor(),
                                       name="nimbus-monitor")

    # -- agents ---------------------------------------------------------------

    def register_agent(self, agent: WorkerAgent) -> None:
        if agent.hostname in self.agents:
            raise ValueError("agent for %s already registered" % agent.hostname)
        self.agents[agent.hostname] = agent

    def agent_for(self, hostname: str) -> WorkerAgent:
        if hostname not in self.agents:
            raise KeyError("no agent on host %r" % hostname)
        return self.agents[hostname]

    # -- submission ------------------------------------------------------------

    def submit(self, logical: LogicalTopology) -> PhysicalTopology:
        """Deploy a topology: schedule, record global state, launch."""
        if logical.topology_id in self.topologies:
            raise ValueError("topology %r already running" % logical.topology_id)
        app_id = self._next_app_id
        self._next_app_id += 1
        physical = self.scheduler.schedule(logical, self.cluster, app_id,
                                           self.allocator)
        record = TopologyRecord(logical=logical, physical=physical)
        for worker_id in physical.assignments:
            record.assignment_times[worker_id] = self.engine.now
        self.topologies[logical.topology_id] = record
        self.state.write_logical(logical.topology_id, logical)
        self.state.write_physical(logical.topology_id, physical)
        self._deploy_topology(record)
        return physical

    def kill_topology(self, topology_id: str) -> None:
        record = self.topologies.pop(topology_id, None)
        if record is None:
            return
        record.active = False
        # Resource-aware schedulers hold per-host commitments for the
        # topology; give them back so later submissions can use them.
        release = getattr(self.scheduler, "release", None)
        if release is not None:
            release(topology_id)
        for assignment in record.physical.assignments.values():
            agent = self.agents.get(assignment.hostname)
            if agent is not None:
                agent.kill(assignment.worker_id)
        self.state.remove_topology(topology_id)

    # -- deployment hooks (overridden by cluster runtimes) -----------------------

    def _deploy_topology(self, record: TopologyRecord) -> None:
        for assignment in sorted(record.physical.assignments.values(),
                                 key=lambda a: a.worker_id):
            self._deploy_worker(record, assignment)

    def _deploy_worker(self, record: TopologyRecord,
                       assignment: WorkerAssignment) -> None:
        agent = self.agent_for(assignment.hostname)
        # Notification flows through the coordinator before the agent acts.
        self.engine.schedule(
            self.costs.coordinator_op_latency,
            agent.launch, record.logical.topology_id, assignment,
        )

    def _on_worker_relocated(self, record: TopologyRecord,
                             old: WorkerAssignment,
                             new: WorkerAssignment) -> None:
        """Transport-specific fix-up after relocation (subclass hook)."""

    # -- failure monitoring --------------------------------------------------------

    def _heartbeat_monitor(self):
        while True:
            try:
                yield self.costs.heartbeat_interval
            except Interrupt:
                return
            for topology_id, record in list(self.topologies.items()):
                if not record.active:
                    continue
                for worker_id in list(record.physical.assignments):
                    if self._beat_stale(topology_id, record, worker_id):
                        self._reschedule_worker(topology_id, record, worker_id)

    def _beat_stale(self, topology_id: str, record: TopologyRecord,
                    worker_id: int) -> bool:
        beat = self.state.read_beat(topology_id, worker_id)
        last = beat["time"] if beat else record.assignment_times.get(
            worker_id, self.engine.now)
        return self.engine.now - last > self.costs.heartbeat_timeout

    def _reschedule_worker(self, topology_id: str, record: TopologyRecord,
                           worker_id: int) -> None:
        """Move a silent worker to another host (Nimbus reassignment)."""
        old = record.physical.worker(worker_id)
        new_host = self._pick_new_host(record.physical, old)
        new = old.relocated(hostname=new_host)
        old_agent = self.agents.get(old.hostname)
        if old_agent is not None:
            old_agent.kill(worker_id)
        record.physical = record.physical.replace_worker(new)
        record.assignment_times[worker_id] = self.engine.now
        self.reschedules += 1
        self.state.write_physical(topology_id, record.physical)
        self.state.clear_beat(topology_id, worker_id)
        self._on_worker_relocated(record, old, new)
        self._deploy_worker(record, new)

    def _pick_new_host(self, physical: PhysicalTopology,
                       old: WorkerAssignment) -> str:
        load: Dict[str, int] = {host.name: 0 for host in self.cluster}
        for assignment in physical.assignments.values():
            load[assignment.hostname] = load.get(assignment.hostname, 0) + 1
        candidates = [name for name in sorted(load) if name != old.hostname]
        if not candidates:
            return old.hostname
        return min(candidates, key=lambda name: load[name])

    def shutdown(self) -> None:
        self._monitor.interrupt("manager shutdown")
        for topology_id in list(self.topologies):
            self.kill_topology(topology_id)

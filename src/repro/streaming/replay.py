"""Framework-level spout replay: the missing half of §6.1.

Guaranteed processing as shipped by the acker (:mod:`.acker`) only
*detects* tuple-tree failure: the spout times out a pending root and
calls ``Spout.fail(message_id)``. Nothing re-emits the tuple unless the
application builds its own replay logic. This module closes the loop at
the framework layer, the way Storm's ``KafkaSpout`` does for real
deployments:

* every tracked spout emission is retained in a :class:`ReplayBuffer`
  keyed by ``message_id`` until its tuple tree completes;
* on failure (spout timeout or an explicit FAIL notification from the
  acker) the message is re-scheduled with exponential backoff, up to a
  per-message retry budget — exhausting the budget is the only way a
  root becomes *permanently lost*;
* buffers live in ``cluster.services`` (the :class:`ReplayService`), so
  they survive worker crashes the way a durable source offset would: a
  relaunched spout re-attaches and immediately re-schedules every
  message that was in flight when its predecessor died.

The buffer maintains a conservation identity the chaos harness checks
as an invariant::

    registered == completed + exhausted + pending

Replay delivers *at-least-once* from the source; the exactly-once
alternative for stateful stages is active replication
(:mod:`.replication`), which keeps N copies fed by a sequenced
broadcast and collapses duplicates downstream instead of re-emitting
from the root (the two compose: replay guards the segment upstream of
a replica group's sequencer, replication guards everything after).
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, List, Optional, Set, Tuple

#: ``cluster.services`` key the executor looks the service up by.
REPLAY_SERVICE = "replay_buffers"

#: Outcomes of :meth:`ReplayBuffer.on_failed`.
R_UNTRACKED = "untracked"
R_SCHEDULED = "scheduled"
R_EXHAUSTED = "exhausted"


class _ReplayEntry:
    """One tracked message: its payload plus retry bookkeeping."""

    __slots__ = ("message_id", "values", "stream", "attempts", "roots",
                 "due", "order")

    def __init__(self, message_id: Any, values: Tuple[Any, ...], stream: int,
                 order: int):
        self.message_id = message_id
        self.values = values
        self.stream = stream
        self.attempts = 0          # timeout-driven retries consumed
        self.roots: Set[int] = set()  # every root id ever emitted for it
        self.due: Optional[float] = None  # next replay time, None = in flight
        self.order = order         # tie-break for deterministic replay order


class ReplayBuffer:
    """Bounded at-least-once replay state for one spout worker."""

    def __init__(self, worker_id: int, max_retries: int = 8,
                 backoff_base: float = 0.25, backoff_factor: float = 2.0,
                 backoff_max: float = 2.0):
        self.worker_id = worker_id
        self.max_retries = max_retries
        self.backoff_base = backoff_base
        self.backoff_factor = backoff_factor
        self.backoff_max = backoff_max
        self._entries: Dict[Any, _ReplayEntry] = {}
        self._roots: Dict[int, Any] = {}  # root_id -> message_id
        self._order = itertools.count()
        # Conservation counters: registered == completed + exhausted + pending.
        self.registered = 0   # distinct messages ever tracked
        self.completed = 0    # messages whose tree completed
        self.exhausted = 0    # messages that ran out of retry budget (= lost)
        self.timeouts = 0     # individual root failures observed
        self.replays = 0      # re-emissions handed back to the spout loop
        self.recovered = 0    # in-flight messages rescheduled after a crash

    # -- tracking ----------------------------------------------------------

    def register_root(self, root_id: int, message_id: Any,
                      values: Tuple[Any, ...], stream: int) -> None:
        """Record one emission (first send or replay) of ``message_id``."""
        entry = self._entries.get(message_id)
        if entry is None:
            entry = _ReplayEntry(message_id, tuple(values), stream,
                                 next(self._order))
            self._entries[message_id] = entry
            self.registered += 1
        else:
            # A replay emission went out: the message is in flight again.
            entry.due = None
        entry.roots.add(root_id)
        self._roots[root_id] = message_id

    def backoff_delay(self, attempts: int) -> float:
        """Replay delay after the ``attempts``-th failure (1-based)."""
        delay = self.backoff_base * self.backoff_factor ** (attempts - 1)
        return min(self.backoff_max, delay)

    def on_complete(self, root_id: int) -> Tuple[Optional[Any], bool]:
        """A tuple tree completed. Returns ``(message_id, first)`` where
        ``first`` is True only for the completion that settles the
        message — late completions of superseded roots return False so
        the spout does not double-ack the component."""
        message_id = self._roots.get(root_id)
        if message_id is None:
            return None, False
        entry = self._entries.pop(message_id)
        for root in entry.roots:
            self._roots.pop(root, None)
        self.completed += 1
        return message_id, True

    def on_failed(self, root_id: int,
                  now: float) -> Tuple[str, Optional[Any], Optional[float]]:
        """A root timed out or was FAILed. Returns ``(outcome,
        message_id, due_time)``; outcome is one of ``R_UNTRACKED``
        (message already settled), ``R_SCHEDULED`` (replay queued) or
        ``R_EXHAUSTED`` (retry budget spent — permanently lost)."""
        message_id = self._roots.get(root_id)
        if message_id is None:
            return R_UNTRACKED, None, None
        entry = self._entries[message_id]
        self.timeouts += 1
        if entry.due is not None:
            # Another incarnation already failed; a replay is queued.
            return R_SCHEDULED, message_id, entry.due
        if entry.attempts >= self.max_retries:
            self._entries.pop(message_id)
            for root in entry.roots:
                self._roots.pop(root, None)
            self.exhausted += 1
            return R_EXHAUSTED, message_id, None
        entry.attempts += 1
        entry.due = now + self.backoff_delay(entry.attempts)
        return R_SCHEDULED, message_id, entry.due

    def take_due(self, now: float, limit: int) -> List[_ReplayEntry]:
        """Pop up to ``limit`` messages whose backoff has elapsed, in
        deterministic (due time, emission order) order. The caller must
        re-emit each one (which re-registers it via ``register_root``)."""
        if limit <= 0:
            return []
        due = [entry for entry in self._entries.values()
               if entry.due is not None and entry.due <= now]
        due.sort(key=lambda entry: (entry.due, entry.order))
        taken = due[:limit]
        for entry in taken:
            entry.due = None
            self.replays += 1
        return taken

    def next_due(self) -> Optional[float]:
        """Earliest scheduled replay time, or None."""
        times = [entry.due for entry in self._entries.values()
                 if entry.due is not None]
        return min(times) if times else None

    def reschedule_open(self, now: float) -> int:
        """Called when a relaunched spout re-attaches: every message that
        was in flight through the dead incarnation is scheduled for
        immediate replay. Crash-driven replays do not consume the retry
        budget (the budget guards against poison messages, not against
        the worker's own death); old root ids stay mapped so a late
        COMPLETE from a tree the crash did not actually lose still
        settles the message and cancels the replay."""
        count = 0
        for entry in self._entries.values():
            if entry.due is None:
                entry.due = now
                count += 1
        self.recovered += count
        return count

    # -- inspection --------------------------------------------------------

    def has_root(self, root_id: int) -> bool:
        return root_id in self._roots

    def pending_count(self) -> int:
        """Messages still unsettled (in flight or awaiting replay)."""
        return len(self._entries)

    def conserved(self) -> bool:
        return (self.registered
                == self.completed + self.exhausted + self.pending_count())

    def stats(self) -> Dict[str, int]:
        return {
            "registered": self.registered,
            "completed": self.completed,
            "exhausted": self.exhausted,
            "pending": self.pending_count(),
            "timeouts": self.timeouts,
            "replays": self.replays,
            "recovered": self.recovered,
        }


class ReplayService:
    """Durable home for per-spout replay buffers (``cluster.services``).

    Models the durable source a production spout replays from (a Kafka
    offset, a write-ahead log): state survives worker crashes because it
    never lived inside the worker. Buffers are keyed by worker id, which
    is stable across supervisor restarts."""

    def __init__(self):
        self.buffers: Dict[int, ReplayBuffer] = {}

    def attach(self, worker_id: int, config) -> ReplayBuffer:
        buffer = self.buffers.get(worker_id)
        if buffer is None:
            buffer = ReplayBuffer(
                worker_id,
                max_retries=config.replay_max_retries,
                backoff_base=config.replay_backoff_base,
                backoff_factor=config.replay_backoff_factor,
                backoff_max=config.replay_backoff_max,
            )
            self.buffers[worker_id] = buffer
        return buffer

    def totals(self) -> Dict[str, int]:
        totals = {"registered": 0, "completed": 0, "exhausted": 0,
                  "pending": 0, "timeouts": 0, "replays": 0, "recovered": 0}
        for worker_id in sorted(self.buffers):
            for key, value in self.buffers[worker_id].stats().items():
                totals[key] += value
        return totals

    def conserved(self) -> bool:
        return all(buffer.conserved() for buffer in self.buffers.values())

"""Per-host worker agents (Storm's supervisors).

A :class:`WorkerAgent` launches and kills workers on its host on behalf
of the streaming manager (binary fetch + process start are modelled by
``worker_launch_latency``), restarts locally-crashed workers after
``supervisor_restart_delay`` (Storm's behaviour in Fig. 10a), and writes
worker heartbeats into the coordinator.

The actual construction of a :class:`WorkerExecutor` — transports differ
between the Storm baseline and Typhoon — is delegated to the cluster
runtime through the ``worker_factory`` callback.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ..coordination.schema import GlobalState
from ..sim.costs import CostModel
from ..sim.engine import Engine, Interrupt
from .executor import WorkerExecutor
from .physical import WorkerAssignment

#: Builds and wires a ready-to-start executor for an assignment.
WorkerFactory = Callable[[WorkerAssignment], WorkerExecutor]

#: Invoked when a worker crashes: (agent, executor, error).
CrashListener = Callable[["WorkerAgent", WorkerExecutor, BaseException], None]


class WorkerAgent:
    """One agent per compute host."""

    def __init__(
        self,
        engine: Engine,
        costs: CostModel,
        hostname: str,
        state: GlobalState,
        worker_factory: WorkerFactory,
        restart_crashed: bool = True,
    ):
        self.engine = engine
        self.costs = costs
        self.hostname = hostname
        self.state = state
        self.worker_factory = worker_factory
        self.restart_crashed = restart_crashed
        self.workers: Dict[int, WorkerExecutor] = {}
        self._assignments: Dict[int, Tuple[str, WorkerAssignment]] = {}
        self._launch_times: Dict[int, float] = {}
        self._forgotten: set = set()
        self.crash_listeners: List[CrashListener] = []
        self.launches = 0
        self.restarts = 0
        state.register_agent(hostname, {"hostname": hostname})
        self._beat_task = engine.process(self._beat_loop(),
                                         name="agent-beats:%s" % hostname)

    # -- worker lifecycle ----------------------------------------------------

    def launch(self, topology_id: str, assignment: WorkerAssignment,
               delay: Optional[float] = None) -> None:
        """Fetch binaries and start a worker (asynchronously)."""
        if assignment.hostname != self.hostname:
            raise ValueError("assignment for %s handed to agent on %s"
                             % (assignment.hostname, self.hostname))
        self._forgotten.discard(assignment.worker_id)
        self._assignments[assignment.worker_id] = (topology_id, assignment)
        wait = self.costs.worker_launch_latency if delay is None else delay
        self.engine.schedule(wait, self._start_worker, topology_id, assignment)

    def _start_worker(self, topology_id: str,
                      assignment: WorkerAssignment) -> None:
        worker_id = assignment.worker_id
        if worker_id in self._forgotten:
            return
        held = self._assignments.get(worker_id)
        if held is None or held[1] is not assignment:
            return  # superseded by a newer assignment while launching
        executor = self.worker_factory(assignment)
        executor.on_crash = self._on_crash
        self.workers[worker_id] = executor
        self._launch_times[worker_id] = self.engine.now
        self.launches += 1
        executor.start()

    def kill(self, worker_id: int, drain: bool = False) -> None:
        """Kill a worker and forget its assignment (no restart)."""
        self._forgotten.add(worker_id)
        held = self._assignments.pop(worker_id, None)
        executor = self.workers.pop(worker_id, None)
        self._launch_times.pop(worker_id, None)
        if executor is not None:
            executor.kill(drain=drain)
        if held is not None:
            self.state.clear_beat(held[0], worker_id)

    def forget(self, worker_id: int) -> None:
        """Drop responsibility without killing (relocation handoff)."""
        self._forgotten.add(worker_id)
        self._assignments.pop(worker_id, None)
        self.workers.pop(worker_id, None)
        self._launch_times.pop(worker_id, None)

    def uptime(self, worker_id: int) -> Optional[float]:
        started = self._launch_times.get(worker_id)
        executor = self.workers.get(worker_id)
        if started is None or executor is None or not executor.alive:
            return None
        return self.engine.now - started

    # -- crash handling ------------------------------------------------------------

    def _on_crash(self, executor: WorkerExecutor, error: BaseException) -> None:
        worker_id = executor.worker_id
        for listener in list(self.crash_listeners):
            listener(self, executor, error)
        held = self._assignments.get(worker_id)
        if held is None or worker_id in self._forgotten:
            return
        if not self.restart_crashed:
            return
        topology_id, assignment = held
        self.restarts += 1
        # Local restart on the same host (Storm supervisor behaviour).
        self.launch(topology_id, assignment,
                    delay=self.costs.supervisor_restart_delay)

    # -- heartbeats -------------------------------------------------------------------

    def _beat_loop(self):
        while True:
            try:
                yield self.costs.heartbeat_interval
            except Interrupt:
                return
            for worker_id, executor in list(self.workers.items()):
                uptime = self.uptime(worker_id)
                # A crash-looping worker never stays up long enough to
                # produce a heartbeat — exactly the Fig. 10a failure mode.
                if uptime is None or uptime < self.costs.heartbeat_interval:
                    continue
                held = self._assignments.get(worker_id)
                if held is None:
                    continue
                topology_id, _assignment = held
                self.state.write_beat(topology_id, worker_id, {
                    "time": self.engine.now,
                    "stats": executor.stats_snapshot(),
                })

    def shutdown(self) -> None:
        self._beat_task.interrupt("agent shutdown")
        for worker_id in list(self.workers):
            self.kill(worker_id)

"""Per-worker routing state and routing functions (Listing 1).

Each worker keeps, per outgoing edge, a :class:`Router` holding exactly
the state the paper enumerates in §3.3.2:

* policy-independent state — ``next_hops`` (the array of next-hop worker
  IDs) and implicitly ``num_next_hops``;
* policy-specific state — the round-robin ``counter`` for shuffle
  routing, the hashed key-field indices for key-based routing, the pinned
  destination for global routing.

In the Storm baseline this state is baked in at deployment; in Typhoon it
is owned by the SDN control plane and swapped at runtime via ROUTING
control tuples — which is why :meth:`Router.update` exists and is
carefully separated from the routing decision itself.
"""

from __future__ import annotations

import zlib
from typing import List, Optional, Sequence, Tuple

from .serialize import encode_values
from .topology import ALL, FIELDS, GLOBAL, SDN_SELECT, SHUFFLE, Grouping
from .tuples import StreamTuple


class RoutingError(RuntimeError):
    """Raised when a routing decision is impossible (no next hops)."""


def hash_fields(values: Tuple, fields: Sequence[int]) -> int:
    """Stable key hash: CRC32 over the serialized key fields.

    Deterministic across runs and processes (unlike Python's ``hash``),
    which key-based routing needs for the "same key -> same worker"
    guarantee.
    """
    try:
        key = tuple(values[i] for i in fields)
    except IndexError:
        raise RoutingError(
            "tuple %r lacks key fields %r" % (values, list(fields))
        )
    return zlib.crc32(encode_values(key))


class Router:
    """Routing state + decision function for one outgoing edge."""

    def __init__(self, grouping: Grouping, next_hops: Sequence[int],
                 stream: int = 0):
        self.grouping = grouping
        self.next_hops: List[int] = list(next_hops)
        self.stream = stream
        self.counter = 0          # round-robin state (shuffle)
        self.decisions = 0
        #: Set by the runtime when this edge feeds a replica group: the
        #: sender stamps each broadcast tuple with the group's sequencer
        #: (see :mod:`repro.streaming.replication`). None everywhere else.
        self.replication_group = None
        self._refresh_derived()

    def _refresh_derived(self) -> None:
        # Mode flags and the single-destination list are derived state,
        # recomputed on every update() so the per-tuple dispatch loop
        # reads plain attributes instead of calling properties. Callers
        # must treat the list returned by route() as read-only.
        kind = self.grouping.kind
        self.is_broadcast = kind == ALL
        self.is_sdn_offloaded = kind == SDN_SELECT
        self._first_hop: Optional[List[int]] = (
            [self.next_hops[0]] if self.next_hops else None)

    @property
    def num_next_hops(self) -> int:
        return len(self.next_hops)

    def update(self, next_hops: Optional[Sequence[int]] = None,
               grouping: Optional[Grouping] = None) -> None:
        """Swap routing state in place (driven by ROUTING control tuples).

        Updating ``next_hops`` resets policy-specific counters, matching
        the paper's stable-update procedure where the controller pushes a
        complete replacement state.
        """
        if grouping is not None:
            self.grouping = grouping
        if next_hops is not None:
            self.next_hops = list(next_hops)
            self.counter = 0
        self._refresh_derived()

    def advance(self, count: int) -> None:
        """Batched replay of ``count`` single-hop :meth:`route` calls'
        state updates (used by the executor's deferred-dispatch fast
        path, where every tuple lands on the same sole next hop, so the
        decision itself is a foregone conclusion)."""
        self.decisions += count
        if self.grouping.kind == SHUFFLE:
            self.counter += count

    def route(self, stream_tuple: StreamTuple) -> List[int]:
        """Pick destination worker id(s) for a tuple."""
        hops = self.next_hops
        if not hops:
            raise RoutingError("edge has no next hops")
        self.decisions += 1
        kind = self.grouping.kind
        if kind == SHUFFLE:
            n = len(hops)
            index = self.counter % n
            self.counter += 1
            if n == 1:
                return self._first_hop
            return [hops[index]]
        if kind == FIELDS:
            index = hash_fields(stream_tuple.values,
                                self.grouping.fields) % len(hops)
            return [hops[index]]
        if kind == GLOBAL:
            return self._first_hop
        if kind == ALL:
            return list(hops)
        if kind == SDN_SELECT:
            # Routing is offloaded: the worker picks nothing; the switch's
            # select group rewrites the destination. The caller sends to a
            # virtual destination (handled by the transport layer).
            return list(self.next_hops[:1])
        raise RoutingError("unhandled grouping %r" % kind)

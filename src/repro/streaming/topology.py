"""Logical topologies and the application programming API.

A stream application is a DAG of *nodes* (Fig. 2a). Each node defines

* a data computing function (a :class:`Spout` or :class:`Bolt` subclass,
  created per worker by a factory),
* a routing policy toward each downstream node (a grouping, §2), and
* a degree of parallelism.

Logical topologies are built with :class:`TopologyBuilder` (the
framework-provided API the paper mentions) and are *versioned*: Typhoon's
dynamic topology manager mutates a copy and bumps the version, which is
how runtime reconfiguration propagates through the coordinator.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from .tuples import DEFAULT_STREAM, StreamTuple

SPOUT = "spout"
BOLT = "bolt"

# Grouping (routing policy) types — §2 "Data tuple routing policies".
SHUFFLE = "shuffle"      # round robin, load balancing, stateless workers
FIELDS = "fields"        # key-based: same key -> same worker, stateful
GLOBAL = "global"        # everything to one specific worker (sinks)
ALL = "all"              # copy to every connected next worker (broadcast)
SDN_SELECT = "sdn_select"  # routing fully offloaded to SDN (load balancer, §4)

GROUPINGS = (SHUFFLE, FIELDS, GLOBAL, ALL, SDN_SELECT)


class TopologyError(ValueError):
    """Raised for malformed topology definitions."""


# -- user computation API ------------------------------------------------------


class Component:
    """Common base for spouts and bolts."""

    def open(self, ctx: "ComponentContext") -> None:
        """Called once when the hosting worker starts."""

    def close(self) -> None:
        """Called when the hosting worker shuts down cleanly."""

    def on_signal(self, signal: StreamTuple, collector: "EmitterApi") -> None:
        """Handle a signal tuple (stateful workers flush caches here)."""

    def snapshot(self) -> Optional[Any]:
        """Checkpointing: return the state to persist, or None to skip.

        Called periodically by the executor when the topology enables
        ``checkpoint_interval`` and the node is stateful. The returned
        object is deep-copied into the checkpoint store, so sharing live
        structures is safe."""
        return None

    def restore(self, state: Any) -> None:
        """Checkpointing: re-initialize from a persisted snapshot.

        Called once after ``open`` when a relaunched worker finds a
        snapshot in the checkpoint store."""


class Spout(Component):
    """A data source. ``next_tuple`` emits zero or more tuples per call."""

    #: Optional batch hook: ``next_tuple_batch(collector, want)`` emits up
    #: to ``want`` tuples in one call, each equivalent to one
    #: ``next_tuple`` call that emitted exactly one tuple. The executor
    #: invokes it only on the non-acked, non-traced fast path, and
    #: replays per-tuple costs as if ``next_tuple`` had been called once
    #: per emission, so implementing it never changes results — only
    #: call overhead. Implementations must emit on a single stream, must
    #: not use ``charge()`` or direct emissions, and accept
    #: batch-granularity crash semantics (an exception forfeits the
    #: whole call). Leave as ``None`` for the classic per-call protocol.
    next_tuple_batch = None

    def next_tuple(self, collector: "EmitterApi") -> None:
        raise NotImplementedError

    def ack(self, message_id: Any) -> None:
        """Guaranteed processing: the tuple tree completed."""

    def fail(self, message_id: Any) -> None:
        """Guaranteed processing: the tuple tree failed/timed out."""


class Bolt(Component):
    """A processing node. ``execute`` consumes one tuple."""

    #: Optional batch hook: ``execute_batch(stream_tuples, collector)``
    #: consumes a whole single-stream delivery in one call, equivalent to
    #: calling ``execute`` once per tuple. The executor invokes it only
    #: for uniform data-stream train deliveries on the non-acked,
    #: non-traced path, and replays per-tuple compute costs exactly, so
    #: implementing it never changes results — only call overhead.
    #: Implementations must not emit per input tuple or use ``charge()``
    #: (terminal sinks are the intended users), and accept
    #: batch-granularity crash semantics (an exception forfeits the
    #: whole delivery). Leave as ``None`` for the per-tuple protocol.
    execute_batch = None

    def execute(self, stream_tuple: StreamTuple, collector: "EmitterApi") -> None:
        raise NotImplementedError


class EmitterApi:
    """What components see of the output collector."""

    # Empty slots so the concrete collector can be a __slots__ class:
    # emit() runs once per tuple produced anywhere in the system, and
    # slot loads beat instance-dict lookups there. Subclasses that
    # declare no __slots__ of their own still get a dict as usual.
    __slots__ = ()

    def emit(self, values: Sequence[Any], stream: int = DEFAULT_STREAM,
             anchor: Optional[StreamTuple] = None,
             message_id: Any = None) -> None:
        raise NotImplementedError

    def emit_many(self, values_seq: Sequence[Sequence[Any]],
                  stream: int = DEFAULT_STREAM) -> None:
        """Bulk emit: exactly ``emit(values, stream)`` for each item, in
        order (no anchors, no message ids — callers that need either
        must emit those tuples one at a time). This default is
        literally that loop; the runtime collector overrides it with a
        batched lane that hoists the per-call checks out of the loop."""
        for values in values_seq:
            self.emit(values, stream)

    def ack(self, stream_tuple: StreamTuple) -> None:
        raise NotImplementedError

    def fail(self, stream_tuple: StreamTuple) -> None:
        raise NotImplementedError

    def charge(self, seconds: float) -> None:
        """Bill extra virtual compute time for the current call (used to
        model expensive user computations or external service calls)."""
        raise NotImplementedError


@dataclass
class ComponentContext:
    """Runtime information handed to a component in ``open``."""

    topology_id: str
    component: str
    worker_id: int
    task_index: int
    parallelism: int
    rng: Any = None
    services: Dict[str, Any] = field(default_factory=dict)


# -- logical structure -------------------------------------------------------------


@dataclass(frozen=True)
class Grouping:
    """A routing policy on an edge."""

    kind: str
    fields: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in GROUPINGS:
            raise TopologyError("unknown grouping %r" % self.kind)
        if self.kind == FIELDS and not self.fields:
            raise TopologyError("fields grouping requires key field indices")
        if self.kind != FIELDS and self.fields:
            raise TopologyError("only fields grouping takes field indices")


@dataclass(frozen=True)
class Edge:
    """A directed logical connection src -> dst on one stream."""

    src: str
    dst: str
    grouping: Grouping
    stream: int = DEFAULT_STREAM


@dataclass(frozen=True)
class ResourceDemand:
    """Per-worker resource demand vector (R-Storm style).

    Units match :class:`~repro.net.hosts.HostCapacity`: ``cpu`` in
    abstract compute units, ``memory`` in megabytes, ``bandwidth`` in
    bytes/second of emitted traffic. The all-zero default means "no
    declared demand": the resource-aware scheduler then places purely by
    locality and never rejects on capacity.
    """

    cpu: float = 0.0
    memory: float = 0.0
    bandwidth: float = 0.0

    def __post_init__(self) -> None:
        if self.cpu < 0 or self.memory < 0 or self.bandwidth < 0:
            raise TopologyError("resource demands must be non-negative")


@dataclass
class LogicalNode:
    """One node of the logical DAG."""

    name: str
    kind: str
    factory: Callable[[], Component]
    parallelism: int = 1
    stateful: bool = False
    max_pending: Optional[int] = None  # spouts: in-flight cap when acking
    replicas: int = 1  # >1: active replication (exactly-once, see replication.py)
    demand: Optional[ResourceDemand] = None  # per-worker resource vector

    def __post_init__(self) -> None:
        if self.kind not in (SPOUT, BOLT):
            raise TopologyError("node kind must be spout or bolt")
        if self.parallelism < 1:
            raise TopologyError("parallelism must be >= 1")
        if self.replicas < 1:
            raise TopologyError("replicas must be >= 1")
        if self.replicas > 1:
            if self.kind != BOLT or not self.stateful:
                raise TopologyError(
                    "replicas > 1 requires a stateful bolt (%r)" % self.name)
            if self.parallelism not in (1, self.replicas):
                # One logical task; expand_replicas raises parallelism
                # to the replica count at deployment.
                raise TopologyError(
                    "replicated node %r is a single logical task; leave "
                    "parallelism at 1 (replicas set the copy count)"
                    % self.name)


@dataclass
class TopologyConfig:
    """Per-topology runtime configuration."""

    acking: bool = False
    num_ackers: int = 1
    tuple_timeout: float = 30.0
    batch_size: int = 100             # Typhoon I/O batch size
    enable_oom: bool = False          # kill workers exceeding memory limit
    max_spout_rate: Optional[float] = None  # tuples/sec per spout worker
    # Reliability loop (replay / checkpoint / reliable control). All off
    # by default: enabling any of them changes scheduling and RNG use,
    # and default-path runs must stay byte-identical.
    max_pending: Optional[int] = None       # spouts: in-flight root cap
    replay_enabled: bool = False            # framework-level spout replay
    replay_max_retries: int = 8             # per-message retry budget
    replay_backoff_base: float = 0.25       # first-retry delay (seconds)
    replay_backoff_factor: float = 2.0      # exponential backoff factor
    replay_backoff_max: float = 2.0         # backoff ceiling (seconds)
    checkpoint_interval: Optional[float] = None  # stateful snapshots (s)
    reliable_control: bool = False          # acked, retried control tuples


class LogicalTopology:
    """An immutable-ish logical DAG plus reconfiguration helpers."""

    def __init__(self, topology_id: str, nodes: Dict[str, LogicalNode],
                 edges: List[Edge], config: Optional[TopologyConfig] = None,
                 version: int = 0):
        self.topology_id = topology_id
        self.nodes = nodes
        self.edges = edges
        self.config = config or TopologyConfig()
        self.version = version
        self._validate()

    # -- validation ------------------------------------------------------------

    def _validate(self) -> None:
        if not self.nodes:
            raise TopologyError("topology has no nodes")
        names = set(self.nodes)
        for edge in self.edges:
            if edge.src not in names or edge.dst not in names:
                raise TopologyError("edge %s->%s references unknown node"
                                    % (edge.src, edge.dst))
            if self.nodes[edge.dst].kind == SPOUT:
                raise TopologyError("spout %r cannot have inputs" % edge.dst)
        if not any(node.kind == SPOUT for node in self.nodes.values()):
            raise TopologyError("topology needs at least one spout")
        self._check_acyclic()
        for name, node in self.nodes.items():
            if node.stateful:
                if node.replicas > 1:
                    # Replica groups receive the full sequenced stream
                    # (ALL-grouped by expand_replicas) — stronger than
                    # the key-routing Table 4 asks for.
                    continue
                for edge in self.incoming(name):
                    if edge.stream != DEFAULT_STREAM:
                        continue
                    if edge.grouping.kind not in (FIELDS, GLOBAL):
                        raise TopologyError(
                            "stateful node %r requires key-based or global "
                            "routing on data inputs (Table 4)" % name
                        )

    def _check_acyclic(self) -> None:
        adjacency: Dict[str, List[str]] = {name: [] for name in self.nodes}
        indegree = {name: 0 for name in self.nodes}
        for edge in self.edges:
            adjacency[edge.src].append(edge.dst)
            indegree[edge.dst] += 1
        frontier = [n for n, d in indegree.items() if d == 0]
        seen = 0
        while frontier:
            node = frontier.pop()
            seen += 1
            for nxt in adjacency[node]:
                indegree[nxt] -= 1
                if indegree[nxt] == 0:
                    frontier.append(nxt)
        if seen != len(self.nodes):
            raise TopologyError("topology contains a cycle")

    # -- queries -------------------------------------------------------------------

    def node(self, name: str) -> LogicalNode:
        if name not in self.nodes:
            raise TopologyError("no node named %r" % name)
        return self.nodes[name]

    def outgoing(self, name: str) -> List[Edge]:
        return [e for e in self.edges if e.src == name]

    def incoming(self, name: str) -> List[Edge]:
        return [e for e in self.edges if e.dst == name]

    def spouts(self) -> List[LogicalNode]:
        return [n for n in self.nodes.values() if n.kind == SPOUT]

    def bolts(self) -> List[LogicalNode]:
        return [n for n in self.nodes.values() if n.kind == BOLT]

    def total_workers(self) -> int:
        return sum(n.parallelism for n in self.nodes.values())

    # -- reconfiguration (used by the dynamic topology manager) ----------------------

    def clone(self) -> "LogicalTopology":
        return LogicalTopology(
            self.topology_id,
            {name: replace(node) for name, node in self.nodes.items()},
            list(self.edges),
            copy.copy(self.config),
            self.version,
        )

    def with_parallelism(self, name: str, parallelism: int) -> "LogicalTopology":
        out = self.clone()
        out.node(name).parallelism = parallelism
        out.version += 1
        out._validate()
        return out

    def with_factory(self, name: str,
                     factory: Callable[[], Component]) -> "LogicalTopology":
        out = self.clone()
        out.node(name).factory = factory
        out.version += 1
        return out

    def with_grouping(self, src: str, dst: str,
                      grouping: Grouping) -> "LogicalTopology":
        out = self.clone()
        for i, edge in enumerate(out.edges):
            if edge.src == src and edge.dst == dst:
                out.edges[i] = Edge(src, dst, grouping, edge.stream)
                out.version += 1
                out._validate()
                return out
        raise TopologyError("no edge %s->%s" % (src, dst))


# -- builder -----------------------------------------------------------------------------


class _BoltDeclarer:
    """Fluent grouping declarations, Storm style."""

    def __init__(self, builder: "TopologyBuilder", name: str):
        self._builder = builder
        self._name = name

    def shuffle_grouping(self, src: str, stream: int = DEFAULT_STREAM):
        self._builder._add_edge(src, self._name, Grouping(SHUFFLE), stream)
        return self

    def fields_grouping(self, src: str, fields: Sequence[int],
                        stream: int = DEFAULT_STREAM):
        self._builder._add_edge(src, self._name,
                                Grouping(FIELDS, tuple(fields)), stream)
        return self

    def global_grouping(self, src: str, stream: int = DEFAULT_STREAM):
        self._builder._add_edge(src, self._name, Grouping(GLOBAL), stream)
        return self

    def all_grouping(self, src: str, stream: int = DEFAULT_STREAM):
        self._builder._add_edge(src, self._name, Grouping(ALL), stream)
        return self

    def sdn_select_grouping(self, src: str, stream: int = DEFAULT_STREAM):
        self._builder._add_edge(src, self._name, Grouping(SDN_SELECT), stream)
        return self


class TopologyBuilder:
    """Constructs a :class:`LogicalTopology` from component declarations."""

    def __init__(self, topology_id: str,
                 config: Optional[TopologyConfig] = None):
        if not topology_id:
            raise TopologyError("topology id must be non-empty")
        self.topology_id = topology_id
        self.config = config or TopologyConfig()
        self._nodes: Dict[str, LogicalNode] = {}
        self._edges: List[Edge] = []

    def set_spout(self, name: str, factory: Callable[[], Component],
                  parallelism: int = 1,
                  max_pending: Optional[int] = None,
                  demand: Optional[ResourceDemand] = None) -> "TopologyBuilder":
        self._add_node(LogicalNode(name, SPOUT, factory, parallelism,
                                   max_pending=max_pending, demand=demand))
        return self

    def set_bolt(self, name: str, factory: Callable[[], Component],
                 parallelism: int = 1, stateful: bool = False,
                 replicas: int = 1,
                 demand: Optional[ResourceDemand] = None) -> _BoltDeclarer:
        self._add_node(LogicalNode(name, BOLT, factory, parallelism,
                                   stateful=stateful, replicas=replicas,
                                   demand=demand))
        return _BoltDeclarer(self, name)

    def _add_node(self, node: LogicalNode) -> None:
        if node.name in self._nodes:
            raise TopologyError("duplicate node name %r" % node.name)
        self._nodes[node.name] = node

    def _add_edge(self, src: str, dst: str, grouping: Grouping,
                  stream: int) -> None:
        self._edges.append(Edge(src, dst, grouping, stream))

    def build(self) -> LogicalTopology:
        return LogicalTopology(self.topology_id, dict(self._nodes),
                               list(self._edges), self.config)

"""Worker transport abstraction (Storm's ``IContext``/``IConnection``).

The executor is transport-agnostic: it hands routed tuples to a
:class:`Transport` and receives :class:`Delivery` batches on its input
store. The two implementations differ exactly where the paper says they
do:

* :class:`~repro.streaming.storm.StormTransport` — application-level TCP
  connections, **one serialization per destination**;
* :class:`~repro.core.io_layer.TyphoonTransport` — serialize once,
  packetize into custom Ethernet frames, hand to the host SDN switch
  (which replicates broadcast frames at the network layer).

All CPU the transport consumes is *returned* from its methods as a
virtual-time cost; the calling executor yields that amount, so the
sender's clock advances by exactly the work it did.

When hop-by-hop tracing is on (:mod:`repro.sim.trace`), the Typhoon
transport additionally reports ``serialize`` / ``batch-wait`` / ``wire``
/ ``reassembly`` / ``deserialize`` checkpoints for sampled tuples (the
trace id rides inside the serialized envelope, so no side-channel is
needed). The Storm baseline transport is left untraced on purpose: it
is the comparison system, and its schedule must not depend on Typhoon
observability features.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Sequence

from .tuples import StreamTuple


@dataclass
class Delivery:
    """A batch of tuples arriving at a worker, plus its receive-side cost.

    ``cost`` covers everything the receiving worker must pay before the
    tuples are usable: TCP receive / depacketization, demultiplexing and
    deserialization. The executor yields it before processing.
    """

    tuples: List[StreamTuple]
    cost: float = 0.0
    #: Memoized :func:`delivery_bytes` result — the sizer runs on both
    #: store put and get, and the footprint of an immutable batch never
    #: changes between the two.
    nbytes: Optional[int] = None
    #: When set, every tuple in the batch rides this one stream id (the
    #: transport knows this for free on uniform train deliveries). The
    #: executor uses it to hand a whole data-stream delivery to a
    #: component's ``execute_batch`` hook; ``None`` means unknown/mixed
    #: and forces the per-tuple path.
    stream: Optional[int] = None

    def __len__(self) -> int:
        return len(self.tuples)


def delivery_bytes(delivery: Delivery) -> int:
    """Approximate byte footprint of a queued delivery (for OOM tracking)."""
    cached = delivery.nbytes
    if cached is not None:
        return cached
    # 80 bytes of object overhead per tuple plus a rough payload estimate.
    total = 0
    for stream_tuple in delivery.tuples:
        total += 80
        for value in stream_tuple.values:
            if isinstance(value, (str, bytes)):
                total += len(value)
            else:
                total += 8
    delivery.nbytes = total
    return total


class Transport:
    """Outbound side of a worker's communication stack.

    Delivery accounting contract: implementations that hold a
    :class:`repro.sim.audit.DeliveryLedger` must report every tuple
    accepted for transmission (``record_sent``), every tuple handed to
    an executor (``record_delivered``) and every loss with a typed
    (layer, reason) drop, and must expose :meth:`pending_tuples` so the
    auditor can count what is still buffered. The conservation identity
    ``sent + injected + replicated == delivered + controller_delivered +
    drops + buffered + pending_reassembly`` is then checked by
    :func:`repro.core.audit.verify_conservation` after each run.
    """

    def send(self, stream_tuple: StreamTuple, dst_worker_ids: Sequence[int]) -> float:
        """Route one tuple to explicit destinations; returns CPU cost."""
        raise NotImplementedError

    def send_many(self, stream_tuples: Sequence[StreamTuple],
                  dst: Any) -> float:
        """Batched send: every tuple to the same single destination.
        Semantically identical to per-tuple :meth:`send` calls (this
        default is exactly that); transports override it to hoist
        per-call setup out of the loop."""
        cost = 0.0
        dsts = [dst]
        for stream_tuple in stream_tuples:
            cost += self.send(stream_tuple, dsts)
        return cost

    def send_interleaved(self, stream_tuples: Sequence[StreamTuple],
                         dst: Any, pre_cost: float, cost: float,
                         uniform: bool = False) -> float:
        """Batched replay of ``for t: cost += pre_cost; cost += send(t,
        [dst])`` — the executor's per-tuple accumulation pattern — on
        the running ``cost`` value, preserving the exact float-addition
        sequence. This default is literally that loop; transports
        override it to hoist per-call setup. ``uniform`` is the
        caller's pledge that the batch shares one (stream, source)
        envelope and carries no stamps — a hint only; this default
        ignores it."""
        dsts = [dst]
        for stream_tuple in stream_tuples:
            cost += pre_cost
            cost += self.send(stream_tuple, dsts)
        return cost

    def send_broadcast(self, stream_tuple: StreamTuple,
                       dst_worker_ids: Sequence[int]) -> float:
        """One-to-many send. Typhoon serializes once and lets the switch
        replicate; the baseline degenerates to per-destination sends."""
        raise NotImplementedError

    def send_broadcast_interleaved(self, stream_tuples: Sequence[StreamTuple],
                                   dst_worker_ids: Sequence[int],
                                   pre_cost: float, cost: float,
                                   uniform: bool = False) -> float:
        """Batched replay of ``for t: cost += pre_cost; cost +=
        send_broadcast(t, dsts)`` on the running ``cost`` value,
        preserving the exact float-addition sequence. This default is
        literally that loop; transports override it to encode the whole
        train in one pass. ``uniform`` as in :meth:`send_interleaved`."""
        for stream_tuple in stream_tuples:
            cost += pre_cost
            cost += self.send_broadcast(stream_tuple, dst_worker_ids)
        return cost

    def send_offloaded(self, stream_tuple: StreamTuple, edge_key,
                       dst_worker_ids: Sequence[int]) -> float:
        """SDN-offloaded routing (§4, load balancer): the worker picks no
        destination; the switch's select group rewrites it. Transports
        without SDN support fall back to local round robin."""
        raise NotImplementedError

    def flush(self) -> float:
        """Force out partially filled batches; returns CPU cost."""
        raise NotImplementedError

    def set_batch_size(self, batch_size: int) -> None:
        """Adjust batching (Typhoon BATCH_SIZE control tuples)."""

    def pending_tuples(self) -> int:
        """Tuples buffered for sending but not yet on the wire."""
        return 0

    def close(self) -> None:
        """Tear down connections/ports, draining (and accounting) any
        still-buffered tuples."""

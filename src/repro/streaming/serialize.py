"""Tuple serialization: a compact, self-describing binary codec.

Serialization is *the* cost the paper's broadcast optimization removes
(it cites 60–90 % of transfer time), so this reproduction serializes for
real: tuple values are encoded to actual bytes with a type-tagged format
(None, bool, int, float, str, bytes, list, dict) and decoded back. The
virtual-time cost of each encode/decode is derived from the resulting
byte count via the :class:`~repro.sim.costs.CostModel`.

The wire format is deliberately simple (length-prefixed, big-endian) — a
stand-in for Kryo/Java serialization in Storm — but the implementation
is the repo's hottest real (wall-clock) path, so it is tuned for CPython
(see DESIGN.md §5d for the measurements behind each choice):

* **encode** appends into one growing ``bytearray``: tag + fixed-width
  field pairs are reserved from preallocated zero-pad singletons and
  written in a single ``Struct.pack_into`` call (``!Bq``-style combined
  structs) — no per-value ``bytes([tag]) + packed`` temporaries, no
  final ``join`` pass, and ``Struct.pack`` is never called (locked by an
  allocation-regression test);
* **decode** walks one flat buffer with the dispatch chain ordered by
  observed tag frequency and the struct readers bound as default
  arguments; each str/bytes payload is materialized from exactly one
  slice of the input, with no intermediate temporaries. Truncation is
  detected by the buffer reads themselves rather than a per-value bounds
  check. (An all-``memoryview`` decoder was prototyped and benchmarked
  *slower*: CPython's memoryview slice objects cost more than the small
  copies they avoid — see §5d.)
* **both directions batch**: values are encoded/decoded in runs
  (``_encode_many``/``_decode_many``), so scalars cost zero Python
  function calls — the codec recurses only for nested containers.

The byte layout is unchanged — encode/decode are byte-for-byte
compatible with the pre-optimization codec, including the optional
anchor/trace trailing fields (locked by the golden-bytes tests).
"""

from __future__ import annotations

import struct
from typing import Any, Optional, Tuple

from ..sim.costs import CostModel
from .tuples import Anchor, StreamTuple

_T_NONE = 0x00
_T_TRUE = 0x01
_T_FALSE = 0x02
_T_INT = 0x03
_T_FLOAT = 0x04
_T_STR = 0x05
_T_BYTES = 0x06
_T_LIST = 0x07
_T_DICT = 0x08
_T_BIGINT = 0x09  # ints outside the signed-64 range (e.g. 64-bit ack ids)

_I64_MIN = -(2 ** 63)
_I64_MAX = 2 ** 63 - 1

_U32 = struct.Struct("!I")
_I64 = struct.Struct("!q")
_F64 = struct.Struct("!d")

#: Combined tag+field structs: one ``pack_into`` writes the tag byte and
#: the big-endian field together (network byte order has no padding, so
#: ``!Bq`` lays out identically to a tag byte followed by ``!q``).
_TAG_I64 = struct.Struct("!Bq")    # tag + i64
_TAG_F64 = struct.Struct("!Bd")    # tag + f64
_TAG_U32 = struct.Struct("!BI")    # tag + u32 (str/bytes/list/dict headers)
_BIGINT_HEAD = struct.Struct("!BBI")  # tag + sign + u32 length

# Tuple envelope:
#   stream(2) src_worker(4-signed) flags(1) nvalues(2) [anchor 16] [trace 8]
_ENVELOPE = struct.Struct("!HiBH")
_ANCHOR = struct.Struct("!QQ")
_TRACE = struct.Struct("!Q")
_FLAG_ANCHORED = 0x01
#: Set when the tuple was sampled by the tracer; an 8-byte trace id
#: follows the (optional) anchor. Unsampled tuples carry neither the
#: flag nor the bytes, so wire traffic is unchanged when tracing is off.
_FLAG_TRACED = 0x02
#: Set when the tuple carries a replication sequencing stamp: a 4-byte
#: epoch plus an 8-byte sequence number follow the (optional) anchor and
#: trace fields. Placed last so :func:`peek_trace_id` offsets are
#: unchanged; non-replicated tuples carry neither the flag nor the
#: bytes, so wire traffic is byte-identical when replication is off.
_FLAG_SEQUENCED = 0x04
_SEQ = struct.Struct("!IQ")

#: Preallocated zero padding, extended into the output buffer to
#: reserve room for a tag byte plus a fixed-width field, which is then
#: filled in place with ``pack_into`` — one shared singleton per field
#: shape instead of a fresh ``bytes`` temporary per value.
_PAD_TAG_U32 = bytes(_TAG_U32.size)
_PAD_TAG_I64 = bytes(_TAG_I64.size)
_PAD_BIGINT_HEAD = bytes(_BIGINT_HEAD.size)
_PAD_ENVELOPE = bytes(_ENVELOPE.size)
_PAD_ANCHOR = bytes(_ANCHOR.size)
_PAD_TRACE = bytes(_TRACE.size)
_PAD_SEQ = bytes(_SEQ.size)

#: Per-record length prefix used by :func:`encode_train`. Mirrors the
#: packets layer's MULTI record framing (``u32 len | record``, see
#: :mod:`repro.core.packets`); defined locally because importing from
#: :mod:`repro.core` here would be circular (core's io_layer imports
#: this module).
_RECORD_LEN = struct.Struct("!I")
_PAD_RECORD_LEN = bytes(_RECORD_LEN.size)


class SerializationError(ValueError):
    """Raised when a value cannot be encoded or bytes cannot be decoded."""


#: Memoized envelope headers keyed by (stream, source_worker, flags,
#: nvalues). Real streams reuse a handful of envelope shapes, so the 9
#: header bytes are a dict hit instead of a pack_into; byte output is
#: unchanged. Bounded: cleared wholesale if an app somehow produces
#: thousands of distinct shapes.
_ENVELOPE_CACHE: dict = {}
_ENVELOPE_CACHE_MAX = 1024

#: Memoized str value records (tag + u32 length + utf-8 bytes). Workloads
#: re-send the same strings constantly (fixed payloads, word vocabularies),
#: and str objects cache their own hash, so the lookup is near-free.
#: Long strings are not cached to bound memory.
_STR_RECORD_CACHE: dict = {}
_STR_RECORD_CACHE_MAX = 4096
_STR_CACHE_LEN_LIMIT = 256


def _encode_many(values, out: bytearray,
                 _pack_i64=_TAG_I64.pack_into,
                 _pack_f64=_TAG_F64.pack_into,
                 _pack_u32=_TAG_U32.pack_into,
                 _pack_big=_BIGINT_HEAD.pack_into,
                 _len=len, _type=type, _isinstance=isinstance) -> None:
    """Encode a run of values; scalars cost zero Python function calls
    (the encoder recurses only for containers). Exact-type dispatch is
    ordered by observed frequency, with an ``isinstance`` fallback for
    subclasses so the accepted type set matches the original encoder."""
    for value in values:
        if value is None:
            out.append(_T_NONE)
            continue
        if value is True:
            out.append(_T_TRUE)
            continue
        if value is False:
            out.append(_T_FALSE)
            continue
        kind = _type(value)
        if kind is not int and kind is not str and kind is not float \
                and kind is not list and kind is not tuple \
                and kind is not dict and kind is not bytes \
                and kind is not bytearray:
            # Subclasses (IntEnum, namedtuple, …): widen to the base
            # type the original isinstance chain would have picked.
            if _isinstance(value, int):
                kind = int
            elif _isinstance(value, float):
                kind = float
            elif _isinstance(value, str):
                kind = str
            elif _isinstance(value, (bytes, bytearray)):
                kind = bytes
            elif _isinstance(value, (list, tuple)):
                kind = list
            elif _isinstance(value, dict):
                kind = dict
            else:
                raise SerializationError(
                    "cannot serialize %r of type %s"
                    % (value, type(value).__name__))
        if kind is int:
            if _I64_MIN <= value <= _I64_MAX:
                pos = _len(out)
                out += _PAD_TAG_I64
                _pack_i64(out, pos, _T_INT, value)
            else:
                magnitude = abs(value)
                body = magnitude.to_bytes((magnitude.bit_length() + 8) // 8,
                                          "big", signed=False)
                pos = _len(out)
                out += _PAD_BIGINT_HEAD
                _pack_big(out, pos, _T_BIGINT, 1 if value < 0 else 0,
                          _len(body))
                out += body
        elif kind is str:
            record = _STR_RECORD_CACHE.get(value)
            if record is not None:
                out += record
            elif _len(value) <= _STR_CACHE_LEN_LIMIT:
                data = value.encode("utf-8")
                record = bytearray()
                record += _PAD_TAG_U32
                _pack_u32(record, 0, _T_STR, _len(data))
                record += data
                record = bytes(record)
                if _len(_STR_RECORD_CACHE) >= _STR_RECORD_CACHE_MAX:
                    _STR_RECORD_CACHE.clear()
                _STR_RECORD_CACHE[value] = record
                out += record
            else:
                data = value.encode("utf-8")
                pos = _len(out)
                out += _PAD_TAG_U32
                _pack_u32(out, pos, _T_STR, _len(data))
                out += data
        elif kind is float:
            pos = _len(out)
            out += _PAD_TAG_I64
            _pack_f64(out, pos, _T_FLOAT, value)
        elif kind is list or kind is tuple:
            pos = _len(out)
            out += _PAD_TAG_U32
            _pack_u32(out, pos, _T_LIST, _len(value))
            _encode_many(value, out)
        elif kind is dict:
            pos = _len(out)
            out += _PAD_TAG_U32
            _pack_u32(out, pos, _T_DICT, _len(value))
            for key, item in value.items():
                _encode_many((key, item), out)
        else:  # bytes / bytearray
            pos = _len(out)
            out += _PAD_TAG_U32
            _pack_u32(out, pos, _T_BYTES, _len(value))
            out += value


def _encode_value(value: Any, out: bytearray) -> None:
    _encode_many((value,), out)


def _decode_many(data: bytes, offset: int, count: int, out,
                 _unpack_u32=_U32.unpack_from,
                 _unpack_i64=_I64.unpack_from,
                 _unpack_f64=_F64.unpack_from,
                 _from_bytes=int.from_bytes) -> int:
    """Decode ``count`` values from a flat ``bytes`` buffer, appending
    them to ``out``; returns the new offset.

    Scalars cost zero Python function calls (recursion only for
    containers) and the dispatch chain is ordered by observed tag
    frequency (str and int dominate real streams). There is no
    per-value bounds check: a truncated buffer surfaces as
    ``IndexError``/``struct.error`` from the reads themselves, which
    :func:`decode_tuple` converts."""
    append = out.append
    for _ in range(count):
        tag = data[offset]
        offset += 1
        if tag == _T_STR:
            (length,) = _unpack_u32(data, offset)
            offset += 4
            end = offset + length
            append(data[offset:end].decode("utf-8"))
            offset = end
            continue
        if tag == _T_INT:
            (value,) = _unpack_i64(data, offset)
            append(value)
            offset += 8
            continue
        if tag == _T_NONE:
            append(None)
            continue
        if tag == _T_TRUE:
            append(True)
            continue
        if tag == _T_FALSE:
            append(False)
            continue
        if tag == _T_FLOAT:
            (value,) = _unpack_f64(data, offset)
            append(value)
            offset += 8
            continue
        if tag == _T_LIST:
            (length,) = _unpack_u32(data, offset)
            offset += 4
            items = []
            offset = _decode_many(data, offset, length, items)
            append(items)
            continue
        if tag == _T_DICT:
            (length,) = _unpack_u32(data, offset)
            offset += 4
            flat = []
            offset = _decode_many(data, offset, length + length, flat)
            pairs = iter(flat)
            append(dict(zip(pairs, pairs)))
            continue
        if tag == _T_BYTES:
            (length,) = _unpack_u32(data, offset)
            offset += 4
            end = offset + length
            append(data[offset:end])
            offset = end
            continue
        if tag == _T_BIGINT:
            sign = data[offset]
            offset += 1
            (length,) = _unpack_u32(data, offset)
            offset += 4
            end = offset + length
            magnitude = _from_bytes(data[offset:end], "big")
            append(-magnitude if sign else magnitude)
            offset = end
            continue
        raise SerializationError("unknown type tag 0x%02x" % tag)
    return offset


def _decode_value(data: bytes, offset: int) -> Tuple[Any, int]:
    out: list = []
    offset = _decode_many(data, offset, 1, out)
    return out[0], offset


def encode_values(values: Tuple[Any, ...]) -> bytes:
    out = bytearray()
    _encode_many(values, out)
    return bytes(out)


def encode_tuple(stream_tuple: StreamTuple) -> bytes:
    """Serialize a full tuple (envelope + values) to bytes."""
    anchor = stream_tuple.anchor
    trace_id = stream_tuple.trace_id
    seq = stream_tuple.seq
    values = stream_tuple.values
    flags = _FLAG_ANCHORED if anchor is not None else 0
    if trace_id is not None:
        flags |= _FLAG_TRACED
    if seq is not None:
        flags |= _FLAG_SEQUENCED
    key = (stream_tuple.stream, stream_tuple.source_worker, flags,
           len(values))
    head = _ENVELOPE_CACHE.get(key)
    if head is None:
        head = bytearray(_PAD_ENVELOPE)
        _ENVELOPE.pack_into(head, 0, key[0], key[1], flags, key[3])
        head = bytes(head)
        if len(_ENVELOPE_CACHE) >= _ENVELOPE_CACHE_MAX:
            _ENVELOPE_CACHE.clear()
        _ENVELOPE_CACHE[key] = head
    out = bytearray(head)
    if anchor is not None:
        pos = len(out)
        out += _PAD_ANCHOR
        _ANCHOR.pack_into(out, pos, anchor.root_id, anchor.edge_id)
    if trace_id is not None:
        pos = len(out)
        out += _PAD_TRACE
        _TRACE.pack_into(out, pos, trace_id)
    if seq is not None:
        pos = len(out)
        out += _PAD_SEQ
        _SEQ.pack_into(out, pos, seq[0], seq[1])
    _encode_many(values, out)
    return bytes(out)


#: Exact value types the transport's same-process fast lane may share
#: by reference instead of re-decoding: immutable scalars only
#: (``bytearray`` is scalar-encodable but mutable, so it is excluded).
SCALAR_TYPES = frozenset((str, int, float, bytes, bool, type(None)))


def encode_tuple_scalar(
    stream_tuple: StreamTuple,
    _pack_i64=_TAG_I64.pack_into,
    _pack_f64=_TAG_F64.pack_into,
    _pack_u32=_TAG_U32.pack_into,
    _pack_big=_BIGINT_HEAD.pack_into,
    _len=len, _type=type,
    _memo=[None, None, None, b""],
) -> Tuple[bytes, bool]:
    """Serialize and classify in one pass: ``(encoded, all_scalar)``.

    ``encoded`` is byte-for-byte identical to :func:`encode_tuple`
    (locked by the golden-bytes tests); ``all_scalar`` reports whether
    every value's exact type is in :data:`SCALAR_TYPES` — the
    transport's fast-lane eligibility test. The hot send paths need
    both answers for every tuple, and fusing them saves a second pass
    over the values plus two call frames (``encode_tuple`` →
    ``_encode_many``) per tuple. The body is ``_encode_many``
    specialized to scalar values in the same pad-and-``pack_into``
    style; anchored/traced tuples and container (or subclass) values
    fall back to the generic encoder.
    """
    values = stream_tuple.values
    if stream_tuple.anchor is not None or stream_tuple.trace_id is not None \
            or stream_tuple.seq is not None:
        encoded = encode_tuple(stream_tuple)
        for value in values:
            if _type(value) not in SCALAR_TYPES:
                return encoded, False
        return encoded, True
    stream = stream_tuple.stream
    src = stream_tuple.source_worker
    nvalues = _len(values)
    # Single-entry memo in front of the envelope dict: consecutive
    # tuples almost always share one envelope shape, so the common case
    # is two int compares instead of a key-tuple build + dict hash.
    # (Content-addressed, so the dict's overflow clear cannot stale it.)
    if stream == _memo[0] and src == _memo[1] and nvalues == _memo[2]:
        head = _memo[3]
    else:
        key = (stream, src, 0, nvalues)
        head = _ENVELOPE_CACHE.get(key)
        if head is None:
            head = bytearray(_PAD_ENVELOPE)
            _ENVELOPE.pack_into(head, 0, stream, src, 0, nvalues)
            head = bytes(head)
            if _len(_ENVELOPE_CACHE) >= _ENVELOPE_CACHE_MAX:
                _ENVELOPE_CACHE.clear()
            _ENVELOPE_CACHE[key] = head
        _memo[0] = stream
        _memo[1] = src
        _memo[2] = nvalues
        _memo[3] = head
    out = bytearray(head)
    for value in values:
        kind = _type(value)
        if kind is str:
            record = _STR_RECORD_CACHE.get(value)
            if record is not None:
                out += record
            elif _len(value) <= _STR_CACHE_LEN_LIMIT:
                data = value.encode("utf-8")
                record = bytearray()
                record += _PAD_TAG_U32
                _pack_u32(record, 0, _T_STR, _len(data))
                record += data
                record = bytes(record)
                if _len(_STR_RECORD_CACHE) >= _STR_RECORD_CACHE_MAX:
                    _STR_RECORD_CACHE.clear()
                _STR_RECORD_CACHE[value] = record
                out += record
            else:
                data = value.encode("utf-8")
                pos = _len(out)
                out += _PAD_TAG_U32
                _pack_u32(out, pos, _T_STR, _len(data))
                out += data
        elif kind is int:
            if _I64_MIN <= value <= _I64_MAX:
                pos = _len(out)
                out += _PAD_TAG_I64
                _pack_i64(out, pos, _T_INT, value)
            else:
                magnitude = abs(value)
                body = magnitude.to_bytes((magnitude.bit_length() + 8) // 8,
                                          "big", signed=False)
                pos = _len(out)
                out += _PAD_BIGINT_HEAD
                _pack_big(out, pos, _T_BIGINT, 1 if value < 0 else 0,
                          _len(body))
                out += body
        elif kind is float:
            pos = _len(out)
            out += _PAD_TAG_I64
            _pack_f64(out, pos, _T_FLOAT, value)
        elif value is None:
            out.append(_T_NONE)
        elif kind is bool:
            out.append(_T_TRUE if value else _T_FALSE)
        elif kind is bytes:
            pos = _len(out)
            out += _PAD_TAG_U32
            _pack_u32(out, pos, _T_BYTES, _len(value))
            out += value
        else:
            # Container or subclass value: not fast-lane eligible; let
            # the generic encoder redo the tuple (rare path).
            return encode_tuple(stream_tuple), False
    return bytes(out), True


#: Memoized ``length-prefix pad + envelope head`` byte strings for
#: :func:`encode_train`, so the per-record preamble is one bytearray
#: extend instead of two. Separate from :data:`_ENVELOPE_CACHE` (which
#: stores bare heads for the per-tuple encoders).
_TRAIN_HEAD_CACHE: dict = {}


def encode_train(
    stream_tuples,
    _pack_i64=_TAG_I64.pack,
    _pack_f64=_TAG_F64.pack_into,
    _pack_u32=_TAG_U32.pack_into,
    _pack_big=_BIGINT_HEAD.pack_into,
    _pack_rec=_RECORD_LEN.pack_into,
    _len=len, _type=type,
):
    """Serialize a whole train of plain tuples into one contiguous,
    length-prefixed buffer in a single pass.

    Returns ``(data, bounds, rlens, ests, objs, stream)``:

    * ``data`` — one ``bytes`` buffer holding every record behind a
      big-endian ``u32`` length prefix, exactly the packets layer's
      MULTI record framing (Fig. 5), so a flush whose batch is one
      train can lift the payload body straight out of ``data`` with a
      single slice. Record ``i``'s prefix starts at ``bounds[i]`` and
      its serialized bytes are ``data[bounds[i] + 4 : bounds[i + 1]]``
      — byte-for-byte what :func:`encode_tuple_scalar` would produce.
    * ``rlens[i]`` — record ``i``'s serialized length (sans prefix),
      precomputed so cost accounting downstream never re-derives it.
    * ``ests`` — cumulative receive-side byte estimates: the store
      sizer's charge for records ``i..j`` is ``ests[j] - ests[i]``
      (80 per tuple + ``len(value)`` for str/bytes values, 8 for other
      scalars — the same integer walk :func:`delivery_bytes` does,
      folded into the type dispatch already happening here; integer
      addition is associative, so slice sums are exact).
    * ``objs`` — ``None`` when every record is fast-lane eligible
      (each value's exact type is in :data:`SCALAR_TYPES`); callers
      then use the input sequence itself, skipping one list build per
      train. Otherwise a list holding the tuple at eligible records
      and ``None`` where a container value forced a generic re-encode.
      ``all_fast`` is simply ``objs is None``.
    * ``stream`` — the one stream id every tuple rides, or ``None``
      when the train mixes streams. Tracked inside the envelope-change
      branch (a stream switch always changes the envelope), so the
      common single-stream train pays nothing per tuple. Receivers use
      it to hand a whole uniform train to a component's batch hook.

    Returns ``None`` outright when any tuple in the train carries an
    anchor, trace or sequencing stamp (checked inline, so the clean
    common case pays no separate scan pass). Those stamps only appear
    when acking, tracing or replication is armed; stamped batches fall
    back to the caller's per-tuple loop.
    """
    buf = bytearray()
    bounds: list = [0]   # record prefix offsets; n+1 entries
    rlens: list = []
    ests: list = [0]     # cumulative delivery-byte estimates; n+1 entries
    objs = None          # materialized lazily on the first slow record
    keep = None
    mark = bounds.append
    keep_len = rlens.append
    keep_est = ests.append
    est = 0
    prev_stream = prev_src = prev_n = None
    train_stream = None
    mixed = False
    head = b""
    for stream_tuple in stream_tuples:
        if stream_tuple.anchor is not None \
                or stream_tuple.trace_id is not None \
                or stream_tuple.seq is not None:
            return None
        values = stream_tuple.values
        stream = stream_tuple.stream
        src = stream_tuple.source_worker
        nvalues = _len(values)
        if stream != prev_stream or src != prev_src or nvalues != prev_n:
            key = (stream, src, nvalues)
            head = _TRAIN_HEAD_CACHE.get(key)
            if head is None:
                head = bytearray(_PAD_ENVELOPE)
                _ENVELOPE.pack_into(head, 0, stream, src, 0, nvalues)
                head = _PAD_RECORD_LEN + bytes(head)
                if _len(_TRAIN_HEAD_CACHE) >= _ENVELOPE_CACHE_MAX:
                    _TRAIN_HEAD_CACHE.clear()
                _TRAIN_HEAD_CACHE[key] = head
            if train_stream is None:
                train_stream = stream
            elif stream != train_stream:
                mixed = True
            prev_stream = stream
            prev_src = src
            prev_n = nvalues
        start = _len(buf)
        buf += head
        est += 80
        obj = stream_tuple
        for value in values:
            kind = _type(value)
            if kind is str:
                est += _len(value)
                record = _STR_RECORD_CACHE.get(value)
                if record is not None:
                    buf += record
                elif _len(value) <= _STR_CACHE_LEN_LIMIT:
                    data = value.encode("utf-8")
                    record = bytearray()
                    record += _PAD_TAG_U32
                    _pack_u32(record, 0, _T_STR, _len(data))
                    record += data
                    record = bytes(record)
                    if _len(_STR_RECORD_CACHE) >= _STR_RECORD_CACHE_MAX:
                        _STR_RECORD_CACHE.clear()
                    _STR_RECORD_CACHE[value] = record
                    buf += record
                else:
                    data = value.encode("utf-8")
                    pos = _len(buf)
                    buf += _PAD_TAG_U32
                    _pack_u32(buf, pos, _T_STR, _len(data))
                    buf += data
            elif kind is int:
                est += 8
                if _I64_MIN <= value <= _I64_MAX:
                    buf += _pack_i64(_T_INT, value)
                else:
                    magnitude = abs(value)
                    body = magnitude.to_bytes(
                        (magnitude.bit_length() + 8) // 8, "big",
                        signed=False)
                    pos = _len(buf)
                    buf += _PAD_BIGINT_HEAD
                    _pack_big(buf, pos, _T_BIGINT, 1 if value < 0 else 0,
                              _len(body))
                    buf += body
            elif kind is float:
                est += 8
                pos = _len(buf)
                buf += _PAD_TAG_I64
                _pack_f64(buf, pos, _T_FLOAT, value)
            elif value is None:
                est += 8
                buf.append(_T_NONE)
            elif kind is bool:
                est += 8
                buf.append(_T_TRUE if value else _T_FALSE)
            elif kind is bytes:
                est += _len(value)
                pos = _len(buf)
                buf += _PAD_TAG_U32
                _pack_u32(buf, pos, _T_BYTES, _len(value))
                buf += value
            else:
                # Container or subclass value mid-record: rewind to just
                # past the length prefix and let the generic encoder redo
                # the one tuple (rare path; not fast-lane eligible). The
                # estimate for this record is moot — a train with any
                # non-fast record never rides the annotation fast lane.
                del buf[start + 4:]
                buf += encode_tuple(stream_tuple)
                if objs is None:
                    # len(rlens) == index of the current record, so the
                    # slice holds exactly the fast records before it.
                    objs = list(stream_tuples[:_len(rlens)])
                    keep = objs.append
                obj = None
                break
        end = _len(buf)
        rlen = end - start - 4
        _pack_rec(buf, start, rlen)
        mark(end)
        keep_len(rlen)
        keep_est(est)
        if objs is not None:
            keep(obj)
    return bytes(buf), bounds, rlens, ests, objs, \
        None if mixed else train_stream


def encode_train_uniform(
    stream_tuples,
    stream,
    src,
    _pack_i64=_TAG_I64.pack,
    _pack_f64=_TAG_F64.pack_into,
    _pack_u32=_TAG_U32.pack_into,
    _pack_big=_BIGINT_HEAD.pack_into,
    _pack_rec=_RECORD_LEN.pack_into,
    _len=len, _type=type,
):
    """:func:`encode_train` specialised for a *uniform* batch: every
    tuple shares the one ``(stream, src)`` envelope passed in, and none
    carries an anchor, trace or sequencing stamp. The caller owns that
    contract — the spout fast-sink lane guarantees it by construction
    (one collector emits the whole run on one stream; acking, tracing
    and sequenced edges each disarm the lane before a stamp can ever be
    applied) — which lets this loop drop the per-tuple stamp scan and
    the per-tuple envelope comparisons that :func:`encode_train` must
    keep for arbitrary batches. The emitted bytes and the returned
    ``(data, bounds, rlens, ests, objs, stream)`` are exactly what
    :func:`encode_train` produces for the same tuples. Batches holding
    a container value delegate to the general walk (which tracks the
    per-record object list this loop omits), so a ``None`` return is
    possible only if the caller's no-stamp pledge was broken — and the
    transports degrade to the per-tuple path in that case anyway.
    """
    buf = bytearray()
    bounds: list = [0]
    rlens: list = []
    ests: list = [0]
    mark = bounds.append
    keep_len = rlens.append
    keep_est = ests.append
    est = 0
    head_cache = _TRAIN_HEAD_CACHE
    prev_n = -1
    head = b""
    # Record starts carry over from the previous record's end — one
    # len() per record instead of two.
    end = 0
    for stream_tuple in stream_tuples:
        values = stream_tuple.values
        nvalues = _len(values)
        if nvalues != prev_n:
            key = (stream, src, nvalues)
            head = head_cache.get(key)
            if head is None:
                head = bytearray(_PAD_ENVELOPE)
                _ENVELOPE.pack_into(head, 0, stream, src, 0, nvalues)
                head = _PAD_RECORD_LEN + bytes(head)
                if _len(head_cache) >= _ENVELOPE_CACHE_MAX:
                    head_cache.clear()
                head_cache[key] = head
            prev_n = nvalues
        start = end
        buf += head
        est += 80
        for value in values:
            kind = _type(value)
            if kind is str:
                est += _len(value)
                record = _STR_RECORD_CACHE.get(value)
                if record is not None:
                    buf += record
                elif _len(value) <= _STR_CACHE_LEN_LIMIT:
                    data = value.encode("utf-8")
                    record = bytearray()
                    record += _PAD_TAG_U32
                    _pack_u32(record, 0, _T_STR, _len(data))
                    record += data
                    record = bytes(record)
                    if _len(_STR_RECORD_CACHE) >= _STR_RECORD_CACHE_MAX:
                        _STR_RECORD_CACHE.clear()
                    _STR_RECORD_CACHE[value] = record
                    buf += record
                else:
                    data = value.encode("utf-8")
                    pos = _len(buf)
                    buf += _PAD_TAG_U32
                    _pack_u32(buf, pos, _T_STR, _len(data))
                    buf += data
            elif kind is int:
                est += 8
                if _I64_MIN <= value <= _I64_MAX:
                    buf += _pack_i64(_T_INT, value)
                else:
                    magnitude = abs(value)
                    body = magnitude.to_bytes(
                        (magnitude.bit_length() + 8) // 8, "big",
                        signed=False)
                    pos = _len(buf)
                    buf += _PAD_BIGINT_HEAD
                    _pack_big(buf, pos, _T_BIGINT, 1 if value < 0 else 0,
                              _len(body))
                    buf += body
            elif kind is float:
                est += 8
                pos = _len(buf)
                buf += _PAD_TAG_I64
                _pack_f64(buf, pos, _T_FLOAT, value)
            elif value is None:
                est += 8
                buf.append(_T_NONE)
            elif kind is bool:
                est += 8
                buf.append(_T_TRUE if value else _T_FALSE)
            elif kind is bytes:
                est += _len(value)
                pos = _len(buf)
                buf += _PAD_TAG_U32
                _pack_u32(buf, pos, _T_BYTES, _len(value))
                buf += value
            else:
                # A container value: the whole batch re-encodes through
                # the general walk, which produces the identical bytes
                # for a uniform batch and tracks the per-record object
                # list this loop deliberately omits. One batch pays
                # double encode work; the hot all-scalar shape pays no
                # objs bookkeeping at all.
                return encode_train(stream_tuples)
        end = _len(buf)
        rlen = end - start - 4
        _pack_rec(buf, start, rlen)
        mark(end)
        keep_len(rlen)
        keep_est(est)
    return bytes(buf), bounds, rlens, ests, None, stream


def decode_tuple(data, source_component: str = "") -> StreamTuple:
    """Inverse of :func:`encode_tuple`; accepts any bytes-like buffer.

    Non-``bytes`` inputs (memoryview, bytearray) are flattened once up
    front so the hot loop runs native ``bytes`` slicing throughout."""
    if len(data) < _ENVELOPE.size:
        raise SerializationError("truncated tuple envelope")
    if type(data) is not bytes:
        data = bytes(data)
    stream, source_worker, flags, nvalues = _ENVELOPE.unpack_from(data, 0)
    offset = _ENVELOPE.size
    values = []
    try:
        anchor = None
        if flags & _FLAG_ANCHORED:
            root_id, edge_id = _ANCHOR.unpack_from(data, offset)
            anchor = Anchor(root_id, edge_id)
            offset += _ANCHOR.size
        trace_id = None
        if flags & _FLAG_TRACED:
            (trace_id,) = _TRACE.unpack_from(data, offset)
            offset += _TRACE.size
        seq = None
        if flags & _FLAG_SEQUENCED:
            seq = _SEQ.unpack_from(data, offset)
            offset += _SEQ.size
        offset = _decode_many(data, offset, nvalues, values)
    except (IndexError, struct.error):
        raise SerializationError("truncated value") from None
    if offset != len(data):
        raise SerializationError("%d trailing bytes after tuple"
                                 % (len(data) - offset))
    return StreamTuple(values=tuple(values), stream=stream,
                       source_component=source_component,
                       source_worker=source_worker, anchor=anchor,
                       trace_id=trace_id, seq=seq)


def peek_trace_id(data) -> Optional[int]:
    """Trace id carried by serialized tuple bytes, without full decoding.

    Tolerates truncation (fragment head chunks carry at least the fixed
    header: envelope 9 + anchor 16 + trace 8 = 33 bytes in the worst
    case, well under any MTU, but be defensive anyway)."""
    if len(data) < _ENVELOPE.size:
        return None
    _stream, _src, flags, _nvalues = _ENVELOPE.unpack_from(data, 0)
    if not flags & _FLAG_TRACED:
        return None
    offset = _ENVELOPE.size
    if flags & _FLAG_ANCHORED:
        offset += _ANCHOR.size
    if len(data) < offset + _TRACE.size:
        return None
    (trace_id,) = _TRACE.unpack_from(data, offset)
    return trace_id


# -- cost helpers ----------------------------------------------------------------


def serialize_cost(costs: CostModel, nbytes: int) -> float:
    return costs.serialize_per_tuple + nbytes * costs.serialize_per_byte


def deserialize_cost(costs: CostModel, nbytes: int) -> float:
    return costs.deserialize_per_tuple + nbytes * costs.deserialize_per_byte

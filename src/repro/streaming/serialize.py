"""Tuple serialization: a compact, self-describing binary codec.

Serialization is *the* cost the paper's broadcast optimization removes
(it cites 60–90 % of transfer time), so this reproduction serializes for
real: tuple values are encoded to actual bytes with a type-tagged format
(None, bool, int, float, str, bytes, list, dict) and decoded back. The
virtual-time cost of each encode/decode is derived from the resulting
byte count via the :class:`~repro.sim.costs.CostModel`.

The wire format is deliberately simple (length-prefixed, big-endian) — a
stand-in for Kryo/Java serialization in Storm — but the implementation
is the repo's hottest real (wall-clock) path, so it is tuned for CPython
(see DESIGN.md §5d for the measurements behind each choice):

* **encode** appends into one growing ``bytearray``: tag + fixed-width
  field pairs are reserved from preallocated zero-pad singletons and
  written in a single ``Struct.pack_into`` call (``!Bq``-style combined
  structs) — no per-value ``bytes([tag]) + packed`` temporaries, no
  final ``join`` pass, and ``Struct.pack`` is never called (locked by an
  allocation-regression test);
* **decode** walks one flat buffer with the dispatch chain ordered by
  observed tag frequency and the struct readers bound as default
  arguments; each str/bytes payload is materialized from exactly one
  slice of the input, with no intermediate temporaries. Truncation is
  detected by the buffer reads themselves rather than a per-value bounds
  check. (An all-``memoryview`` decoder was prototyped and benchmarked
  *slower*: CPython's memoryview slice objects cost more than the small
  copies they avoid — see §5d.)
* **both directions batch**: values are encoded/decoded in runs
  (``_encode_many``/``_decode_many``), so scalars cost zero Python
  function calls — the codec recurses only for nested containers.

The byte layout is unchanged — encode/decode are byte-for-byte
compatible with the pre-optimization codec, including the optional
anchor/trace trailing fields (locked by the golden-bytes tests).
"""

from __future__ import annotations

import struct
from typing import Any, Optional, Tuple

from ..sim.costs import CostModel
from .tuples import Anchor, StreamTuple

_T_NONE = 0x00
_T_TRUE = 0x01
_T_FALSE = 0x02
_T_INT = 0x03
_T_FLOAT = 0x04
_T_STR = 0x05
_T_BYTES = 0x06
_T_LIST = 0x07
_T_DICT = 0x08
_T_BIGINT = 0x09  # ints outside the signed-64 range (e.g. 64-bit ack ids)

_I64_MIN = -(2 ** 63)
_I64_MAX = 2 ** 63 - 1

_U32 = struct.Struct("!I")
_I64 = struct.Struct("!q")
_F64 = struct.Struct("!d")

#: Combined tag+field structs: one ``pack_into`` writes the tag byte and
#: the big-endian field together (network byte order has no padding, so
#: ``!Bq`` lays out identically to a tag byte followed by ``!q``).
_TAG_I64 = struct.Struct("!Bq")    # tag + i64
_TAG_F64 = struct.Struct("!Bd")    # tag + f64
_TAG_U32 = struct.Struct("!BI")    # tag + u32 (str/bytes/list/dict headers)
_BIGINT_HEAD = struct.Struct("!BBI")  # tag + sign + u32 length

# Tuple envelope:
#   stream(2) src_worker(4-signed) flags(1) nvalues(2) [anchor 16] [trace 8]
_ENVELOPE = struct.Struct("!HiBH")
_ANCHOR = struct.Struct("!QQ")
_TRACE = struct.Struct("!Q")
_FLAG_ANCHORED = 0x01
#: Set when the tuple was sampled by the tracer; an 8-byte trace id
#: follows the (optional) anchor. Unsampled tuples carry neither the
#: flag nor the bytes, so wire traffic is unchanged when tracing is off.
_FLAG_TRACED = 0x02

#: Preallocated zero padding, extended into the output buffer to
#: reserve room for a tag byte plus a fixed-width field, which is then
#: filled in place with ``pack_into`` — one shared singleton per field
#: shape instead of a fresh ``bytes`` temporary per value.
_PAD_TAG_U32 = bytes(_TAG_U32.size)
_PAD_TAG_I64 = bytes(_TAG_I64.size)
_PAD_BIGINT_HEAD = bytes(_BIGINT_HEAD.size)
_PAD_ENVELOPE = bytes(_ENVELOPE.size)
_PAD_ANCHOR = bytes(_ANCHOR.size)
_PAD_TRACE = bytes(_TRACE.size)


class SerializationError(ValueError):
    """Raised when a value cannot be encoded or bytes cannot be decoded."""


def _encode_many(values, out: bytearray,
                 _pack_i64=_TAG_I64.pack_into,
                 _pack_f64=_TAG_F64.pack_into,
                 _pack_u32=_TAG_U32.pack_into,
                 _pack_big=_BIGINT_HEAD.pack_into,
                 _len=len, _type=type, _isinstance=isinstance) -> None:
    """Encode a run of values; scalars cost zero Python function calls
    (the encoder recurses only for containers). Exact-type dispatch is
    ordered by observed frequency, with an ``isinstance`` fallback for
    subclasses so the accepted type set matches the original encoder."""
    for value in values:
        if value is None:
            out.append(_T_NONE)
            continue
        if value is True:
            out.append(_T_TRUE)
            continue
        if value is False:
            out.append(_T_FALSE)
            continue
        kind = _type(value)
        if kind is not int and kind is not str and kind is not float \
                and kind is not list and kind is not tuple \
                and kind is not dict and kind is not bytes \
                and kind is not bytearray:
            # Subclasses (IntEnum, namedtuple, …): widen to the base
            # type the original isinstance chain would have picked.
            if _isinstance(value, int):
                kind = int
            elif _isinstance(value, float):
                kind = float
            elif _isinstance(value, str):
                kind = str
            elif _isinstance(value, (bytes, bytearray)):
                kind = bytes
            elif _isinstance(value, (list, tuple)):
                kind = list
            elif _isinstance(value, dict):
                kind = dict
            else:
                raise SerializationError(
                    "cannot serialize %r of type %s"
                    % (value, type(value).__name__))
        if kind is int:
            if _I64_MIN <= value <= _I64_MAX:
                pos = _len(out)
                out += _PAD_TAG_I64
                _pack_i64(out, pos, _T_INT, value)
            else:
                magnitude = abs(value)
                body = magnitude.to_bytes((magnitude.bit_length() + 8) // 8,
                                          "big", signed=False)
                pos = _len(out)
                out += _PAD_BIGINT_HEAD
                _pack_big(out, pos, _T_BIGINT, 1 if value < 0 else 0,
                          _len(body))
                out += body
        elif kind is str:
            data = value.encode("utf-8")
            pos = _len(out)
            out += _PAD_TAG_U32
            _pack_u32(out, pos, _T_STR, _len(data))
            out += data
        elif kind is float:
            pos = _len(out)
            out += _PAD_TAG_I64
            _pack_f64(out, pos, _T_FLOAT, value)
        elif kind is list or kind is tuple:
            pos = _len(out)
            out += _PAD_TAG_U32
            _pack_u32(out, pos, _T_LIST, _len(value))
            _encode_many(value, out)
        elif kind is dict:
            pos = _len(out)
            out += _PAD_TAG_U32
            _pack_u32(out, pos, _T_DICT, _len(value))
            for key, item in value.items():
                _encode_many((key, item), out)
        else:  # bytes / bytearray
            pos = _len(out)
            out += _PAD_TAG_U32
            _pack_u32(out, pos, _T_BYTES, _len(value))
            out += value


def _encode_value(value: Any, out: bytearray) -> None:
    _encode_many((value,), out)


def _decode_many(data: bytes, offset: int, count: int, out,
                 _unpack_u32=_U32.unpack_from,
                 _unpack_i64=_I64.unpack_from,
                 _unpack_f64=_F64.unpack_from,
                 _from_bytes=int.from_bytes) -> int:
    """Decode ``count`` values from a flat ``bytes`` buffer, appending
    them to ``out``; returns the new offset.

    Scalars cost zero Python function calls (recursion only for
    containers) and the dispatch chain is ordered by observed tag
    frequency (str and int dominate real streams). There is no
    per-value bounds check: a truncated buffer surfaces as
    ``IndexError``/``struct.error`` from the reads themselves, which
    :func:`decode_tuple` converts."""
    append = out.append
    for _ in range(count):
        tag = data[offset]
        offset += 1
        if tag == _T_STR:
            (length,) = _unpack_u32(data, offset)
            offset += 4
            end = offset + length
            append(data[offset:end].decode("utf-8"))
            offset = end
            continue
        if tag == _T_INT:
            (value,) = _unpack_i64(data, offset)
            append(value)
            offset += 8
            continue
        if tag == _T_NONE:
            append(None)
            continue
        if tag == _T_TRUE:
            append(True)
            continue
        if tag == _T_FALSE:
            append(False)
            continue
        if tag == _T_FLOAT:
            (value,) = _unpack_f64(data, offset)
            append(value)
            offset += 8
            continue
        if tag == _T_LIST:
            (length,) = _unpack_u32(data, offset)
            offset += 4
            items = []
            offset = _decode_many(data, offset, length, items)
            append(items)
            continue
        if tag == _T_DICT:
            (length,) = _unpack_u32(data, offset)
            offset += 4
            flat = []
            offset = _decode_many(data, offset, length + length, flat)
            pairs = iter(flat)
            append(dict(zip(pairs, pairs)))
            continue
        if tag == _T_BYTES:
            (length,) = _unpack_u32(data, offset)
            offset += 4
            end = offset + length
            append(data[offset:end])
            offset = end
            continue
        if tag == _T_BIGINT:
            sign = data[offset]
            offset += 1
            (length,) = _unpack_u32(data, offset)
            offset += 4
            end = offset + length
            magnitude = _from_bytes(data[offset:end], "big")
            append(-magnitude if sign else magnitude)
            offset = end
            continue
        raise SerializationError("unknown type tag 0x%02x" % tag)
    return offset


def _decode_value(data: bytes, offset: int) -> Tuple[Any, int]:
    out: list = []
    offset = _decode_many(data, offset, 1, out)
    return out[0], offset


def encode_values(values: Tuple[Any, ...]) -> bytes:
    out = bytearray()
    _encode_many(values, out)
    return bytes(out)


def encode_tuple(stream_tuple: StreamTuple) -> bytes:
    """Serialize a full tuple (envelope + values) to bytes."""
    flags = _FLAG_ANCHORED if stream_tuple.anchor is not None else 0
    if stream_tuple.trace_id is not None:
        flags |= _FLAG_TRACED
    out = bytearray()
    out += _PAD_ENVELOPE
    _ENVELOPE.pack_into(out, 0, stream_tuple.stream,
                        stream_tuple.source_worker, flags,
                        len(stream_tuple.values))
    if stream_tuple.anchor is not None:
        pos = len(out)
        out += _PAD_ANCHOR
        _ANCHOR.pack_into(out, pos, stream_tuple.anchor.root_id,
                          stream_tuple.anchor.edge_id)
    if stream_tuple.trace_id is not None:
        pos = len(out)
        out += _PAD_TRACE
        _TRACE.pack_into(out, pos, stream_tuple.trace_id)
    _encode_many(stream_tuple.values, out)
    return bytes(out)


def decode_tuple(data, source_component: str = "") -> StreamTuple:
    """Inverse of :func:`encode_tuple`; accepts any bytes-like buffer.

    Non-``bytes`` inputs (memoryview, bytearray) are flattened once up
    front so the hot loop runs native ``bytes`` slicing throughout."""
    if len(data) < _ENVELOPE.size:
        raise SerializationError("truncated tuple envelope")
    if type(data) is not bytes:
        data = bytes(data)
    stream, source_worker, flags, nvalues = _ENVELOPE.unpack_from(data, 0)
    offset = _ENVELOPE.size
    values = []
    try:
        anchor = None
        if flags & _FLAG_ANCHORED:
            root_id, edge_id = _ANCHOR.unpack_from(data, offset)
            anchor = Anchor(root_id, edge_id)
            offset += _ANCHOR.size
        trace_id = None
        if flags & _FLAG_TRACED:
            (trace_id,) = _TRACE.unpack_from(data, offset)
            offset += _TRACE.size
        offset = _decode_many(data, offset, nvalues, values)
    except (IndexError, struct.error):
        raise SerializationError("truncated value") from None
    if offset != len(data):
        raise SerializationError("%d trailing bytes after tuple"
                                 % (len(data) - offset))
    return StreamTuple(values=tuple(values), stream=stream,
                       source_component=source_component,
                       source_worker=source_worker, anchor=anchor,
                       trace_id=trace_id)


def peek_trace_id(data) -> Optional[int]:
    """Trace id carried by serialized tuple bytes, without full decoding.

    Tolerates truncation (fragment head chunks carry at least the fixed
    header: envelope 9 + anchor 16 + trace 8 = 33 bytes in the worst
    case, well under any MTU, but be defensive anyway)."""
    if len(data) < _ENVELOPE.size:
        return None
    _stream, _src, flags, _nvalues = _ENVELOPE.unpack_from(data, 0)
    if not flags & _FLAG_TRACED:
        return None
    offset = _ENVELOPE.size
    if flags & _FLAG_ANCHORED:
        offset += _ANCHOR.size
    if len(data) < offset + _TRACE.size:
        return None
    (trace_id,) = _TRACE.unpack_from(data, offset)
    return trace_id


# -- cost helpers ----------------------------------------------------------------


def serialize_cost(costs: CostModel, nbytes: int) -> float:
    return costs.serialize_per_tuple + nbytes * costs.serialize_per_byte


def deserialize_cost(costs: CostModel, nbytes: int) -> float:
    return costs.deserialize_per_tuple + nbytes * costs.deserialize_per_byte

"""Tuple serialization: a compact, self-describing binary codec.

Serialization is *the* cost the paper's broadcast optimization removes
(it cites 60–90 % of transfer time), so this reproduction serializes for
real: tuple values are encoded to actual bytes with a type-tagged format
(None, bool, int, float, str, bytes, list, dict) and decoded back. The
virtual-time cost of each encode/decode is derived from the resulting
byte count via the :class:`~repro.sim.costs.CostModel`.

The wire format is deliberately simple (length-prefixed, big-endian) — a
stand-in for Kryo/Java serialization in Storm — but the implementation
is the repo's hottest real (wall-clock) path, so it is tuned for CPython
(see DESIGN.md §5d for the measurements behind each choice):

* **encode** appends into one growing ``bytearray``: tag + fixed-width
  field pairs are reserved from preallocated zero-pad singletons and
  written in a single ``Struct.pack_into`` call (``!Bq``-style combined
  structs) — no per-value ``bytes([tag]) + packed`` temporaries, no
  final ``join`` pass, and ``Struct.pack`` is never called (locked by an
  allocation-regression test);
* **decode** walks one flat buffer with the dispatch chain ordered by
  observed tag frequency and the struct readers bound as default
  arguments; each str/bytes payload is materialized from exactly one
  slice of the input, with no intermediate temporaries. Truncation is
  detected by the buffer reads themselves rather than a per-value bounds
  check. (An all-``memoryview`` decoder was prototyped and benchmarked
  *slower*: CPython's memoryview slice objects cost more than the small
  copies they avoid — see §5d.)
* **both directions batch**: values are encoded/decoded in runs
  (``_encode_many``/``_decode_many``), so scalars cost zero Python
  function calls — the codec recurses only for nested containers.

The byte layout is unchanged — encode/decode are byte-for-byte
compatible with the pre-optimization codec, including the optional
anchor/trace trailing fields (locked by the golden-bytes tests).
"""

from __future__ import annotations

import struct
from typing import Any, Optional, Tuple

from ..sim.costs import CostModel
from .tuples import Anchor, StreamTuple

_T_NONE = 0x00
_T_TRUE = 0x01
_T_FALSE = 0x02
_T_INT = 0x03
_T_FLOAT = 0x04
_T_STR = 0x05
_T_BYTES = 0x06
_T_LIST = 0x07
_T_DICT = 0x08
_T_BIGINT = 0x09  # ints outside the signed-64 range (e.g. 64-bit ack ids)

_I64_MIN = -(2 ** 63)
_I64_MAX = 2 ** 63 - 1

_U32 = struct.Struct("!I")
_I64 = struct.Struct("!q")
_F64 = struct.Struct("!d")

#: Combined tag+field structs: one ``pack_into`` writes the tag byte and
#: the big-endian field together (network byte order has no padding, so
#: ``!Bq`` lays out identically to a tag byte followed by ``!q``).
_TAG_I64 = struct.Struct("!Bq")    # tag + i64
_TAG_F64 = struct.Struct("!Bd")    # tag + f64
_TAG_U32 = struct.Struct("!BI")    # tag + u32 (str/bytes/list/dict headers)
_BIGINT_HEAD = struct.Struct("!BBI")  # tag + sign + u32 length

# Tuple envelope:
#   stream(2) src_worker(4-signed) flags(1) nvalues(2) [anchor 16] [trace 8]
_ENVELOPE = struct.Struct("!HiBH")
_ANCHOR = struct.Struct("!QQ")
_TRACE = struct.Struct("!Q")
_FLAG_ANCHORED = 0x01
#: Set when the tuple was sampled by the tracer; an 8-byte trace id
#: follows the (optional) anchor. Unsampled tuples carry neither the
#: flag nor the bytes, so wire traffic is unchanged when tracing is off.
_FLAG_TRACED = 0x02
#: Set when the tuple carries a replication sequencing stamp: a 4-byte
#: epoch plus an 8-byte sequence number follow the (optional) anchor and
#: trace fields. Placed last so :func:`peek_trace_id` offsets are
#: unchanged; non-replicated tuples carry neither the flag nor the
#: bytes, so wire traffic is byte-identical when replication is off.
_FLAG_SEQUENCED = 0x04
_SEQ = struct.Struct("!IQ")

#: Preallocated zero padding, extended into the output buffer to
#: reserve room for a tag byte plus a fixed-width field, which is then
#: filled in place with ``pack_into`` — one shared singleton per field
#: shape instead of a fresh ``bytes`` temporary per value.
_PAD_TAG_U32 = bytes(_TAG_U32.size)
_PAD_TAG_I64 = bytes(_TAG_I64.size)
_PAD_BIGINT_HEAD = bytes(_BIGINT_HEAD.size)
_PAD_ENVELOPE = bytes(_ENVELOPE.size)
_PAD_ANCHOR = bytes(_ANCHOR.size)
_PAD_TRACE = bytes(_TRACE.size)
_PAD_SEQ = bytes(_SEQ.size)


class SerializationError(ValueError):
    """Raised when a value cannot be encoded or bytes cannot be decoded."""


#: Memoized envelope headers keyed by (stream, source_worker, flags,
#: nvalues). Real streams reuse a handful of envelope shapes, so the 9
#: header bytes are a dict hit instead of a pack_into; byte output is
#: unchanged. Bounded: cleared wholesale if an app somehow produces
#: thousands of distinct shapes.
_ENVELOPE_CACHE: dict = {}
_ENVELOPE_CACHE_MAX = 1024

#: Memoized str value records (tag + u32 length + utf-8 bytes). Workloads
#: re-send the same strings constantly (fixed payloads, word vocabularies),
#: and str objects cache their own hash, so the lookup is near-free.
#: Long strings are not cached to bound memory.
_STR_RECORD_CACHE: dict = {}
_STR_RECORD_CACHE_MAX = 4096
_STR_CACHE_LEN_LIMIT = 256


def _encode_many(values, out: bytearray,
                 _pack_i64=_TAG_I64.pack_into,
                 _pack_f64=_TAG_F64.pack_into,
                 _pack_u32=_TAG_U32.pack_into,
                 _pack_big=_BIGINT_HEAD.pack_into,
                 _len=len, _type=type, _isinstance=isinstance) -> None:
    """Encode a run of values; scalars cost zero Python function calls
    (the encoder recurses only for containers). Exact-type dispatch is
    ordered by observed frequency, with an ``isinstance`` fallback for
    subclasses so the accepted type set matches the original encoder."""
    for value in values:
        if value is None:
            out.append(_T_NONE)
            continue
        if value is True:
            out.append(_T_TRUE)
            continue
        if value is False:
            out.append(_T_FALSE)
            continue
        kind = _type(value)
        if kind is not int and kind is not str and kind is not float \
                and kind is not list and kind is not tuple \
                and kind is not dict and kind is not bytes \
                and kind is not bytearray:
            # Subclasses (IntEnum, namedtuple, …): widen to the base
            # type the original isinstance chain would have picked.
            if _isinstance(value, int):
                kind = int
            elif _isinstance(value, float):
                kind = float
            elif _isinstance(value, str):
                kind = str
            elif _isinstance(value, (bytes, bytearray)):
                kind = bytes
            elif _isinstance(value, (list, tuple)):
                kind = list
            elif _isinstance(value, dict):
                kind = dict
            else:
                raise SerializationError(
                    "cannot serialize %r of type %s"
                    % (value, type(value).__name__))
        if kind is int:
            if _I64_MIN <= value <= _I64_MAX:
                pos = _len(out)
                out += _PAD_TAG_I64
                _pack_i64(out, pos, _T_INT, value)
            else:
                magnitude = abs(value)
                body = magnitude.to_bytes((magnitude.bit_length() + 8) // 8,
                                          "big", signed=False)
                pos = _len(out)
                out += _PAD_BIGINT_HEAD
                _pack_big(out, pos, _T_BIGINT, 1 if value < 0 else 0,
                          _len(body))
                out += body
        elif kind is str:
            record = _STR_RECORD_CACHE.get(value)
            if record is not None:
                out += record
            elif _len(value) <= _STR_CACHE_LEN_LIMIT:
                data = value.encode("utf-8")
                record = bytearray()
                record += _PAD_TAG_U32
                _pack_u32(record, 0, _T_STR, _len(data))
                record += data
                record = bytes(record)
                if _len(_STR_RECORD_CACHE) >= _STR_RECORD_CACHE_MAX:
                    _STR_RECORD_CACHE.clear()
                _STR_RECORD_CACHE[value] = record
                out += record
            else:
                data = value.encode("utf-8")
                pos = _len(out)
                out += _PAD_TAG_U32
                _pack_u32(out, pos, _T_STR, _len(data))
                out += data
        elif kind is float:
            pos = _len(out)
            out += _PAD_TAG_I64
            _pack_f64(out, pos, _T_FLOAT, value)
        elif kind is list or kind is tuple:
            pos = _len(out)
            out += _PAD_TAG_U32
            _pack_u32(out, pos, _T_LIST, _len(value))
            _encode_many(value, out)
        elif kind is dict:
            pos = _len(out)
            out += _PAD_TAG_U32
            _pack_u32(out, pos, _T_DICT, _len(value))
            for key, item in value.items():
                _encode_many((key, item), out)
        else:  # bytes / bytearray
            pos = _len(out)
            out += _PAD_TAG_U32
            _pack_u32(out, pos, _T_BYTES, _len(value))
            out += value


def _encode_value(value: Any, out: bytearray) -> None:
    _encode_many((value,), out)


def _decode_many(data: bytes, offset: int, count: int, out,
                 _unpack_u32=_U32.unpack_from,
                 _unpack_i64=_I64.unpack_from,
                 _unpack_f64=_F64.unpack_from,
                 _from_bytes=int.from_bytes) -> int:
    """Decode ``count`` values from a flat ``bytes`` buffer, appending
    them to ``out``; returns the new offset.

    Scalars cost zero Python function calls (recursion only for
    containers) and the dispatch chain is ordered by observed tag
    frequency (str and int dominate real streams). There is no
    per-value bounds check: a truncated buffer surfaces as
    ``IndexError``/``struct.error`` from the reads themselves, which
    :func:`decode_tuple` converts."""
    append = out.append
    for _ in range(count):
        tag = data[offset]
        offset += 1
        if tag == _T_STR:
            (length,) = _unpack_u32(data, offset)
            offset += 4
            end = offset + length
            append(data[offset:end].decode("utf-8"))
            offset = end
            continue
        if tag == _T_INT:
            (value,) = _unpack_i64(data, offset)
            append(value)
            offset += 8
            continue
        if tag == _T_NONE:
            append(None)
            continue
        if tag == _T_TRUE:
            append(True)
            continue
        if tag == _T_FALSE:
            append(False)
            continue
        if tag == _T_FLOAT:
            (value,) = _unpack_f64(data, offset)
            append(value)
            offset += 8
            continue
        if tag == _T_LIST:
            (length,) = _unpack_u32(data, offset)
            offset += 4
            items = []
            offset = _decode_many(data, offset, length, items)
            append(items)
            continue
        if tag == _T_DICT:
            (length,) = _unpack_u32(data, offset)
            offset += 4
            flat = []
            offset = _decode_many(data, offset, length + length, flat)
            pairs = iter(flat)
            append(dict(zip(pairs, pairs)))
            continue
        if tag == _T_BYTES:
            (length,) = _unpack_u32(data, offset)
            offset += 4
            end = offset + length
            append(data[offset:end])
            offset = end
            continue
        if tag == _T_BIGINT:
            sign = data[offset]
            offset += 1
            (length,) = _unpack_u32(data, offset)
            offset += 4
            end = offset + length
            magnitude = _from_bytes(data[offset:end], "big")
            append(-magnitude if sign else magnitude)
            offset = end
            continue
        raise SerializationError("unknown type tag 0x%02x" % tag)
    return offset


def _decode_value(data: bytes, offset: int) -> Tuple[Any, int]:
    out: list = []
    offset = _decode_many(data, offset, 1, out)
    return out[0], offset


def encode_values(values: Tuple[Any, ...]) -> bytes:
    out = bytearray()
    _encode_many(values, out)
    return bytes(out)


def encode_tuple(stream_tuple: StreamTuple) -> bytes:
    """Serialize a full tuple (envelope + values) to bytes."""
    anchor = stream_tuple.anchor
    trace_id = stream_tuple.trace_id
    seq = stream_tuple.seq
    values = stream_tuple.values
    flags = _FLAG_ANCHORED if anchor is not None else 0
    if trace_id is not None:
        flags |= _FLAG_TRACED
    if seq is not None:
        flags |= _FLAG_SEQUENCED
    key = (stream_tuple.stream, stream_tuple.source_worker, flags,
           len(values))
    head = _ENVELOPE_CACHE.get(key)
    if head is None:
        head = bytearray(_PAD_ENVELOPE)
        _ENVELOPE.pack_into(head, 0, key[0], key[1], flags, key[3])
        head = bytes(head)
        if len(_ENVELOPE_CACHE) >= _ENVELOPE_CACHE_MAX:
            _ENVELOPE_CACHE.clear()
        _ENVELOPE_CACHE[key] = head
    out = bytearray(head)
    if anchor is not None:
        pos = len(out)
        out += _PAD_ANCHOR
        _ANCHOR.pack_into(out, pos, anchor.root_id, anchor.edge_id)
    if trace_id is not None:
        pos = len(out)
        out += _PAD_TRACE
        _TRACE.pack_into(out, pos, trace_id)
    if seq is not None:
        pos = len(out)
        out += _PAD_SEQ
        _SEQ.pack_into(out, pos, seq[0], seq[1])
    _encode_many(values, out)
    return bytes(out)


#: Exact value types the transport's same-process fast lane may share
#: by reference instead of re-decoding: immutable scalars only
#: (``bytearray`` is scalar-encodable but mutable, so it is excluded).
SCALAR_TYPES = frozenset((str, int, float, bytes, bool, type(None)))


def encode_tuple_scalar(
    stream_tuple: StreamTuple,
    _pack_i64=_TAG_I64.pack_into,
    _pack_f64=_TAG_F64.pack_into,
    _pack_u32=_TAG_U32.pack_into,
    _pack_big=_BIGINT_HEAD.pack_into,
    _len=len, _type=type,
    _memo=[None, None, None, b""],
) -> Tuple[bytes, bool]:
    """Serialize and classify in one pass: ``(encoded, all_scalar)``.

    ``encoded`` is byte-for-byte identical to :func:`encode_tuple`
    (locked by the golden-bytes tests); ``all_scalar`` reports whether
    every value's exact type is in :data:`SCALAR_TYPES` — the
    transport's fast-lane eligibility test. The hot send paths need
    both answers for every tuple, and fusing them saves a second pass
    over the values plus two call frames (``encode_tuple`` →
    ``_encode_many``) per tuple. The body is ``_encode_many``
    specialized to scalar values in the same pad-and-``pack_into``
    style; anchored/traced tuples and container (or subclass) values
    fall back to the generic encoder.
    """
    values = stream_tuple.values
    if stream_tuple.anchor is not None or stream_tuple.trace_id is not None \
            or stream_tuple.seq is not None:
        encoded = encode_tuple(stream_tuple)
        for value in values:
            if _type(value) not in SCALAR_TYPES:
                return encoded, False
        return encoded, True
    stream = stream_tuple.stream
    src = stream_tuple.source_worker
    nvalues = _len(values)
    # Single-entry memo in front of the envelope dict: consecutive
    # tuples almost always share one envelope shape, so the common case
    # is two int compares instead of a key-tuple build + dict hash.
    # (Content-addressed, so the dict's overflow clear cannot stale it.)
    if stream == _memo[0] and src == _memo[1] and nvalues == _memo[2]:
        head = _memo[3]
    else:
        key = (stream, src, 0, nvalues)
        head = _ENVELOPE_CACHE.get(key)
        if head is None:
            head = bytearray(_PAD_ENVELOPE)
            _ENVELOPE.pack_into(head, 0, stream, src, 0, nvalues)
            head = bytes(head)
            if _len(_ENVELOPE_CACHE) >= _ENVELOPE_CACHE_MAX:
                _ENVELOPE_CACHE.clear()
            _ENVELOPE_CACHE[key] = head
        _memo[0] = stream
        _memo[1] = src
        _memo[2] = nvalues
        _memo[3] = head
    out = bytearray(head)
    for value in values:
        kind = _type(value)
        if kind is str:
            record = _STR_RECORD_CACHE.get(value)
            if record is not None:
                out += record
            elif _len(value) <= _STR_CACHE_LEN_LIMIT:
                data = value.encode("utf-8")
                record = bytearray()
                record += _PAD_TAG_U32
                _pack_u32(record, 0, _T_STR, _len(data))
                record += data
                record = bytes(record)
                if _len(_STR_RECORD_CACHE) >= _STR_RECORD_CACHE_MAX:
                    _STR_RECORD_CACHE.clear()
                _STR_RECORD_CACHE[value] = record
                out += record
            else:
                data = value.encode("utf-8")
                pos = _len(out)
                out += _PAD_TAG_U32
                _pack_u32(out, pos, _T_STR, _len(data))
                out += data
        elif kind is int:
            if _I64_MIN <= value <= _I64_MAX:
                pos = _len(out)
                out += _PAD_TAG_I64
                _pack_i64(out, pos, _T_INT, value)
            else:
                magnitude = abs(value)
                body = magnitude.to_bytes((magnitude.bit_length() + 8) // 8,
                                          "big", signed=False)
                pos = _len(out)
                out += _PAD_BIGINT_HEAD
                _pack_big(out, pos, _T_BIGINT, 1 if value < 0 else 0,
                          _len(body))
                out += body
        elif kind is float:
            pos = _len(out)
            out += _PAD_TAG_I64
            _pack_f64(out, pos, _T_FLOAT, value)
        elif value is None:
            out.append(_T_NONE)
        elif kind is bool:
            out.append(_T_TRUE if value else _T_FALSE)
        elif kind is bytes:
            pos = _len(out)
            out += _PAD_TAG_U32
            _pack_u32(out, pos, _T_BYTES, _len(value))
            out += value
        else:
            # Container or subclass value: not fast-lane eligible; let
            # the generic encoder redo the tuple (rare path).
            return encode_tuple(stream_tuple), False
    return bytes(out), True


def decode_tuple(data, source_component: str = "") -> StreamTuple:
    """Inverse of :func:`encode_tuple`; accepts any bytes-like buffer.

    Non-``bytes`` inputs (memoryview, bytearray) are flattened once up
    front so the hot loop runs native ``bytes`` slicing throughout."""
    if len(data) < _ENVELOPE.size:
        raise SerializationError("truncated tuple envelope")
    if type(data) is not bytes:
        data = bytes(data)
    stream, source_worker, flags, nvalues = _ENVELOPE.unpack_from(data, 0)
    offset = _ENVELOPE.size
    values = []
    try:
        anchor = None
        if flags & _FLAG_ANCHORED:
            root_id, edge_id = _ANCHOR.unpack_from(data, offset)
            anchor = Anchor(root_id, edge_id)
            offset += _ANCHOR.size
        trace_id = None
        if flags & _FLAG_TRACED:
            (trace_id,) = _TRACE.unpack_from(data, offset)
            offset += _TRACE.size
        seq = None
        if flags & _FLAG_SEQUENCED:
            seq = _SEQ.unpack_from(data, offset)
            offset += _SEQ.size
        offset = _decode_many(data, offset, nvalues, values)
    except (IndexError, struct.error):
        raise SerializationError("truncated value") from None
    if offset != len(data):
        raise SerializationError("%d trailing bytes after tuple"
                                 % (len(data) - offset))
    return StreamTuple(values=tuple(values), stream=stream,
                       source_component=source_component,
                       source_worker=source_worker, anchor=anchor,
                       trace_id=trace_id, seq=seq)


def peek_trace_id(data) -> Optional[int]:
    """Trace id carried by serialized tuple bytes, without full decoding.

    Tolerates truncation (fragment head chunks carry at least the fixed
    header: envelope 9 + anchor 16 + trace 8 = 33 bytes in the worst
    case, well under any MTU, but be defensive anyway)."""
    if len(data) < _ENVELOPE.size:
        return None
    _stream, _src, flags, _nvalues = _ENVELOPE.unpack_from(data, 0)
    if not flags & _FLAG_TRACED:
        return None
    offset = _ENVELOPE.size
    if flags & _FLAG_ANCHORED:
        offset += _ANCHOR.size
    if len(data) < offset + _TRACE.size:
        return None
    (trace_id,) = _TRACE.unpack_from(data, offset)
    return trace_id


# -- cost helpers ----------------------------------------------------------------


def serialize_cost(costs: CostModel, nbytes: int) -> float:
    return costs.serialize_per_tuple + nbytes * costs.serialize_per_byte


def deserialize_cost(costs: CostModel, nbytes: int) -> float:
    return costs.deserialize_per_tuple + nbytes * costs.deserialize_per_byte

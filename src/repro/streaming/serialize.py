"""Tuple serialization: a compact, self-describing binary codec.

Serialization is *the* cost the paper's broadcast optimization removes
(it cites 60–90 % of transfer time), so this reproduction serializes for
real: tuple values are encoded to actual bytes with a type-tagged format
(None, bool, int, float, str, bytes, list, dict) and decoded back. The
virtual-time cost of each encode/decode is derived from the resulting
byte count via the :class:`~repro.sim.costs.CostModel`.

The codec is deliberately simple (length-prefixed, big-endian) — it is a
stand-in for Kryo/Java serialization in Storm, not a performance project.
"""

from __future__ import annotations

import struct
from typing import Any, List, Optional, Tuple

from ..sim.costs import CostModel
from .tuples import Anchor, StreamTuple

_T_NONE = 0x00
_T_TRUE = 0x01
_T_FALSE = 0x02
_T_INT = 0x03
_T_FLOAT = 0x04
_T_STR = 0x05
_T_BYTES = 0x06
_T_LIST = 0x07
_T_DICT = 0x08
_T_BIGINT = 0x09  # ints outside the signed-64 range (e.g. 64-bit ack ids)

_I64_MIN = -(2 ** 63)
_I64_MAX = 2 ** 63 - 1

_U32 = struct.Struct("!I")
_I64 = struct.Struct("!q")
_F64 = struct.Struct("!d")

# Tuple envelope:
#   stream(2) src_worker(4-signed) flags(1) nvalues(2) [anchor 16] [trace 8]
_ENVELOPE = struct.Struct("!HiBH")
_ANCHOR = struct.Struct("!QQ")
_TRACE = struct.Struct("!Q")
_FLAG_ANCHORED = 0x01
#: Set when the tuple was sampled by the tracer; an 8-byte trace id
#: follows the (optional) anchor. Unsampled tuples carry neither the
#: flag nor the bytes, so wire traffic is unchanged when tracing is off.
_FLAG_TRACED = 0x02


class SerializationError(ValueError):
    """Raised when a value cannot be encoded or bytes cannot be decoded."""


def _encode_value(value: Any, out: List[bytes]) -> None:
    if value is None:
        out.append(bytes([_T_NONE]))
    elif value is True:
        out.append(bytes([_T_TRUE]))
    elif value is False:
        out.append(bytes([_T_FALSE]))
    elif isinstance(value, int):
        if _I64_MIN <= value <= _I64_MAX:
            out.append(bytes([_T_INT]) + _I64.pack(value))
        else:
            magnitude = abs(value)
            body = magnitude.to_bytes((magnitude.bit_length() + 8) // 8,
                                      "big", signed=False)
            sign = 1 if value < 0 else 0
            out.append(bytes([_T_BIGINT, sign])
                       + _U32.pack(len(body)) + body)
    elif isinstance(value, float):
        out.append(bytes([_T_FLOAT]) + _F64.pack(value))
    elif isinstance(value, str):
        data = value.encode("utf-8")
        out.append(bytes([_T_STR]) + _U32.pack(len(data)) + data)
    elif isinstance(value, (bytes, bytearray)):
        out.append(bytes([_T_BYTES]) + _U32.pack(len(value)) + bytes(value))
    elif isinstance(value, (list, tuple)):
        out.append(bytes([_T_LIST]) + _U32.pack(len(value)))
        for item in value:
            _encode_value(item, out)
    elif isinstance(value, dict):
        out.append(bytes([_T_DICT]) + _U32.pack(len(value)))
        for key, item in value.items():
            _encode_value(key, out)
            _encode_value(item, out)
    else:
        raise SerializationError("cannot serialize %r of type %s"
                                 % (value, type(value).__name__))


def _decode_value(data: bytes, offset: int) -> Tuple[Any, int]:
    if offset >= len(data):
        raise SerializationError("truncated value")
    tag = data[offset]
    offset += 1
    if tag == _T_NONE:
        return None, offset
    if tag == _T_TRUE:
        return True, offset
    if tag == _T_FALSE:
        return False, offset
    if tag == _T_INT:
        (value,) = _I64.unpack_from(data, offset)
        return value, offset + 8
    if tag == _T_BIGINT:
        sign = data[offset]
        offset += 1
        (length,) = _U32.unpack_from(data, offset)
        offset += 4
        magnitude = int.from_bytes(data[offset:offset + length], "big")
        return (-magnitude if sign else magnitude), offset + length
    if tag == _T_FLOAT:
        (value,) = _F64.unpack_from(data, offset)
        return value, offset + 8
    if tag == _T_STR:
        (length,) = _U32.unpack_from(data, offset)
        offset += 4
        return data[offset:offset + length].decode("utf-8"), offset + length
    if tag == _T_BYTES:
        (length,) = _U32.unpack_from(data, offset)
        offset += 4
        return bytes(data[offset:offset + length]), offset + length
    if tag == _T_LIST:
        (length,) = _U32.unpack_from(data, offset)
        offset += 4
        items = []
        for _ in range(length):
            item, offset = _decode_value(data, offset)
            items.append(item)
        return items, offset
    if tag == _T_DICT:
        (length,) = _U32.unpack_from(data, offset)
        offset += 4
        mapping = {}
        for _ in range(length):
            key, offset = _decode_value(data, offset)
            value, offset = _decode_value(data, offset)
            mapping[key] = value
        return mapping, offset
    raise SerializationError("unknown type tag 0x%02x" % tag)


def encode_values(values: Tuple[Any, ...]) -> bytes:
    out: List[bytes] = []
    for value in values:
        _encode_value(value, out)
    return b"".join(out)


def encode_tuple(stream_tuple: StreamTuple) -> bytes:
    """Serialize a full tuple (envelope + values) to bytes."""
    flags = _FLAG_ANCHORED if stream_tuple.anchor is not None else 0
    if stream_tuple.trace_id is not None:
        flags |= _FLAG_TRACED
    head = _ENVELOPE.pack(stream_tuple.stream, stream_tuple.source_worker,
                          flags, len(stream_tuple.values))
    body: List[bytes] = [head]
    if stream_tuple.anchor is not None:
        body.append(_ANCHOR.pack(stream_tuple.anchor.root_id,
                                 stream_tuple.anchor.edge_id))
    if stream_tuple.trace_id is not None:
        body.append(_TRACE.pack(stream_tuple.trace_id))
    body.append(encode_values(stream_tuple.values))
    return b"".join(body)


def decode_tuple(data: bytes, source_component: str = "") -> StreamTuple:
    """Inverse of :func:`encode_tuple`."""
    if len(data) < _ENVELOPE.size:
        raise SerializationError("truncated tuple envelope")
    stream, source_worker, flags, nvalues = _ENVELOPE.unpack_from(data, 0)
    offset = _ENVELOPE.size
    anchor = None
    if flags & _FLAG_ANCHORED:
        root_id, edge_id = _ANCHOR.unpack_from(data, offset)
        anchor = Anchor(root_id, edge_id)
        offset += _ANCHOR.size
    trace_id = None
    if flags & _FLAG_TRACED:
        (trace_id,) = _TRACE.unpack_from(data, offset)
        offset += _TRACE.size
    values = []
    for _ in range(nvalues):
        value, offset = _decode_value(data, offset)
        values.append(value)
    if offset != len(data):
        raise SerializationError("%d trailing bytes after tuple"
                                 % (len(data) - offset))
    return StreamTuple(values=tuple(values), stream=stream,
                       source_component=source_component,
                       source_worker=source_worker, anchor=anchor,
                       trace_id=trace_id)


def peek_trace_id(data: bytes) -> Optional[int]:
    """Trace id carried by serialized tuple bytes, without full decoding.

    Tolerates truncation (fragment head chunks carry at least the fixed
    header: envelope 9 + anchor 16 + trace 8 = 33 bytes in the worst
    case, well under any MTU, but be defensive anyway)."""
    if len(data) < _ENVELOPE.size:
        return None
    _stream, _src, flags, _nvalues = _ENVELOPE.unpack_from(data, 0)
    if not flags & _FLAG_TRACED:
        return None
    offset = _ENVELOPE.size
    if flags & _FLAG_ANCHORED:
        offset += _ANCHOR.size
    if len(data) < offset + _TRACE.size:
        return None
    (trace_id,) = _TRACE.unpack_from(data, offset)
    return trace_id


# -- cost helpers ----------------------------------------------------------------


def serialize_cost(costs: CostModel, nbytes: int) -> float:
    return costs.serialize_per_tuple + nbytes * costs.serialize_per_byte


def deserialize_cost(costs: CostModel, nbytes: int) -> float:
    return costs.deserialize_per_tuple + nbytes * costs.deserialize_per_byte

"""Windowed aggregation helpers for stateful workers.

The paper's stateful workers follow the Listing 2 pattern: an in-memory
cache keyed by (key, window), flushed by signal tuples or watermark
progress (the Yahoo aggregation stage keeps a 10-second tuple window).
This module factors that pattern into reusable primitives:

* :class:`TumblingWindow` — fixed, non-overlapping windows;
* :class:`SlidingWindow` — overlapping windows with a slide interval;
* :class:`WindowedCounter` — per-key counts inside a window assigner,
  closing windows as the event-time watermark advances and on signals.

All state is plain in-memory dictionaries, matching Table 4's stateful
worker profile (in-memory cache + key-based routing + signal flush).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple


@dataclass(frozen=True)
class WindowSpan:
    """One window instance: [start, end)."""

    start: float
    end: float

    def contains(self, timestamp: float) -> bool:
        return self.start <= timestamp < self.end


class WindowAssigner:
    """Maps an event timestamp to the window(s) it belongs to."""

    def assign(self, timestamp: float) -> List[WindowSpan]:
        raise NotImplementedError

    def is_closed(self, span: WindowSpan, watermark: float) -> bool:
        """A window is closed once the watermark passes its end."""
        return watermark >= span.end


class TumblingWindow(WindowAssigner):
    """Fixed-size, non-overlapping windows (the Yahoo 10 s window)."""

    def __init__(self, size: float):
        if size <= 0:
            raise ValueError("window size must be positive")
        self.size = size

    def assign(self, timestamp: float) -> List[WindowSpan]:
        start = (timestamp // self.size) * self.size
        return [WindowSpan(start, start + self.size)]


class SlidingWindow(WindowAssigner):
    """Overlapping windows of ``size`` advancing every ``slide``."""

    def __init__(self, size: float, slide: float):
        if size <= 0 or slide <= 0:
            raise ValueError("size and slide must be positive")
        if slide > size:
            raise ValueError("slide must not exceed size")
        self.size = size
        self.slide = slide

    def assign(self, timestamp: float) -> List[WindowSpan]:
        spans = []
        first = ((timestamp - self.size) // self.slide + 1) * self.slide
        start = max(0.0, first)
        # Walk every window whose span covers the timestamp.
        while start <= timestamp:
            if timestamp < start + self.size:
                spans.append(WindowSpan(start, start + self.size))
            start += self.slide
        return spans


class WindowedCounter:
    """Per-key counting under a window assigner with watermark closing.

    ``add`` records one occurrence; whenever the watermark (the largest
    event time seen) passes a window's end, the window is *closed* and
    handed to ``on_close(key, span, count)``. ``flush`` closes everything
    immediately (the signal-tuple path).
    """

    def __init__(self, assigner: WindowAssigner,
                 on_close: Optional[Callable[[Any, WindowSpan, int], None]] = None):
        self.assigner = assigner
        self.on_close = on_close
        self.cells: Dict[Tuple[Any, WindowSpan], int] = {}
        self.watermark = 0.0
        self.closed_windows = 0

    def __len__(self) -> int:
        return len(self.cells)

    def add(self, key: Any, timestamp: float, amount: int = 1) -> None:
        for span in self.assigner.assign(timestamp):
            cell = (key, span)
            self.cells[cell] = self.cells.get(cell, 0) + amount
        if timestamp > self.watermark:
            self.watermark = timestamp
            self._close_ready()

    def value(self, key: Any, timestamp: float) -> int:
        """Current count of ``key`` in the window containing ``timestamp``."""
        total = 0
        for span in self.assigner.assign(timestamp):
            total += self.cells.get((key, span), 0)
        return total

    def _close_ready(self) -> None:
        ready = [cell for cell in self.cells
                 if self.assigner.is_closed(cell[1], self.watermark)]
        for cell in sorted(ready, key=lambda c: (c[1].start, repr(c[0]))):
            count = self.cells.pop(cell)
            self.closed_windows += 1
            if self.on_close is not None:
                self.on_close(cell[0], cell[1], count)

    def flush(self) -> List[Tuple[Any, WindowSpan, int]]:
        """Close every open window now (signal-tuple semantics)."""
        out = []
        for cell in sorted(self.cells, key=lambda c: (c[1].start, repr(c[0]))):
            count = self.cells.pop(cell)
            self.closed_windows += 1
            out.append((cell[0], cell[1], count))
            if self.on_close is not None:
                self.on_close(cell[0], cell[1], count)
        return out

"""The worker executor: framework layer + application computation layer.

One :class:`WorkerExecutor` drives one deployed worker (Fig. 4). It

* pulls :class:`~repro.streaming.transport.Delivery` batches off the
  worker's input store, paying the receive-side virtual-time cost,
* classifies tuples (data / signal / ack / control — the *tuple
  classifier* of Fig. 4) and runs the user component on data tuples,
* routes emissions with the per-edge :class:`~repro.streaming.grouping.Router`
  state and hands them to the transport, paying the send-side cost,
* implements guaranteed processing (Storm's XOR ack scheme) when the
  topology enables acking,
* reports worker statistics (queue level, processed/emitted counts) —
  the application-layer metrics the auto-scaler consumes.

Control tuples (Table 2) are dispatched to a pluggable handler installed
by the Typhoon runtime; the Storm baseline leaves it unset, which is
precisely the flexibility gap the paper highlights.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..sim.costs import CostModel
from ..sim.engine import Engine, Event, Interrupt, Process
from ..sim.metrics import MetricsRegistry, RateMeter
from ..sim.queues import Store
from ..sim.trace import H_CONTROL, H_QUEUE, Tracer
from .checkpoint import CHECKPOINT_SERVICE, CheckpointStore
from .grouping import Router
from .physical import WorkerAssignment
from .replay import R_EXHAUSTED, REPLAY_SERVICE, ReplayBuffer
from .replication import (
    REORDER_LIMIT,
    REPAIR_BUDGET,
    REPLICATION_SERVICE,
    REPLICATION_TICK,
)
from .topology import (
    BOLT,
    GLOBAL,
    SHUFFLE,
    SPOUT,
    ComponentContext,
    EmitterApi,
    LogicalNode,
    TopologyConfig,
)
from .transport import Delivery, Transport, delivery_bytes
from .tuples import (
    ACK_STREAM,
    CONTROL_STREAM,
    DEFAULT_STREAM,
    SIGNAL_STREAM,
    Anchor,
    StreamTuple,
)

ACK_INIT = "init"
ACK_ACK = "ack"
ACK_COMPLETE = "complete"
ACK_FAIL = "fail"


class WorkerCrashed(RuntimeError):
    """Raised internally when the user component throws."""


class OutOfMemoryError(WorkerCrashed):
    """Worker exceeded its memory budget (OutOfMemoryError in the paper)."""


@dataclass
class WorkerStats:
    """Application-layer statistics (METRIC_RESP payload, Table 2)."""

    emitted: int = 0
    processed: int = 0
    acked: int = 0
    failed: int = 0
    crashes: int = 0
    control_tuples: int = 0
    signals: int = 0

    def snapshot(self, queue_depth: int, queue_bytes: int) -> Dict[str, int]:
        return {
            "emitted": self.emitted,
            "processed": self.processed,
            "acked": self.acked,
            "failed": self.failed,
            "queue_depth": queue_depth,
            "queue_bytes": queue_bytes,
        }


@dataclass
class _PendingRoot:
    message_id: Any
    emit_time: float


class _Collector(EmitterApi):
    """Buffers emissions from one component call; the executor then
    routes, anchors and dispatches them with proper cost accounting.

    A ``__slots__`` class: every attribute below is touched inside
    :meth:`emit`, which runs once per tuple produced anywhere in the
    system, and slot loads are measurably cheaper than dict lookups
    at that rate."""

    __slots__ = ("_executor", "_component_name", "_worker_id", "_acking",
                 "buffered", "current_input", "child_xor", "extra_cost",
                 "fast_pending", "fast_stream")

    def __init__(self, executor: "WorkerExecutor"):
        self._executor = executor
        # Stable executor identity, cached flat: emit() runs once per
        # tuple produced anywhere in the system, and these never change
        # after the executor's __init__ (which creates this collector
        # last).
        self._component_name = executor.component_name
        self._worker_id = executor.worker_id
        self._acking = executor.acking
        self.buffered: List[Tuple[StreamTuple, Any]] = []
        self.current_input: Optional[StreamTuple] = None
        self.child_xor: int = 0
        self.extra_cost: float = 0.0
        #: Fast-sink mode, installed only by the spout batch loop while
        #: its deferred single-hop dispatch is active: emissions on
        #: exactly ``fast_stream`` (non-acking, non-direct, while no
        #: slower emission is already buffered this call) are appended
        #: straight to this list — the loop dispatches them in one
        #: batched send. ``None`` means normal buffering.
        self.fast_pending: Optional[List[StreamTuple]] = None
        self.fast_stream: int = DEFAULT_STREAM

    def charge(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("cannot charge negative time")
        self.extra_cost += seconds

    def emit(self, values: Sequence[Any], stream: int = DEFAULT_STREAM,
             anchor: Optional[StreamTuple] = None,
             message_id: Any = None) -> None:
        # Built field-by-field via __new__: emit() runs once per tuple
        # produced anywhere in the system, and skipping the __init__
        # call frame is measurable at the 1M tuples/sec scale.
        out = StreamTuple.__new__(StreamTuple)
        # Components overwhelmingly emit tuples already; the type check
        # is cheaper than the (identity) tuple() call.
        out.values = values if type(values) is tuple else tuple(values)
        out.stream = stream
        out.source_component = self._component_name
        out.source_worker = self._worker_id
        out.anchor = None
        out.trace_id = None
        out.seq = None
        if self._acking:
            executor = self._executor
            if executor.is_spout and message_id is not None:
                out.anchor = executor._register_root(message_id)
                if executor.replay is not None:
                    executor.replay.register_root(
                        out.anchor.root_id, message_id, out.values, stream)
            else:
                src = anchor if anchor is not None else self.current_input
                if src is not None and src.anchor is not None:
                    edge_id = executor._new_edge_id()
                    out.anchor = Anchor(src.anchor.root_id, edge_id)
                    self.child_xor ^= edge_id
        else:
            fast = self.fast_pending
            if fast is not None and stream == self.fast_stream \
                    and not self.buffered:
                # The ``not buffered`` guard keeps the order invariant
                # the spout loop relies on: within one component call,
                # every fast-sink tuple precedes every buffered one.
                fast.append(out)
                return
        self.buffered.append((out, None))

    def emit_many(self, values_seq: Sequence[Sequence[Any]],
                  stream: int = DEFAULT_STREAM) -> None:
        # Batched lane for the fast-sink case: one pass with every
        # per-call check hoisted, building the same tuples in the same
        # order emit() would. Anything else falls back to the exact
        # per-item loop of the base contract.
        fast = self.fast_pending
        if (fast is not None and stream == self.fast_stream
                and not self.buffered and not self._acking):
            new = StreamTuple.__new__
            cls = StreamTuple
            name = self._component_name
            worker = self._worker_id
            append = fast.append
            _type = type
            _tuple = tuple
            for values in values_seq:
                out = new(cls)
                out.values = values if _type(values) is _tuple \
                    else _tuple(values)
                out.stream = stream
                out.source_component = name
                out.source_worker = worker
                out.anchor = None
                out.trace_id = None
                out.seq = None
                append(out)
            return
        emit = self.emit
        for values in values_seq:
            emit(values, stream)

    def emit_direct(self, worker_id: int, values: Sequence[Any],
                    stream: int = DEFAULT_STREAM) -> None:
        """Send straight to one worker id, bypassing edge routing (used by
        the acker to notify the originating spout)."""
        out = StreamTuple(
            values=tuple(values),
            stream=stream,
            source_component=self._executor.component_name,
            source_worker=self._executor.worker_id,
        )
        self.buffered.append((out, worker_id))

    def ack(self, stream_tuple: StreamTuple) -> None:
        # Handled automatically after execute(); kept for API parity.
        pass

    def fail(self, stream_tuple: StreamTuple) -> None:
        # Explicit FAIL: the acker drops the ledger and notifies the
        # originating spout immediately instead of waiting for the root
        # to time out (the old scheme XORed a poison value into the
        # ledger so the root could only fail by timeout).
        if stream_tuple.anchor is not None:
            self._executor._send_ack_message(
                ACK_FAIL, stream_tuple.anchor.root_id, 0
            )

    def take(self) -> List[Tuple[StreamTuple, Any]]:
        out, self.buffered = self.buffered, []
        return out


class _RouterMap(dict):
    """The executor's ``routers`` dict with change tracking.

    :meth:`WorkerExecutor._dispatch_emissions` keeps a per-stream index
    over this dict; any key add/remove/replace bumps ``version`` so the
    index is rebuilt lazily on the next dispatch. In-place
    :meth:`Router.update` calls need no bump — the index holds router
    *objects*, and dispatch reads their grouping per tuple.
    """

    __slots__ = ("version",)

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.version = 0

    def __setitem__(self, key, value):
        super().__setitem__(key, value)
        self.version += 1

    def __delitem__(self, key):
        super().__delitem__(key)
        self.version += 1

    def pop(self, *args):
        self.version += 1
        return super().pop(*args)

    def popitem(self):
        self.version += 1
        return super().popitem()

    def clear(self):
        self.version += 1
        super().clear()

    def update(self, *args, **kwargs):
        super().update(*args, **kwargs)
        self.version += 1

    def setdefault(self, key, default=None):
        self.version += 1
        return super().setdefault(key, default)


class WorkerExecutor:
    """Runs one worker's processing loops on the simulation engine."""

    def __init__(
        self,
        engine: Engine,
        costs: CostModel,
        assignment: WorkerAssignment,
        node: LogicalNode,
        config: TopologyConfig,
        transport: Transport,
        routers: Dict[Tuple[str, int], Router],
        metrics: MetricsRegistry,
        rng,
        topology_id: str,
        ackers: Sequence[int] = (),
        services: Optional[Dict[str, Any]] = None,
        control_handler: Optional[Callable[["WorkerExecutor", StreamTuple], float]] = None,
        on_crash: Optional[Callable[["WorkerExecutor", BaseException], None]] = None,
        emit_batch: Optional[int] = None,
        tracer: Optional[Tracer] = None,
    ):
        self.engine = engine
        self.costs = costs
        self.assignment = assignment
        self.node = node
        self.config = config
        self.transport = transport
        self.routers = _RouterMap(routers)
        self._stream_index: Dict[int, List[Tuple[Tuple[str, int], Router]]] = {}
        self._stream_index_version = -1
        self.metrics = metrics
        self.rng = rng
        self.topology_id = topology_id
        self.ackers = list(ackers)
        self.services = services or {}
        self.control_handler = control_handler
        self.on_crash = on_crash
        self.tracer = tracer

        self.worker_id = assignment.worker_id
        self.component_name = assignment.component
        self.is_spout = node.kind == SPOUT
        self.acking = config.acking and bool(self.ackers)
        self.alive = False
        self.active = True            # ACTIVATE / DEACTIVATE (Table 2)
        self.input_rate_limit: Optional[float] = config.max_spout_rate
        self._emit_batch = emit_batch or max(1, config.batch_size)
        # In-flight root cap: node-level setting wins over the topology
        # default (backpressure for the replay path).
        self.max_pending: Optional[int] = (
            node.max_pending if node.max_pending is not None
            else config.max_pending
        )

        self.input_store = Store(engine, sizer=delivery_bytes)
        self.stats = WorkerStats()
        self.collector = _Collector(self)
        self.component = node.factory()
        #: Optional batch component hooks (see :class:`~..topology.Spout`
        #: / :class:`~..topology.Bolt`), resolved once — the component
        #: object never changes over the executor's lifetime.
        self._execute_batch = getattr(self.component, "execute_batch", None)
        self._next_tuple_batch = getattr(self.component, "next_tuple_batch",
                                         None)
        self.pending_roots: Dict[int, _PendingRoot] = {}
        #: Framework-level replay buffer (attached in ``start`` when the
        #: topology enables it); None keeps the legacy fail-and-forget path.
        self.replay: Optional[ReplayBuffer] = None
        #: Checkpoint store (attached in ``start`` for stateful nodes
        #: when the topology enables ``checkpoint_interval``).
        self._checkpoints: Optional[CheckpointStore] = None
        self._deferred_acks: List[Tuple[int, int]] = []
        #: Sequence numbers of reliable control tuples already applied
        #: (idempotent re-application under controller retries).
        self.applied_control_seqs: set = set()
        #: Active replication (attached in ``start``): the group this
        #: worker is a replica of, and the group whose outputs it must
        #: dedup. Both None on the default path — the two ``is not
        #: None`` tests in _process_delivery are the entire overhead.
        self._rep_group = None
        self._rep_dedup = None
        self._rep_next = 0            # next input seq to apply
        self._rep_out_seq = 0         # outputs produced so far
        self._rep_pending: Dict[int, StreamTuple] = {}  # reorder buffer

        base = "%s.%s.%d" % (topology_id, self.component_name, self.worker_id)
        self.processed_meter: RateMeter = metrics.meter(base + ".processed")
        self.emitted_meter: RateMeter = metrics.meter(base + ".emitted")
        self.latency_dist = metrics.distribution(
            "%s.%s.latency" % (topology_id, self.component_name)
        )

        # Services (e.g. Redis/Kafka clients) that bill virtual-time costs
        # for calls made synchronously inside component code.
        self._billed_services = [
            service for service in self.services.values()
            if hasattr(service, "drain_cost")
        ]
        self._main: Optional[Process] = None
        self._aux: List[Process] = []
        self._pending_get: Optional[Event] = None
        self._draining = False
        self._rate_anchor = 0.0
        self._emitted_since_anchor = 0

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        if self.alive:
            raise RuntimeError("worker %d already started" % self.worker_id)
        self.alive = True
        # Rate-limit budget accrues from start, not from t=0.
        self._rate_anchor = self.engine.now
        self._emitted_since_anchor = 0
        context = ComponentContext(
            topology_id=self.topology_id,
            component=self.component_name,
            worker_id=self.worker_id,
            task_index=self.assignment.task_index,
            parallelism=self.node.parallelism,
            rng=self.rng,
            services=self.services,
        )
        self.component.open(context)
        if self.acking and self.is_spout and self.config.replay_enabled:
            service = self.services.get(REPLAY_SERVICE)
            if service is not None:
                self.replay = service.attach(self.worker_id, self.config)
                # Messages in flight through a dead predecessor of this
                # worker id are immediately due for replay.
                self.replay.reschedule_open(self.engine.now)
        if self.config.checkpoint_interval is not None and self.node.stateful:
            store = self.services.get(CHECKPOINT_SERVICE)
            if store is not None:
                self._checkpoints = store
                state = store.load(self.worker_id)
                if state is not None:
                    self.component.restore(state)
        if not self.is_spout:
            service = self.services.get(REPLICATION_SERVICE)
            if service is not None:
                group = service.group_of(self.topology_id,
                                         self.component_name)
                if group is not None:
                    # join() restores from the group's state snapshot
                    # (superseding any checkpoint restore above) and
                    # returns where to resume in the sequenced input.
                    self._rep_group = group
                    self._rep_next, self._rep_out_seq = group.join(
                        self.worker_id, self.component)
                self._rep_dedup = service.dedup_of(self.topology_id,
                                                   self.component_name)
        loop = self._spout_loop() if self.is_spout else self._bolt_loop()
        self._main = self.engine.process(
            loop, name="worker:%d:%s" % (self.worker_id, self.component_name)
        )
        self._aux.append(self.engine.process(
            self._flusher(), name="flusher:%d" % self.worker_id
        ))
        if self.config.enable_oom:
            self._aux.append(self.engine.process(
                self._oom_monitor(), name="oom:%d" % self.worker_id
            ))
        if self.acking and self.is_spout:
            self._aux.append(self.engine.process(
                self._pending_sweeper(), name="pending:%d" % self.worker_id
            ))
        if self._checkpoints is not None:
            self._aux.append(self.engine.process(
                self._checkpoint_loop(), name="checkpoint:%d" % self.worker_id
            ))
        if self._rep_group is not None:
            self._aux.append(self.engine.process(
                self._replication_loop(),
                name="replication:%d" % self.worker_id
            ))

    def kill(self, drain: bool = False) -> None:
        """Stop the worker. With ``drain`` (stable update, §3.5), remaining
        queued tuples are processed and partial batches flushed first."""
        if not self.alive:
            return
        if drain:
            self._draining = True
            if self._main is not None:
                self._main.interrupt("drain")
        else:
            self._shutdown()

    def _shutdown(self) -> None:
        if not self.alive:
            return
        self.alive = False
        try:
            self.component.close()
        except Exception:
            pass
        for process in self._aux:
            process.interrupt("shutdown")
        if self._main is not None:
            self._main.interrupt("shutdown")
        self.transport.close()
        self.input_store.cancel_waiters()

    def _crash(self, error: BaseException) -> None:
        if not self.alive:
            return
        self.stats.crashes += 1
        self.alive = False
        for process in self._aux:
            process.interrupt("crash")
        if self._main is not None:
            self._main.interrupt("crash")
        self.transport.close()
        self.input_store.cancel_waiters()
        if self.on_crash is not None:
            self.on_crash(self, error)

    # -- delivery intake ------------------------------------------------------

    def deliver(self, delivery: Delivery) -> bool:
        """Entry point for the receive side of the transport."""
        if not self.alive and self._main is not None:
            return False
        return bool(self.input_store.put(delivery))

    @property
    def queue_depth(self) -> int:
        return self.input_store.depth

    @property
    def queue_bytes(self) -> int:
        return self.input_store.bytes_queued

    def stats_snapshot(self) -> Dict[str, int]:
        return self.stats.snapshot(self.queue_depth, self.queue_bytes)

    # -- main loops --------------------------------------------------------------

    def _bolt_loop(self):
        take_nowait = self.input_store.take_nowait
        while self.alive:
            # Backlogged intake drains synchronously: a get() on a
            # non-empty store fires its gate on the spot and the kernel
            # resumes this generator inside the same callback, so taking
            # the item directly is observably identical — it just skips
            # one gate Event per queued delivery. The yielding get()
            # remains the only wait point (and interrupt window).
            delivery = take_nowait()
            if delivery is None:
                try:
                    delivery = yield self.input_store.get()
                except Interrupt:
                    if self._draining:
                        yield from self._drain_remaining()
                    return
                except Exception:
                    return
            cost = yield from self._process_delivery(delivery)
            if cost > 0:
                try:
                    yield cost
                except Interrupt:
                    if self._draining:
                        yield from self._drain_remaining()
                    return
        return

    def _drain_remaining(self):
        """Process whatever is queued, flush, then shut down (§3.5)."""
        while True:
            ok, delivery = self.input_store.get_nowait()
            if not ok:
                break
            cost = yield from self._process_delivery(delivery)
            if cost > 0:
                yield cost
        # A draining stateful worker snapshots before retiring, so a
        # planned relocation's replacement restores up-to-date state
        # (and any deferred acks are released, completing their trees).
        flush_cost = 0.0
        if self._checkpoints is not None:
            flush_cost += self._take_checkpoint()
        flush_cost += self.transport.flush()
        if flush_cost > 0:
            yield flush_cost
        self._shutdown()

    def _process_delivery(self, delivery: Delivery):
        """Handle one delivery; returns the cost to charge (generator so
        component crashes can abort the worker mid-batch)."""
        if self._rep_group is not None:
            return self._replica_delivery(delivery)
        if self._rep_dedup is not None:
            return self._dedup_delivery(delivery)
        cost = delivery.cost
        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            # Traced runs take the one-call-per-tuple path so hop
            # checkpoints interleave exactly as before.
            for stream_tuple in delivery.tuples:
                if stream_tuple.stream == CONTROL_STREAM:
                    cost += self._handle_control(stream_tuple)
                    continue
                if stream_tuple.stream == SIGNAL_STREAM:
                    cost += self._run_component(stream_tuple, signal=True)
                    continue
                if stream_tuple.stream == ACK_STREAM:
                    cost += self._handle_ack_tuple(stream_tuple)
                    continue
                cost += self._run_component(stream_tuple, signal=False)
                if not self.alive:
                    break
            return cost
        execute_batch = self._execute_batch
        if (execute_batch is not None and delivery.stream is not None
                and not 1 <= delivery.stream <= 3 and not self.acking
                and not self._billed_services and delivery.tuples):
            # Whole-train handoff (batch component API): the transport
            # vouched that every tuple rides one data stream, so the
            # component consumes the delivery in a single call. The
            # cost replay is exact: the per-tuple loop charges
            # ``tcost = app_compute + extra`` with ``extra == 0.0`` for
            # a compliant (non-charging) component, and ``x + 0.0`` is
            # bitwise ``x`` for the finite cost constants — so adding
            # ``app_compute`` once per tuple reproduces the identical
            # float-accumulation sequence.
            tuples = delivery.tuples
            collector = self.collector
            try:
                execute_batch(tuples, collector)
            except Exception as error:
                # Batch-granularity crash semantics (documented on the
                # hook): the whole delivery is forfeited with the
                # crashing call.
                self._crash(WorkerCrashed(
                    "worker %d (%s) crashed: %r"
                    % (self.worker_id, self.component_name, error)
                ))
                return cost
            app_compute = self.costs.app_compute_per_tuple
            n = 0
            for _ in tuples:
                cost += app_compute
                n += 1
            extra = collector.extra_cost
            if extra:
                # Deviation from the hook contract (charge() inside a
                # batch): billed once at batch end, deterministically.
                cost += extra
                collector.extra_cost = 0.0
            if collector.buffered:
                cost += self._dispatch_emissions()
            self.stats.processed += n
            self.processed_meter.mark(n)
            return cost
        # Fused data-tuple loop: identical work and float-accumulation
        # order as _run_component per tuple, with per-call setup hoisted
        # out and same-timestamp meter marks coalesced (one delivery is
        # processed at a single virtual instant, so n marks of 1 and one
        # mark of n land in the same rate bucket). Marks are flushed
        # before any control/signal/ack handling, which may read stats.
        collector = self.collector
        # Spouts have no execute(); a data tuple reaching one takes the
        # _run_component path, which crashes the worker exactly as before.
        execute = getattr(self.component, "execute", None)
        billed = self._billed_services
        app_compute = self.costs.app_compute_per_tuple
        stats = self.stats
        acking = self.acking
        processed = 0
        for stream_tuple in delivery.tuples:
            stream = stream_tuple.stream
            # SIGNAL(1)/ACK(2)/CONTROL(3) are a contiguous reserved
            # band, so the data-path common case (stream 0) pays one
            # failed comparison instead of three.
            if 1 <= stream <= 3:
                if processed:
                    stats.processed += processed
                    self.processed_meter.mark(processed)
                    processed = 0
                if stream == CONTROL_STREAM:
                    cost += self._handle_control(stream_tuple)
                elif stream == SIGNAL_STREAM:
                    cost += self._run_component(stream_tuple, signal=True)
                else:
                    cost += self._handle_ack_tuple(stream_tuple)
                continue
            if execute is None:
                if processed:
                    stats.processed += processed
                    self.processed_meter.mark(processed)
                    processed = 0
                cost += self._run_component(stream_tuple, signal=False)
                if not self.alive:
                    break
                continue
            collector.current_input = stream_tuple
            if acking:
                # child_xor only feeds the ack value below; skip the
                # per-tuple reset when no one reads it.
                collector.child_xor = 0
            try:
                execute(stream_tuple, collector)
            except Exception as error:
                collector.current_input = None
                if processed:
                    # The crash callback may snapshot stats; flush the
                    # coalesced marks first so it sees them applied.
                    stats.processed += processed
                    self.processed_meter.mark(processed)
                    processed = 0
                self._crash(WorkerCrashed(
                    "worker %d (%s) crashed: %r"
                    % (self.worker_id, self.component_name, error)
                ))
                if not self.alive:
                    break
                continue
            collector.current_input = None
            tcost = app_compute + collector.extra_cost
            collector.extra_cost = 0.0
            if billed:
                for service in billed:
                    tcost += service.drain_cost()
            processed += 1
            if collector.buffered:
                tcost += self._dispatch_emissions()
            if acking and (anchor := stream_tuple.anchor) is not None:
                ack_value = anchor.edge_id ^ collector.child_xor
                if self._checkpoints is not None:
                    self._deferred_acks.append((anchor.root_id, ack_value))
                else:
                    tcost += self._send_ack_message(
                        ACK_ACK, anchor.root_id, ack_value
                    )
                stats.acked += 1
            cost += tcost
            if not self.alive:
                break
        if processed:
            stats.processed += processed
            self.processed_meter.mark(processed)
        return cost
        yield  # pragma: no cover - makes this a generator for uniform use

    def _run_component(self, stream_tuple: StreamTuple, signal: bool) -> float:
        tracer = self.tracer
        traced = (tracer is not None and tracer.enabled
                  and stream_tuple.trace_id is not None)
        if traced:
            # The tuple just left this worker's input queue; the segment
            # since the last (wire/deserialize) checkpoint is queue wait.
            tracer.event(stream_tuple.trace_id, H_QUEUE,
                         branch=self.worker_id)
        self.collector.current_input = stream_tuple
        self.collector.child_xor = 0
        try:
            if signal:
                self.stats.signals += 1
                self.component.on_signal(stream_tuple, self.collector)
            else:
                self.component.execute(stream_tuple, self.collector)
        except Exception as error:
            self._crash(WorkerCrashed(
                "worker %d (%s) crashed: %r"
                % (self.worker_id, self.component_name, error)
            ))
            return 0.0
        finally:
            self.collector.current_input = None
        cost = self.costs.app_compute_per_tuple + self.collector.extra_cost
        self.collector.extra_cost = 0.0
        for service in self._billed_services:
            cost += service.drain_cost()
        if traced:
            tracer.finish_delivery(stream_tuple.trace_id,
                                   branch=self.worker_id, cost=cost,
                                   component=self.component_name)
        if not signal:
            self.stats.processed += 1
            self.processed_meter.mark()
        cost += self._dispatch_emissions()
        if (not signal and self.acking and stream_tuple.anchor is not None):
            ack_value = stream_tuple.anchor.edge_id ^ self.collector.child_xor
            if self._checkpoints is not None:
                # Exactly-once composition: hold the ack until the state
                # that absorbed this tuple is durably snapshotted. A crash
                # before the snapshot leaves the tree incomplete, so the
                # spout replays it against the restored (pre-tuple) state.
                self._deferred_acks.append(
                    (stream_tuple.anchor.root_id, ack_value))
            else:
                cost += self._send_ack_message(
                    ACK_ACK, stream_tuple.anchor.root_id, ack_value
                )
            self.stats.acked += 1
        return cost

    def _spout_loop(self):
        while self.alive:
            # 1. Drain any waiting input (completions / control tuples).
            drained_cost = 0.0
            while True:
                ok, delivery = self.input_store.get_nowait()
                if not ok:
                    break
                drained_cost += yield from self._process_delivery(delivery)
            if drained_cost > 0:
                yield drained_cost
            if not self.alive:
                return

            # 2. Blocked states: deactivated, or ack window full.
            blocked = (
                not self.active
                or (self.acking and self.max_pending is not None
                    and len(self.pending_roots) >= self.max_pending)
            )
            if blocked:
                # Wake on the next delivery (completion / control tuple)
                # or after a short beat — the pending-root sweeper may
                # have freed the ack window with nothing arriving.
                gate = self._next_input()
                timer = self.engine.timeout(0.5)
                try:
                    yield self.engine.any_of([gate, timer])
                except Interrupt:
                    return
                except Exception:
                    return
                timer.cancel()
                if gate.triggered:
                    self._pending_get = None
                    if gate.failed:
                        return
                    cost = yield from self._process_delivery(gate.value)
                    if cost > 0:
                        yield cost
                continue

            # 3. Rate limiting (INPUT_RATE control, Table 2).
            if self.input_rate_limit is not None:
                next_allowed = (self._rate_anchor
                                + self._emitted_since_anchor / self.input_rate_limit)
                delay = next_allowed - self.engine.now
                if delay > 1e-12:
                    try:
                        yield delay
                    except Interrupt:
                        return
                    continue

            # 4. Emit a batch.
            emitted, cost = self._emit_spout_batch()
            self._emitted_since_anchor += emitted
            if emitted == 0:
                # Source idle; poll again shortly.
                try:
                    yield max(cost, 0.0005)
                except Interrupt:
                    return
                continue
            try:
                yield cost
            except Interrupt:
                return
        return

    def _next_input(self) -> Event:
        if self._pending_get is None:
            self._pending_get = self.input_store.get()
        return self._pending_get

    def _emit_spout_batch(self) -> Tuple[int, float]:
        cost = 0.0
        emitted = 0
        limit = self._emit_batch
        if self.acking and self.max_pending is not None:
            limit = min(limit,
                        self.max_pending - len(self.pending_roots))
        # Due replays take priority over fresh input: they are older,
        # and draining them first bounds the failure tail.
        if self.replay is not None and limit > 0:
            for entry in self.replay.take_due(self.engine.now, limit):
                self.collector.emit(entry.values, stream=entry.stream,
                                    message_id=entry.message_id)
                cost += self.costs.app_compute_per_tuple
                cost += self._dispatch_emissions()
                emitted += 1
            limit -= emitted
        if limit <= 0:
            return emitted, cost
        # Fused per-tuple loop: identical work and float-accumulation
        # order as next_tuple + _dispatch_emissions per tuple, with the
        # per-call setup (stream index, tracer probe, attribute walks)
        # hoisted out of the loop. The whole batch runs at one virtual
        # instant, so coalescing the per-tuple meter marks into one
        # mark(n) lands in the same rate bucket — state is identical.
        collector = self.collector
        buffered = collector.buffered
        next_tuple = self.component.next_tuple
        billed = self._billed_services
        app_compute = self.costs.app_compute_per_tuple
        routers = self.routers
        if self._stream_index_version != routers.version:
            index: Dict[int, List[Tuple[Tuple[str, int], Router]]] = {}
            for key, router in routers.items():
                index.setdefault(key[1], []).append((key, router))
            self._stream_index = index
            self._stream_index_version = routers.version
        index = self._stream_index
        tracer = self.tracer
        tracing = tracer is not None and tracer.enabled
        transport = self.transport
        stats = self.stats
        marked = 0
        last_stream = None
        last_edges = None
        # Deferred dispatch: the common spout shape is one emission per
        # next_tuple() call on one single-hop edge. Those tuples are
        # collected in `pending` and dispatched through a single
        # send_interleaved call, which replays the per-tuple cost
        # sequence (app_compute then send total, tuple by tuple)
        # bit-exactly and creates the same frame-injection events in
        # the same order — all at one virtual instant. Any deviation
        # (multi-emission, direct send, charge(), other stream) flushes
        # the pending run first, so ordering never changes. Disabled
        # under tracing (per-tuple trace hooks), acking (ACK_INIT sends
        # inside emit must stay interleaved with data sends) and billed
        # services (their drains interleave with dispatch costs).
        defer_ok = not tracing and not self.acking and not billed
        fast_router = None
        fast_sink = False
        fast_bcast = False
        plen = 0
        pending: List[StreamTuple] = []
        batch_next = self._next_tuple_batch if defer_ok else None
        handoff = False
        calls = 0
        while calls < limit:
            if fast_sink and batch_next is not None:
                # Armed lane plus a batch-capable spout: hand the rest
                # of the window to next_tuple_batch, after the loop.
                handoff = True
                break
            calls += 1
            try:
                next_tuple(collector)
            except Exception as error:
                if fast_sink and len(pending) != plen:
                    # Emissions from the crashing call itself stay
                    # buffered (exactly as the per-tuple path leaves
                    # them), ahead of any slower emissions of the call.
                    tail = pending[plen:]
                    del pending[plen:]
                    buffered[:0] = [(st, None) for st in tail]
                if pending:
                    k = len(pending)
                    if fast_bcast:
                        cost = transport.send_broadcast_interleaved(
                            pending, fast_router.next_hops, app_compute,
                            cost, uniform=True)
                    else:
                        fast_router.advance(k)
                        cost = transport.send_interleaved(
                            pending, fast_router.next_hops[0], app_compute,
                            cost, uniform=True)
                    marked += k
                    pending = []
                if marked:
                    # The crash callback may snapshot stats; flush the
                    # coalesced marks and counters first so it sees
                    # them applied.
                    stats.emitted += marked
                    self.emitted_meter.mark(marked)
                    marked = 0
                self._crash(WorkerCrashed(
                    "spout %d crashed: %r" % (self.worker_id, error)
                ))
                break
            extra = collector.extra_cost
            tail = None
            if fast_sink:
                np = len(pending)
                if np - plen == 1 and extra == 0.0 and not buffered:
                    # The dominant shape: exactly one deferred emission.
                    plen = np
                    emitted += 1
                    continue
                if np != plen:
                    # Rare: the call emitted several fast-stream tuples
                    # (and possibly slower ones after them). Split them
                    # off; they are routed per tuple below, before the
                    # buffered emissions, preserving call order.
                    tail = pending[plen:]
                    del pending[plen:]
                n = (np - plen) + len(buffered)
            else:
                n = len(buffered)
                if defer_ok and n == 1 and not extra:
                    stream_tuple, direct_dst = buffered[0]
                    if direct_dst is None:
                        stream = stream_tuple.stream
                        edges = index.get(stream)
                        fast_router = self._single_hop_router(edges)
                        if fast_router is None:
                            # Second chance: a pure broadcast edge takes
                            # the same deferred path, dispatched through
                            # one batched broadcast send (the whole
                            # train is encoded once and the switch
                            # replicates each frame).
                            fast_router = self._single_broadcast_router(
                                edges)
                            fast_bcast = fast_router is not None
                        if fast_router is not None:
                            pending.append(stream_tuple)
                            del buffered[:]
                            emitted += 1
                            plen = 1
                            # From here on emit() appends eligible
                            # tuples straight into `pending`.
                            collector.fast_pending = pending
                            collector.fast_stream = stream
                            fast_sink = True
                            continue
                        defer_ok = False
            # Fallback: dispatch any deferred run first, then handle
            # this iteration exactly as the per-tuple path would.
            if pending:
                k = len(pending)
                if fast_bcast:
                    cost = transport.send_broadcast_interleaved(
                        pending, fast_router.next_hops, app_compute, cost,
                        uniform=True)
                else:
                    fast_router.advance(k)
                    cost = transport.send_interleaved(
                        pending, fast_router.next_hops[0], app_compute,
                        cost, uniform=True)
                marked += k
                if fast_sink:
                    # emit() aliases this list; clear in place.
                    pending.clear()
                    plen = 0
                else:
                    pending = []
            if extra:
                cost += extra
                collector.extra_cost = 0.0
            if billed:
                for service in billed:
                    cost += service.drain_cost()
            if n == 0:
                break
            cost += app_compute * n
            dcost = 0.0
            if tail:
                for stream_tuple in tail:
                    if fast_bcast:
                        # Broadcast never consults route(): the switch
                        # replicates, the router holds no policy state.
                        dcost += transport.send_broadcast(
                            stream_tuple, fast_router.next_hops)
                    else:
                        dsts = fast_router.route(stream_tuple)
                        dcost += transport.send(stream_tuple, dsts)
                    marked += 1
            for stream_tuple, direct_dst in buffered:
                if tracing:
                    tracer.maybe_trace(stream_tuple,
                                       component=self.component_name,
                                       worker=self.worker_id,
                                       stream=stream_tuple.stream)
                if direct_dst is not None:
                    dcost += transport.send(stream_tuple, [direct_dst])
                    marked += 1
                    continue
                stream = stream_tuple.stream
                if stream != last_stream:
                    last_edges = index.get(stream)
                    last_stream = stream
                edges = last_edges
                if not edges:
                    continue
                for key, router in edges:
                    if router.is_broadcast:
                        group = router.replication_group
                        if group is not None:
                            stream_tuple.seq = group.stamp_input(stream_tuple)
                        dcost += transport.send_broadcast(
                            stream_tuple, router.next_hops
                        )
                    elif router.is_sdn_offloaded:
                        dcost += transport.send_offloaded(
                            stream_tuple, key, router.next_hops
                        )
                    else:
                        dsts = router.route(stream_tuple)
                        dcost += transport.send(stream_tuple, dsts)
                marked += 1
            del buffered[:]
            cost += dcost
            emitted += n
        if handoff:
            # Whole-window handoff (batch component API): one call asks
            # the spout for every remaining emission of this window.
            # Each emission replays as one next_tuple call that emitted
            # exactly one deferred tuple — the trailing dispatch below
            # charges app_compute + send per tuple via pre_cost — and
            # stopping short replays as a call that emitted nothing,
            # which charges nothing. For a hook honouring its contract
            # (single-stream emissions, no charge()), results are
            # bit-identical to the scalar loop.
            try:
                batch_next(collector, limit - calls)
            except Exception as error:
                # Batch-granularity crash semantics (documented on the
                # hook): every emission already made is dispatched
                # ahead of the crash, like completed per-tuple calls.
                emitted += len(pending) - plen
                if pending:
                    k = len(pending)
                    if fast_bcast:
                        cost = transport.send_broadcast_interleaved(
                            pending, fast_router.next_hops, app_compute,
                            cost, uniform=True)
                    else:
                        fast_router.advance(k)
                        cost = transport.send_interleaved(
                            pending, fast_router.next_hops[0],
                            app_compute, cost, uniform=True)
                    marked += k
                    pending = []
                if marked:
                    stats.emitted += marked
                    self.emitted_meter.mark(marked)
                    marked = 0
                self._crash(WorkerCrashed(
                    "spout %d crashed: %r" % (self.worker_id, error)
                ))
            else:
                emitted += len(pending) - plen
                if buffered or collector.extra_cost:
                    # Contract deviation (slow-stream emissions or a
                    # charge): dispatch the train first, preserving
                    # emission order, then route the stragglers through
                    # the generic machinery — deterministic, though not
                    # a per-call replay (no call boundaries survive a
                    # batch).
                    if pending:
                        k = len(pending)
                        if fast_bcast:
                            cost = transport.send_broadcast_interleaved(
                                pending, fast_router.next_hops,
                                app_compute, cost, uniform=True)
                        else:
                            fast_router.advance(k)
                            cost = transport.send_interleaved(
                                pending, fast_router.next_hops[0],
                                app_compute, cost, uniform=True)
                        marked += k
                        pending.clear()
                        plen = 0
                    extra = collector.extra_cost
                    if extra:
                        cost += extra
                        collector.extra_cost = 0.0
                    n = len(buffered)
                    cost += app_compute * n
                    emitted += n
                    cost += self._dispatch_emissions()
        collector.fast_pending = None
        if pending:
            k = len(pending)
            if fast_bcast:
                cost = transport.send_broadcast_interleaved(
                    pending, fast_router.next_hops, app_compute, cost,
                    uniform=True)
            else:
                fast_router.advance(k)
                cost = transport.send_interleaved(
                    pending, fast_router.next_hops[0], app_compute, cost,
                    uniform=True)
            marked += k
        if marked:
            stats.emitted += marked
            self.emitted_meter.mark(marked)
        return emitted, cost

    # -- emission dispatch ------------------------------------------------------------

    @staticmethod
    def _single_hop_router(edges) -> Optional[Router]:
        """The stream's one router, if an emission batch can take the
        batched point-to-point send path: exactly one edge, routing
        decided worker-side (not broadcast / not SDN-offloaded), and a
        single next hop so every tuple lands on the same destination."""
        if edges is None or len(edges) != 1:
            return None
        router = edges[0][1]
        if router.is_broadcast or router.is_sdn_offloaded:
            return None
        kind = router.grouping.kind
        if kind != SHUFFLE and kind != GLOBAL:
            return None
        if len(router.next_hops) != 1:
            return None
        return router

    @staticmethod
    def _single_broadcast_router(edges) -> Optional[Router]:
        """The stream's one router, if an emission batch can take the
        batched broadcast send path: exactly one edge, GROUP_ALL
        semantics, and no replica sequencer (sequenced edges stamp each
        tuple before serializing, so they stay on the per-tuple path)."""
        if edges is None or len(edges) != 1:
            return None
        router = edges[0][1]
        if not router.is_broadcast or router.replication_group is not None:
            return None
        if not router.next_hops:
            return None
        return router

    def _dispatch_emissions(self) -> float:
        if not self.collector.buffered:
            return 0.0
        routers = self.routers
        if self._stream_index_version != routers.version:
            # Group edges by stream id, preserving dict insertion order
            # within each stream so per-tuple send order is unchanged.
            index: Dict[int, List[Tuple[Tuple[str, int], Router]]] = {}
            for key, router in routers.items():
                index.setdefault(key[1], []).append((key, router))
            self._stream_index = index
            self._stream_index_version = routers.version
        index = self._stream_index
        cost = 0.0
        tracer = self.tracer
        tracing = tracer is not None and tracer.enabled
        transport = self.transport
        marked = 0
        last_stream = None
        last_edges = None
        batch = self.collector.take()
        if not tracing:
            # Whole-batch fast path (see _emit_spout_batch): one
            # send_many call when every tuple rides one single-hop edge
            # (or one batched broadcast when it rides a pure GROUP_ALL
            # edge — the train is encoded once, the switch replicates).
            stream = batch[0][0].stream
            edges = index.get(stream)
            fast_router = self._single_hop_router(edges)
            fast_bcast = False
            if fast_router is None:
                fast_router = self._single_broadcast_router(edges)
                fast_bcast = fast_router is not None
            if fast_router is not None:
                for stream_tuple, direct_dst in batch:
                    if (direct_dst is not None
                            or stream_tuple.stream != stream):
                        fast_router = None
                        break
            if fast_router is not None:
                n = len(batch)
                if fast_bcast:
                    # Per-tuple broadcast never consults route(), so
                    # there is no router state to advance. pre_cost 0.0
                    # replays the slow path's bare `cost +=` additions.
                    cost = transport.send_broadcast_interleaved(
                        [item[0] for item in batch],
                        fast_router.next_hops, 0.0, 0.0)
                else:
                    fast_router.advance(n)
                    cost = transport.send_many(
                        [item[0] for item in batch],
                        fast_router.next_hops[0])
                self.stats.emitted += n
                self.emitted_meter.mark(n)
                return cost
        for stream_tuple, direct_dst in batch:
            if tracing:
                tracer.maybe_trace(stream_tuple,
                                   component=self.component_name,
                                   worker=self.worker_id,
                                   stream=stream_tuple.stream)
            if direct_dst is not None:
                cost += transport.send(stream_tuple, [direct_dst])
                marked += 1
                continue
            stream = stream_tuple.stream
            if stream != last_stream:
                last_edges = index.get(stream)
                last_stream = stream
            edges = last_edges
            if not edges:
                # Terminal sink: emission has nowhere to go; drop silently
                # (consistent with Storm semantics for unsubscribed streams).
                continue
            for key, router in edges:
                if router.is_broadcast:
                    group = router.replication_group
                    if group is not None:
                        # The sequencer: one stamp, one serialization;
                        # the switch replicates the frame to every
                        # replica (GroupMod fan-out).
                        stream_tuple.seq = group.stamp_input(stream_tuple)
                    cost += transport.send_broadcast(
                        stream_tuple, router.next_hops
                    )
                elif router.is_sdn_offloaded:
                    cost += transport.send_offloaded(
                        stream_tuple, key, router.next_hops
                    )
                else:
                    dsts = router.route(stream_tuple)
                    cost += transport.send(stream_tuple, dsts)
            # One emission per tuple, however many edges consume it.
            marked += 1
        if marked:
            # The whole dispatch runs at one virtual instant: coalesced
            # counter/meter updates are indistinguishable from per-tuple
            # ones, and they land before control returns to any code
            # that could observe stats.
            self.stats.emitted += marked
            self.emitted_meter.mark(marked)
        return cost

    # -- active replication (exactly-once) ------------------------------------------------

    def _replica_delivery(self, delivery: Delivery) -> float:
        """Replica intake: reserved-band tuples take the normal handlers;
        sequenced data tuples are applied in strict input order — held
        when early, dropped when already applied, repaired from the
        group's input log when gaps persist (see _replication_tick)."""
        cost = delivery.cost
        group = self._rep_group
        for stream_tuple in delivery.tuples:
            stream = stream_tuple.stream
            if 1 <= stream <= 3:
                if stream == CONTROL_STREAM:
                    cost += self._handle_control(stream_tuple)
                elif stream == SIGNAL_STREAM:
                    cost += self._run_component(stream_tuple, signal=True)
                else:
                    cost += self._handle_ack_tuple(stream_tuple)
                continue
            seq = stream_tuple.seq
            if seq is None:
                # Unsequenced data should not reach a replica (the
                # expand_replicas rewrite makes every input edge pass
                # the sequencer); process rather than lose it.
                cost += self._run_component(stream_tuple, signal=False)
            else:
                cost += self._accept_replicated(stream_tuple, seq[1])
            if not self.alive:
                break
        return cost

    def _accept_replicated(self, stream_tuple: StreamTuple,
                           seq: int) -> float:
        group = self._rep_group
        if seq < self._rep_next:
            # Already applied (wire arrival racing the log-repair loop,
            # or a switch-level duplicate). Input-side dedup.
            group.duplicate_inputs += 1
            return 0.0
        if seq > self._rep_next:
            pending = self._rep_pending
            if len(pending) >= REORDER_LIMIT:
                group.reorder_overflow += 1  # log repair recovers it
            else:
                pending[seq] = stream_tuple
            return 0.0
        cost = self._apply_replicated(stream_tuple)
        pending = self._rep_pending
        while self.alive and self._rep_next in pending:
            cost += self._apply_replicated(pending.pop(self._rep_next))
        return cost

    def _apply_replicated(self, stream_tuple: StreamTuple) -> float:
        """Apply one in-order input to the replicated component. Outputs
        get deterministic output sequence numbers and are logged in the
        group; only the leader dispatches them downstream."""
        group = self._rep_group
        collector = self.collector
        collector.current_input = stream_tuple
        try:
            self.component.execute(stream_tuple, collector)
        except Exception as error:
            collector.current_input = None
            self._crash(WorkerCrashed(
                "worker %d (%s) crashed: %r"
                % (self.worker_id, self.component_name, error)
            ))
            return 0.0
        collector.current_input = None
        cost = self.costs.app_compute_per_tuple + collector.extra_cost
        collector.extra_cost = 0.0
        for service in self._billed_services:
            cost += service.drain_cost()
        self.stats.processed += 1
        self.processed_meter.mark()
        self._rep_next += 1
        batch = collector.take()
        out_base = self._rep_out_seq
        for offset, (out, _direct) in enumerate(batch):
            out.seq = (group.epoch, out_base + offset)
            group.log_output(out_base + offset, out.values, out.stream)
        self._rep_out_seq = out_base + len(batch)
        if batch:
            if group.leader == self.worker_id:
                collector.buffered = batch
                cost += self._dispatch_emissions()
                now = self.engine.now
                for offset in range(len(batch)):
                    group.mark_sent(out_base + offset, now)
            else:
                group.suppressed += len(batch)
        group.note_applied(self.worker_id, self._rep_next,
                           self._rep_out_seq)
        return cost

    def _dedup_delivery(self, delivery: Delivery) -> float:
        """Consumer intake below a replica group: each output sequence
        is admitted exactly once group-wide, collapsing replica
        duplicates, leader re-emissions and failover overlap.

        Admission is recorded *after* the component call: a delivery is
        processed atomically within one virtual-time event, so a crash
        cannot strand an admitted-but-unapplied tuple, and unadmitted
        sequences stay covered by the leader's re-emit loop."""
        cost = delivery.cost
        group = self._rep_dedup
        for stream_tuple in delivery.tuples:
            stream = stream_tuple.stream
            if 1 <= stream <= 3:
                if stream == CONTROL_STREAM:
                    cost += self._handle_control(stream_tuple)
                elif stream == SIGNAL_STREAM:
                    cost += self._run_component(stream_tuple, signal=True)
                else:
                    cost += self._handle_ack_tuple(stream_tuple)
                continue
            seq = stream_tuple.seq
            if seq is not None:
                if (seq[1] <= group.admitted_floor
                        or seq[1] in group.admitted_extra):
                    group.duplicates_collapsed += 1
                    continue
                cost += self._run_component(stream_tuple, signal=False)
                if self.alive:
                    group.admit(seq[1])
            else:
                cost += self._run_component(stream_tuple, signal=False)
            if not self.alive:
                break
        return cost

    def _replication_loop(self):
        """Replica background work each tick: repair input-log gaps,
        and — on the leader — snapshot state, re-emit unadmitted
        outputs, trim the group logs."""
        while True:
            try:
                yield REPLICATION_TICK
            except Interrupt:
                return
            cost = self._replication_tick()
            if cost > 0:
                try:
                    yield cost
                except Interrupt:
                    return

    def _replication_tick(self) -> float:
        group = self._rep_group
        cost = 0.0
        # Gap repair from the durable input log: broadcasts lost to
        # link faults or switch outages cannot stall the replica.
        budget = REPAIR_BUDGET
        while budget > 0 and self.alive:
            stream_tuple = group.fetch_input(self._rep_next)
            if stream_tuple is None:
                break
            group.repairs += 1
            cost += self._apply_replicated(stream_tuple)
            budget -= 1
        if not self.alive:
            return cost
        pending = self._rep_pending
        for seq in [s for s in pending if s < self._rep_next]:
            del pending[seq]
        if group.leader == self.worker_id:
            try:
                state = self.component.snapshot()
            except Exception:
                state = None
            group.save_state(self.worker_id, self._rep_next,
                             self._rep_out_seq, state)
            cost += self._replication_reemit()
            group.trim()
        return cost

    def _replication_reemit(self) -> float:
        """(Re-)send logged outputs downstream has not admitted yet:
        everything after a promotion (the dead leader may have produced
        them without a successful send), and anything unadmitted for a
        full re-emit age otherwise. Downstream dedup collapses the
        overlap."""
        group = self._rep_group
        due = group.reemit_due(self.engine.now)
        if not due:
            return 0.0
        collector = self.collector
        epoch = group.epoch
        for seq, values, stream in due:
            out = StreamTuple.__new__(StreamTuple)
            out.values = values
            out.stream = stream
            out.source_component = self.component_name
            out.source_worker = self.worker_id
            out.anchor = None
            out.trace_id = None
            out.seq = (epoch, seq)
            collector.buffered.append((out, None))
        return self._dispatch_emissions()

    # -- acking (guaranteed processing) ---------------------------------------------------

    def _new_edge_id(self) -> int:
        return self.rng.getrandbits(64)

    def _register_root(self, message_id: Any) -> Anchor:
        root_id = self.rng.getrandbits(64)
        edge_id = self._new_edge_id()
        self.pending_roots[root_id] = _PendingRoot(message_id, self.engine.now)
        self._send_ack_message(ACK_INIT, root_id, edge_id)
        return Anchor(root_id, edge_id)

    def _send_ack_message(self, kind: str, root_id: int, value: int) -> float:
        if not self.ackers:
            return 0.0
        acker = self.ackers[root_id % len(self.ackers)]
        message = StreamTuple(
            values=(kind, root_id, value, self.worker_id),
            stream=ACK_STREAM,
            source_component=self.component_name,
            source_worker=self.worker_id,
        )
        return self.transport.send(message, [acker])

    def _handle_ack_tuple(self, stream_tuple: StreamTuple) -> float:
        kind = stream_tuple.values[0]
        if kind == ACK_COMPLETE and self.is_spout:
            root_id = stream_tuple.values[1]
            pending = self.pending_roots.pop(root_id, None)
            if self.replay is not None:
                # The buffer arbitrates: only the first completion of a
                # message (possibly via a root a *previous* incarnation
                # emitted) acks the component; later completions of
                # superseded roots are dropped silently.
                message_id, first = self.replay.on_complete(root_id)
                if first:
                    if pending is not None:
                        self.latency_dist.record(
                            self.engine.now - pending.emit_time)
                    try:
                        self.component.ack(message_id)
                    except Exception:
                        pass
            elif pending is not None:
                self.latency_dist.record(self.engine.now - pending.emit_time)
                try:
                    self.component.ack(pending.message_id)
                except Exception:
                    pass
            return self.costs.ack_per_tuple
        if kind == ACK_FAIL and self.is_spout:
            root_id = stream_tuple.values[1]
            pending = self.pending_roots.pop(root_id, None)
            if pending is not None or (self.replay is not None
                                       and self.replay.has_root(root_id)):
                self._fail_root(root_id, pending)
            return self.costs.ack_per_tuple
        # Non-spout workers receiving ack traffic = the acker component;
        # its logic lives in the component itself (see acker.py), so run it.
        return self._run_component(stream_tuple, signal=False)

    def _fail_root(self, root_id: int, pending: Optional[_PendingRoot]) -> None:
        """One root failed (timeout or explicit FAIL): replay the message
        if the framework replay layer is on, otherwise fall back to the
        component's own ``fail`` hook."""
        self.stats.failed += 1
        if self.replay is not None:
            outcome, message_id, _due = self.replay.on_failed(
                root_id, self.engine.now)
            if outcome == R_EXHAUSTED:
                try:
                    self.component.fail(message_id)
                except Exception:
                    pass
            return
        if pending is not None:
            try:
                self.component.fail(pending.message_id)
            except Exception:
                pass

    def _pending_sweeper(self):
        while True:
            try:
                yield max(self.config.tuple_timeout / 4, 0.5)
            except Interrupt:
                return
            deadline = self.engine.now - self.config.tuple_timeout
            expired = [root for root, p in self.pending_roots.items()
                       if p.emit_time <= deadline]
            for root in expired:
                pending = self.pending_roots.pop(root)
                self._fail_root(root, pending)

    # -- auxiliary processes ---------------------------------------------------------------

    def _flusher(self):
        while True:
            try:
                yield self.costs.batch_flush_interval
            except Interrupt:
                return
            cost = self.transport.flush()
            if cost > 0:
                try:
                    yield cost
                except Interrupt:
                    return

    def _oom_monitor(self):
        while True:
            try:
                yield self.costs.oom_check_interval
            except Interrupt:
                return
            if self.queue_bytes > self.costs.worker_memory_limit_bytes:
                self._crash(OutOfMemoryError(
                    "worker %d exceeded %d bytes"
                    % (self.worker_id, self.costs.worker_memory_limit_bytes)
                ))
                return

    # -- checkpointing (stateful fault recovery) -----------------------------------------

    def _checkpoint_loop(self):
        interval = self.config.checkpoint_interval
        while True:
            try:
                yield interval
            except Interrupt:
                return
            cost = self._take_checkpoint()
            if cost > 0:
                try:
                    yield cost
                except Interrupt:
                    return

    def _take_checkpoint(self) -> float:
        """Persist the component's state, then release the acks deferred
        since the previous snapshot (they are now covered by it)."""
        try:
            state = self.component.snapshot()
        except Exception:
            state = None
        if state is not None:
            self._checkpoints.save(self.worker_id, state, self.engine.now)
        return self._flush_deferred_acks()

    def _flush_deferred_acks(self) -> float:
        if not self._deferred_acks:
            return 0.0
        acks, self._deferred_acks = self._deferred_acks, []
        cost = 0.0
        for root_id, ack_value in acks:
            cost += self._send_ack_message(ACK_ACK, root_id, ack_value)
        return cost

    # -- control tuples (Typhoon hook) ---------------------------------------------------------

    def _handle_control(self, stream_tuple: StreamTuple) -> float:
        self.stats.control_tuples += 1
        if self.control_handler is None:
            return 0.0
        cost = self.control_handler(self, stream_tuple)
        tracer = self.tracer
        if (tracer is not None and tracer.enabled
                and stream_tuple.trace_id is not None):
            tracer.event(stream_tuple.trace_id, H_QUEUE,
                         branch=self.worker_id)
            tracer.finish_delivery(stream_tuple.trace_id,
                                   branch=self.worker_id, cost=cost,
                                   hop=H_CONTROL,
                                   component=self.component_name)
        return cost

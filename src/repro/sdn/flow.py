"""Flow matches, actions and flow tables (OpenFlow-style).

The match fields are exactly those Typhoon's rules use (Table 3):
``in_port``, ``dl_src``, ``dl_dst`` and ``ether_type``; any field may be
wildcarded. Actions cover the paper's needs: output to ports, output to
the controller, set-tunnel-destination (for remote transfers over host
TCP tunnels), destination rewrite and group indirection (for the SDN
load balancer's weighted round robin).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..net.addresses import WorkerAddress
from ..net.ethernet import EthernetFrame

#: Virtual port number addressing the controller (cf. OFPP_CONTROLLER).
OFPP_CONTROLLER = 0xFFFFFFFD


@dataclass(frozen=True)
class Match:
    """A wildcard-capable match over frame headers and ingress port."""

    in_port: Optional[int] = None
    dl_src: Optional[WorkerAddress] = None
    dl_dst: Optional[WorkerAddress] = None
    ether_type: Optional[int] = None

    def matches(self, frame: EthernetFrame, in_port: int) -> bool:
        if self.in_port is not None and in_port != self.in_port:
            return False
        if self.dl_src is not None and frame.src != self.dl_src:
            return False
        if self.dl_dst is not None and frame.dst != self.dl_dst:
            return False
        if self.ether_type is not None and frame.ethertype != self.ether_type:
            return False
        return True

    def covers(self, other: "Match") -> bool:
        """True if every frame matched by ``other`` is matched by ``self``."""
        for name in ("in_port", "dl_src", "dl_dst", "ether_type"):
            mine = getattr(self, name)
            theirs = getattr(other, name)
            if mine is not None and mine != theirs:
                return False
        return True

    def describe(self) -> str:
        parts = []
        if self.in_port is not None:
            parts.append("in_port=%d" % self.in_port)
        if self.dl_src is not None:
            parts.append("dl_src=%s" % self.dl_src)
        if self.dl_dst is not None:
            parts.append("dl_dst=%s" % self.dl_dst)
        if self.ether_type is not None:
            parts.append("ether_type=0x%04x" % self.ether_type)
        return ", ".join(parts) or "any"


# -- actions ---------------------------------------------------------------


@dataclass(frozen=True)
class Action:
    """Base class for flow actions."""


@dataclass(frozen=True)
class Output(Action):
    """Emit the frame on a switch port (or OFPP_CONTROLLER)."""

    port: int


@dataclass(frozen=True)
class SetTunnelDst(Action):
    """Select the peer host for a subsequent tunnel-port output."""

    host: str


@dataclass(frozen=True)
class SetDlDst(Action):
    """Rewrite the destination worker address (SDN load balancing, §4)."""

    address: WorkerAddress


@dataclass(frozen=True)
class GroupAction(Action):
    """Indirect through a group-table entry."""

    group_id: int


# -- flow entries ------------------------------------------------------------

_entry_ids = itertools.count(1)


@dataclass
class FlowEntry:
    """One rule: match + action list + priority + timeouts + counters."""

    match: Match
    actions: Tuple[Action, ...]
    priority: int = 100
    idle_timeout: Optional[float] = None
    cookie: int = 0
    entry_id: int = field(default_factory=lambda: next(_entry_ids))
    packets: int = 0
    bytes: int = 0
    installed_at: float = 0.0
    last_used: float = 0.0

    def __post_init__(self) -> None:
        self.actions = tuple(self.actions)

    def touch(self, now: float, nbytes: int) -> None:
        self.packets += 1
        self.bytes += nbytes
        self.last_used = now

    def idle_expired(self, now: float) -> bool:
        if self.idle_timeout is None:
            return False
        reference = self.last_used if self.packets else self.installed_at
        return now - reference >= self.idle_timeout

    def describe(self) -> str:
        return "[prio=%d] match(%s) -> %s" % (
            self.priority, self.match.describe(),
            ", ".join(type(a).__name__ for a in self.actions),
        )


class FlowTable:
    """Priority-ordered flow rules with exact-overlap replacement.

    Lookup returns the highest-priority matching entry; among equal
    priorities the earliest-installed wins (deterministic). Adding an
    entry whose match and priority equal an existing entry replaces it
    (OpenFlow ADD semantics).
    """

    def __init__(self):
        self._entries: List[FlowEntry] = []

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self):
        return iter(list(self._entries))

    def add(self, entry: FlowEntry, now: float = 0.0) -> FlowEntry:
        entry.installed_at = now
        entry.last_used = now
        for i, existing in enumerate(self._entries):
            if existing.match == entry.match and existing.priority == entry.priority:
                self._entries[i] = entry
                return entry
        self._entries.append(entry)
        # Keep sorted by (-priority, entry_id) so lookup is a linear scan
        # over an already correctly ordered list.
        self._entries.sort(key=lambda e: (-e.priority, e.entry_id))
        return entry

    def lookup(self, frame: EthernetFrame, in_port: int) -> Optional[FlowEntry]:
        for entry in self._entries:
            if entry.match.matches(frame, in_port):
                return entry
        return None

    def remove(self, match: Match, strict: bool = False,
               priority: Optional[int] = None) -> List[FlowEntry]:
        """Delete entries; non-strict removes every entry *covered* by
        match. Strict deletion also requires the priority to match when
        one is given (OpenFlow delete_strict semantics)."""
        if strict:
            removed = [e for e in self._entries
                       if e.match == match
                       and (priority is None or e.priority == priority)]
        else:
            removed = [e for e in self._entries if match.covers(e.match)]
        for entry in removed:
            self._entries.remove(entry)
        return removed

    def remove_by_cookie(self, cookie: int) -> List[FlowEntry]:
        removed = [e for e in self._entries if e.cookie == cookie]
        for entry in removed:
            self._entries.remove(entry)
        return removed

    def expire_idle(self, now: float) -> List[FlowEntry]:
        expired = [e for e in self._entries if e.idle_expired(now)]
        for entry in expired:
            self._entries.remove(entry)
        return expired

    def referencing_port(self, port: int) -> List[FlowEntry]:
        """Entries that match on or output to the given port."""
        hits = []
        for entry in self._entries:
            if entry.match.in_port == port:
                hits.append(entry)
                continue
            if any(isinstance(a, Output) and a.port == port for a in entry.actions):
                hits.append(entry)
        return hits

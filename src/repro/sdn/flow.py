"""Flow matches, actions and flow tables (OpenFlow-style).

The match fields are exactly those Typhoon's rules use (Table 3):
``in_port``, ``dl_src``, ``dl_dst`` and ``ether_type``; any field may be
wildcarded. Actions cover the paper's needs: output to ports, output to
the controller, set-tunnel-destination (for remote transfers over host
TCP tunnels), destination rewrite and group indirection (for the SDN
load balancer's weighted round robin).
"""

from __future__ import annotations

import bisect
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..net.addresses import WorkerAddress
from ..net.ethernet import EthernetFrame

#: Virtual port number addressing the controller (cf. OFPP_CONTROLLER).
OFPP_CONTROLLER = 0xFFFFFFFD


@dataclass(frozen=True)
class Match:
    """A wildcard-capable match over frame headers and ingress port."""

    in_port: Optional[int] = None
    dl_src: Optional[WorkerAddress] = None
    dl_dst: Optional[WorkerAddress] = None
    ether_type: Optional[int] = None

    def matches(self, frame: EthernetFrame, in_port: int) -> bool:
        if self.in_port is not None and in_port != self.in_port:
            return False
        if self.dl_src is not None and frame.src != self.dl_src:
            return False
        if self.dl_dst is not None and frame.dst != self.dl_dst:
            return False
        if self.ether_type is not None and frame.ethertype != self.ether_type:
            return False
        return True

    def matches_key(self, dl_dst: WorkerAddress, dl_src: WorkerAddress,
                    in_port: int, ether_type: int) -> bool:
        """Like :meth:`matches`, but against an exact-match cache key.

        The key carries every field a :class:`Match` can constrain, so
        this decides *exactly* whether a frame with these headers would
        be matched — the property the exact-match cache relies on."""
        if self.in_port is not None and in_port != self.in_port:
            return False
        if self.dl_src is not None and dl_src != self.dl_src:
            return False
        if self.dl_dst is not None and dl_dst != self.dl_dst:
            return False
        if self.ether_type is not None and ether_type != self.ether_type:
            return False
        return True

    def covers(self, other: "Match") -> bool:
        """True if every frame matched by ``other`` is matched by ``self``."""
        for name in ("in_port", "dl_src", "dl_dst", "ether_type"):
            mine = getattr(self, name)
            theirs = getattr(other, name)
            if mine is not None and mine != theirs:
                return False
        return True

    def describe(self) -> str:
        parts = []
        if self.in_port is not None:
            parts.append("in_port=%d" % self.in_port)
        if self.dl_src is not None:
            parts.append("dl_src=%s" % self.dl_src)
        if self.dl_dst is not None:
            parts.append("dl_dst=%s" % self.dl_dst)
        if self.ether_type is not None:
            parts.append("ether_type=0x%04x" % self.ether_type)
        return ", ".join(parts) or "any"


# -- actions ---------------------------------------------------------------


@dataclass(frozen=True)
class Action:
    """Base class for flow actions."""


@dataclass(frozen=True)
class Output(Action):
    """Emit the frame on a switch port (or OFPP_CONTROLLER)."""

    port: int


@dataclass(frozen=True)
class SetTunnelDst(Action):
    """Select the peer host for a subsequent tunnel-port output."""

    host: str


@dataclass(frozen=True)
class SetDlDst(Action):
    """Rewrite the destination worker address (SDN load balancing, §4)."""

    address: WorkerAddress


@dataclass(frozen=True)
class GroupAction(Action):
    """Indirect through a group-table entry."""

    group_id: int


# -- flow entries ------------------------------------------------------------

_entry_ids = itertools.count(1)


@dataclass
class FlowEntry:
    """One rule: match + action list + priority + timeouts + counters."""

    match: Match
    actions: Tuple[Action, ...]
    priority: int = 100
    idle_timeout: Optional[float] = None
    cookie: int = 0
    entry_id: int = field(default_factory=lambda: next(_entry_ids))
    packets: int = 0
    bytes: int = 0
    installed_at: float = 0.0
    last_used: float = 0.0

    def __post_init__(self) -> None:
        self.actions = tuple(self.actions)

    def touch(self, now: float, nbytes: int) -> None:
        self.packets += 1
        self.bytes += nbytes
        self.last_used = now

    def idle_expired(self, now: float) -> bool:
        if self.idle_timeout is None:
            return False
        reference = self.last_used if self.packets else self.installed_at
        return now - reference >= self.idle_timeout

    def describe(self) -> str:
        return "[prio=%d] match(%s) -> %s" % (
            self.priority, self.match.describe(),
            ", ".join(type(a).__name__ for a in self.actions),
        )


#: Exact-match cache key: every header field a :class:`Match` can
#: constrain — ``(dl_dst, dl_src, in_port, ether_type)``. Because the
#: key covers the full match space, two frames with equal keys always
#: resolve to the same table entry.
CacheKey = Tuple[WorkerAddress, WorkerAddress, int, int]


class ExactMatchCache:
    """Megaflow-style exact-match cache in front of the priority table.

    The priority table is authoritative; the cache memoizes its answer
    (the matched :class:`FlowEntry`, or ``None`` for a table miss) per
    exact header key. Invalidation is *overlapping-priority aware*:

    * an ADD drops exactly the keys whose answer the new entry could
      change — keys the new match covers where the cached answer is a
      miss or an entry of equal-or-lower priority (equal priority also
      covers OpenFlow ADD's replace-in-place semantics);
    * a delete/expiry drops the keys whose cached answer *is* one of
      the removed entries (a removal can never create a better match
      for a key it did not answer);
    * table loss or environment changes (switch crash, GroupMod,
      PortStatus, SwitchReconnect) clear the whole cache.

    Hit/miss/invalidation counters feed the perf benchmarks; the cache
    never affects which entry a lookup returns, so virtual-time results
    and flow counters are identical with or without it.
    """

    #: Bound on cached keys; on overflow the cache is simply cleared
    #: (rare: the key space is per-(app, worker) pairs actually seen).
    MAX_ENTRIES = 8192

    def __init__(self):
        self._cache: Dict[CacheKey, Optional[FlowEntry]] = {}
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    def __len__(self) -> int:
        return len(self._cache)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def clear(self) -> None:
        if self._cache:
            self.invalidations += len(self._cache)
            self._cache.clear()

    def invalidate_for_add(self, entry: FlowEntry) -> None:
        match = entry.match
        priority = entry.priority
        stale = [key for key, cached in self._cache.items()
                 if (cached is None or cached.priority <= priority)
                 and match.matches_key(*key)]
        for key in stale:
            del self._cache[key]
        self.invalidations += len(stale)

    def invalidate_entries(self, removed: List[FlowEntry]) -> None:
        if not removed:
            return
        gone = {id(entry) for entry in removed}
        stale = [key for key, cached in self._cache.items()
                 if cached is not None and id(cached) in gone]
        for key in stale:
            del self._cache[key]
        self.invalidations += len(stale)


class FlowTable:
    """Priority-bucketed flow rules with exact-overlap replacement.

    Entries live in per-priority buckets (insertion-ordered), so ADD
    costs O(bucket) instead of a full re-sort, and lookup walks the
    buckets from highest priority down, short-circuiting on the first
    match. Among equal priorities the earliest-installed slot wins
    (deterministic); adding an entry whose match and priority equal an
    existing entry replaces it in place (OpenFlow ADD semantics).

    An :class:`ExactMatchCache` memoizes :meth:`lookup_cached` answers;
    every table mutation invalidates the affected keys.
    """

    def __init__(self):
        self._buckets: Dict[int, List[FlowEntry]] = {}
        #: Bucket priorities, kept sorted descending.
        self._priorities: List[int] = []
        self.cache = ExactMatchCache()

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._buckets.values())

    def __iter__(self):
        entries: List[FlowEntry] = []
        for priority in self._priorities:
            entries.extend(self._buckets[priority])
        return iter(entries)

    def add(self, entry: FlowEntry, now: float = 0.0) -> FlowEntry:
        entry.installed_at = now
        entry.last_used = now
        bucket = self._buckets.get(entry.priority)
        if bucket is None:
            bucket = self._buckets[entry.priority] = []
            position = bisect.bisect_left(
                [-p for p in self._priorities], -entry.priority)
            self._priorities.insert(position, entry.priority)
            bucket.append(entry)
        else:
            for i, existing in enumerate(bucket):
                if existing.match == entry.match:
                    bucket[i] = entry
                    break
            else:
                bucket.append(entry)
        self.cache.invalidate_for_add(entry)
        return entry

    def lookup(self, frame: EthernetFrame, in_port: int) -> Optional[FlowEntry]:
        for priority in self._priorities:
            for entry in self._buckets[priority]:
                if entry.match.matches(frame, in_port):
                    return entry
        return None

    def lookup_cached(self, frame: EthernetFrame,
                      in_port: int) -> Optional[FlowEntry]:
        """Exact-match-cached lookup; same answer as :meth:`lookup`."""
        cache = self.cache
        key = (frame.dst, frame.src, in_port, frame.ethertype)
        entry = cache._cache.get(key, _CACHE_ABSENT)
        if entry is not _CACHE_ABSENT:
            cache.hits += 1
            return entry
        cache.misses += 1
        entry = self.lookup(frame, in_port)
        if len(cache._cache) >= cache.MAX_ENTRIES:
            cache.clear()
        cache._cache[key] = entry
        return entry

    def invalidate_cache(self) -> None:
        """Drop every cached answer (environment changed: group tables,
        port set, switch reconnect — anything outside the table)."""
        self.cache.clear()

    def _drop_bucket_entries(self, removed: List[FlowEntry]) -> None:
        for entry in removed:
            bucket = self._buckets.get(entry.priority)
            if bucket is None:
                continue
            bucket.remove(entry)
            if not bucket:
                del self._buckets[entry.priority]
                self._priorities.remove(entry.priority)
        self.cache.invalidate_entries(removed)

    def remove(self, match: Match, strict: bool = False,
               priority: Optional[int] = None) -> List[FlowEntry]:
        """Delete entries; non-strict removes every entry *covered* by
        match. Strict deletion also requires the priority to match when
        one is given (OpenFlow delete_strict semantics)."""
        if strict:
            removed = [e for e in self
                       if e.match == match
                       and (priority is None or e.priority == priority)]
        else:
            removed = [e for e in self if match.covers(e.match)]
        self._drop_bucket_entries(removed)
        return removed

    def remove_by_cookie(self, cookie: int) -> List[FlowEntry]:
        removed = [e for e in self if e.cookie == cookie]
        self._drop_bucket_entries(removed)
        return removed

    def expire_idle(self, now: float) -> List[FlowEntry]:
        expired = [e for e in self if e.idle_expired(now)]
        self._drop_bucket_entries(expired)
        return expired

    def referencing_port(self, port: int) -> List[FlowEntry]:
        """Entries that match on or output to the given port."""
        hits = []
        for entry in self:
            if entry.match.in_port == port:
                hits.append(entry)
                continue
            if any(isinstance(a, Output) and a.port == port for a in entry.actions):
                hits.append(entry)
        return hits


#: Sentinel distinguishing "cached miss" (None) from "not cached".
_CACHE_ABSENT = object()

"""Flow matches, actions and flow tables (OpenFlow-style).

The match fields are exactly those Typhoon's rules use (Table 3):
``in_port``, ``dl_src``, ``dl_dst`` and ``ether_type``; any field may be
wildcarded. Actions cover the paper's needs: output to ports, output to
the controller, set-tunnel-destination (for remote transfers over host
TCP tunnels), destination rewrite and group indirection (for the SDN
load balancer's weighted round robin).
"""

from __future__ import annotations

import bisect
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..net.addresses import WorkerAddress
from ..net.ethernet import EthernetFrame

#: Virtual port number addressing the controller (cf. OFPP_CONTROLLER).
OFPP_CONTROLLER = 0xFFFFFFFD


@dataclass(frozen=True)
class Match:
    """A wildcard-capable match over frame headers and ingress port."""

    in_port: Optional[int] = None
    dl_src: Optional[WorkerAddress] = None
    dl_dst: Optional[WorkerAddress] = None
    ether_type: Optional[int] = None

    def matches(self, frame: EthernetFrame, in_port: int) -> bool:
        if self.in_port is not None and in_port != self.in_port:
            return False
        if self.dl_src is not None and frame.src != self.dl_src:
            return False
        if self.dl_dst is not None and frame.dst != self.dl_dst:
            return False
        if self.ether_type is not None and frame.ethertype != self.ether_type:
            return False
        return True

    def matches_key(self, dl_dst: WorkerAddress, dl_src: WorkerAddress,
                    in_port: int, ether_type: int) -> bool:
        """Like :meth:`matches`, but against an exact-match cache key.

        The key carries every field a :class:`Match` can constrain, so
        this decides *exactly* whether a frame with these headers would
        be matched — the property the exact-match cache relies on."""
        if self.in_port is not None and in_port != self.in_port:
            return False
        if self.dl_src is not None and dl_src != self.dl_src:
            return False
        if self.dl_dst is not None and dl_dst != self.dl_dst:
            return False
        if self.ether_type is not None and ether_type != self.ether_type:
            return False
        return True

    @property
    def mask_bits(self) -> int:
        """Bitmask of constrained fields, in cache-key field order
        (bit0=dl_dst, bit1=dl_src, bit2=in_port, bit3=ether_type)."""
        bits = 0
        if self.dl_dst is not None:
            bits |= 1
        if self.dl_src is not None:
            bits |= 2
        if self.in_port is not None:
            bits |= 4
        if self.ether_type is not None:
            bits |= 8
        return bits

    def covers(self, other: "Match") -> bool:
        """True if every frame matched by ``other`` is matched by ``self``."""
        for name in ("in_port", "dl_src", "dl_dst", "ether_type"):
            mine = getattr(self, name)
            theirs = getattr(other, name)
            if mine is not None and mine != theirs:
                return False
        return True

    def describe(self) -> str:
        parts = []
        if self.in_port is not None:
            parts.append("in_port=%d" % self.in_port)
        if self.dl_src is not None:
            parts.append("dl_src=%s" % self.dl_src)
        if self.dl_dst is not None:
            parts.append("dl_dst=%s" % self.dl_dst)
        if self.ether_type is not None:
            parts.append("ether_type=0x%04x" % self.ether_type)
        return ", ".join(parts) or "any"


# -- actions ---------------------------------------------------------------


@dataclass(frozen=True)
class Action:
    """Base class for flow actions."""


@dataclass(frozen=True)
class Output(Action):
    """Emit the frame on a switch port (or OFPP_CONTROLLER)."""

    port: int


@dataclass(frozen=True)
class SetTunnelDst(Action):
    """Select the peer host for a subsequent tunnel-port output."""

    host: str


@dataclass(frozen=True)
class SetDlDst(Action):
    """Rewrite the destination worker address (SDN load balancing, §4)."""

    address: WorkerAddress


@dataclass(frozen=True)
class GroupAction(Action):
    """Indirect through a group-table entry."""

    group_id: int


@dataclass(frozen=True)
class Meter(Action):
    """Pass the frame through a rate meter before further processing.

    Installed via MeterMod; an uninstalled meter id passes traffic
    through unmetered (rate policing fails open, never drops)."""

    meter_id: int


def train_forward_plan(
        actions) -> Optional[List[Tuple[int, Optional[str]]]]:
    """Precompile a pure-forwarding action list for the train fast path.

    Returns ``[(port_no, tun_dst), ...]`` — one entry per frame copy the
    switch would emit, with the tunnel destination in effect at that
    output — when the action list consists solely of :class:`Output` and
    :class:`SetTunnelDst` actions. Anything that could diverge per frame
    or touch side machinery (meters, groups, address rewrites,
    controller/table outputs) returns ``None``, sending the train down
    the per-frame matching path. The switch still validates each planned
    port (existence, up, kind) against its own tables before fusing.
    """
    plan: List[Tuple[int, Optional[str]]] = []
    tun_dst: Optional[str] = None
    for action in actions:
        kind = type(action)
        if kind is Output:
            port = action.port
            if port == OFPP_CONTROLLER:
                return None
            plan.append((port, tun_dst))
        elif kind is SetTunnelDst:
            tun_dst = action.host
        else:
            return None
    return plan or None


# -- flow entries ------------------------------------------------------------

_entry_ids = itertools.count(1)


@dataclass
class FlowEntry:
    """One rule: match + action list + priority + timeouts + counters."""

    match: Match
    actions: Tuple[Action, ...]
    priority: int = 100
    idle_timeout: Optional[float] = None
    cookie: int = 0
    entry_id: int = field(default_factory=lambda: next(_entry_ids))
    packets: int = 0
    bytes: int = 0
    installed_at: float = 0.0
    last_used: float = 0.0

    def __post_init__(self) -> None:
        self.actions = tuple(self.actions)

    def touch(self, now: float, nbytes: int) -> None:
        self.packets += 1
        self.bytes += nbytes
        self.last_used = now

    def idle_expired(self, now: float) -> bool:
        if self.idle_timeout is None:
            return False
        reference = self.last_used if self.packets else self.installed_at
        return now - reference >= self.idle_timeout

    def describe(self) -> str:
        return "[prio=%d] match(%s) -> %s" % (
            self.priority, self.match.describe(),
            ", ".join(type(a).__name__ for a in self.actions),
        )


#: Full cache key: every header field a :class:`Match` can constrain —
#: ``(dl_dst, dl_src, in_port, ether_type)``. Megaflow entries cache the
#: projection of this key onto the fields the table walk actually
#: examined; because the projection covers every compared field, two
#: frames with equal projections always resolve to the same table entry.
CacheKey = Tuple[WorkerAddress, WorkerAddress, int, int]

#: All four key fields constrained.
_FULL_MASK = 0xF

#: mask -> indices of the key fields it includes, precomputed.
_MASK_FIELDS = tuple(
    tuple(i for i in range(4) if mask >> i & 1) for mask in range(16)
)


def _project(mask: int, key: CacheKey) -> Tuple:
    fields = _MASK_FIELDS[mask]
    return tuple(key[i] for i in fields)


class MegaflowCache:
    """Masked (megaflow-style) lookup cache in front of the priority table.

    The priority table is authoritative; the cache memoizes its answers
    (the matched :class:`FlowEntry`, or ``None`` for a table miss) under
    *masked* keys, as in Open vSwitch's megaflow cache. A miss walks the
    table, accumulating the union of the constrained-field masks of every
    entry it examines; the result is stored under the frame key projected
    onto that union. Any later frame that agrees on those fields takes the
    identical path through the walk and therefore gets the same answer —
    so a wildcard-heavy rule set (e.g. one catch-all rule) collapses whole
    swaths of the header space onto a single cached megaflow instead of
    one cache line per exact header combination.

    Invalidation is *overlapping-priority aware*:

    * an ADD drops the megaflows whose answer the new entry could change —
      those whose cached answer is a miss or an entry of equal-or-lower
      priority, where the new match could coincide with the megaflow's
      key space (fields the megaflow leaves unmasked are wildcards, so
      they are conservatively treated as "could coincide");
    * a delete/expiry drops the megaflows whose cached answer *is* one of
      the removed entries (a removal can never create a better match for
      a key it did not answer);
    * table loss or environment changes (switch crash, GroupMod,
      PortStatus, SwitchReconnect) clear the whole cache.

    Hit/miss/invalidation counters feed the perf benchmarks; the cache
    never affects which entry a lookup returns, so virtual-time results
    and flow counters are identical with or without it.
    """

    #: Bound on cached megaflows across all masks; on overflow the cache
    #: is simply cleared (rare: masked keys collapse the key space hard).
    MAX_ENTRIES = 8192

    def __init__(self):
        #: mask -> {projected key -> entry-or-None}
        self._masks: Dict[int, Dict[Tuple, Optional[FlowEntry]]] = {}
        self._size = 0
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    def __len__(self) -> int:
        return self._size

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def clear(self) -> None:
        if self._size:
            self.invalidations += self._size
            self._masks.clear()
            self._size = 0

    def _drop_empty_masks(self) -> None:
        for mask in [m for m, bucket in self._masks.items() if not bucket]:
            del self._masks[mask]

    def invalidate_for_add(self, entry: FlowEntry) -> None:
        match = entry.match
        priority = entry.priority
        values = (match.dl_dst, match.dl_src, match.in_port,
                  match.ether_type)
        dropped = 0
        for mask, bucket in self._masks.items():
            fields = _MASK_FIELDS[mask]
            stale = []
            for mkey, cached in bucket.items():
                if cached is not None and cached.priority > priority:
                    continue
                for j, i in enumerate(fields):
                    constrained = values[i]
                    if constrained is not None and constrained != mkey[j]:
                        break
                else:
                    stale.append(mkey)
            for mkey in stale:
                del bucket[mkey]
            dropped += len(stale)
        if dropped:
            self._drop_empty_masks()
            self._size -= dropped
            self.invalidations += dropped

    def invalidate_entries(self, removed: List[FlowEntry]) -> None:
        if not removed:
            return
        gone = {id(entry) for entry in removed}
        dropped = 0
        for bucket in self._masks.values():
            stale = [mkey for mkey, cached in bucket.items()
                     if cached is not None and id(cached) in gone]
            for mkey in stale:
                del bucket[mkey]
            dropped += len(stale)
        if dropped:
            self._drop_empty_masks()
            self._size -= dropped
            self.invalidations += dropped


#: Backwards-compatible alias (the pre-megaflow name).
ExactMatchCache = MegaflowCache


class FlowTable:
    """Priority-bucketed flow rules with exact-overlap replacement.

    Entries live in per-priority buckets (insertion-ordered), so ADD
    costs O(bucket) instead of a full re-sort, and lookup walks the
    buckets from highest priority down, short-circuiting on the first
    match. Among equal priorities the earliest-installed slot wins
    (deterministic); adding an entry whose match and priority equal an
    existing entry replaces it in place (OpenFlow ADD semantics).

    A :class:`MegaflowCache` memoizes :meth:`lookup_cached` answers;
    every table mutation invalidates the affected megaflows.
    """

    def __init__(self):
        self._buckets: Dict[int, List[FlowEntry]] = {}
        #: Bucket priorities, kept sorted descending.
        self._priorities: List[int] = []
        self.cache = MegaflowCache()

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._buckets.values())

    def __iter__(self):
        entries: List[FlowEntry] = []
        for priority in self._priorities:
            entries.extend(self._buckets[priority])
        return iter(entries)

    def add(self, entry: FlowEntry, now: float = 0.0) -> FlowEntry:
        entry.installed_at = now
        entry.last_used = now
        bucket = self._buckets.get(entry.priority)
        if bucket is None:
            bucket = self._buckets[entry.priority] = []
            position = bisect.bisect_left(
                [-p for p in self._priorities], -entry.priority)
            self._priorities.insert(position, entry.priority)
            bucket.append(entry)
        else:
            for i, existing in enumerate(bucket):
                if existing.match == entry.match:
                    bucket[i] = entry
                    break
            else:
                bucket.append(entry)
        self.cache.invalidate_for_add(entry)
        return entry

    def lookup(self, frame: EthernetFrame, in_port: int) -> Optional[FlowEntry]:
        for priority in self._priorities:
            for entry in self._buckets[priority]:
                if entry.match.matches(frame, in_port):
                    return entry
        return None

    def lookup_cached(self, frame: EthernetFrame,
                      in_port: int) -> Optional[FlowEntry]:
        """Megaflow-cached lookup; same answer as :meth:`lookup`.

        A hit under *any* mask is correct: each megaflow covers every
        field its walk compared, so frames agreeing on those fields take
        the same decision path through the table (probe order is free).
        """
        cache = self.cache
        key = (frame.dst, frame.src, in_port, frame.ethertype)
        for mask, bucket in cache._masks.items():
            mkey = key if mask == _FULL_MASK else _project(mask, key)
            entry = bucket.get(mkey, _CACHE_ABSENT)
            if entry is not _CACHE_ABSENT:
                cache.hits += 1
                return entry
        cache.misses += 1
        # Authoritative walk; union the constrained fields of every entry
        # examined (rejected or matched) — the megaflow's mask.
        union = 0
        result = None
        for priority in self._priorities:
            for entry in self._buckets[priority]:
                match = entry.match
                union |= match.mask_bits
                if match.matches(frame, in_port):
                    result = entry
                    break
            if result is not None:
                break
        if cache._size >= cache.MAX_ENTRIES:
            cache.clear()
        mkey = key if union == _FULL_MASK else _project(union, key)
        bucket = cache._masks.get(union)
        if bucket is None:
            bucket = cache._masks[union] = {}
        bucket[mkey] = result
        cache._size += 1
        return result

    def invalidate_cache(self) -> None:
        """Drop every cached answer (environment changed: group tables,
        port set, switch reconnect — anything outside the table)."""
        self.cache.clear()

    def _drop_bucket_entries(self, removed: List[FlowEntry]) -> None:
        for entry in removed:
            bucket = self._buckets.get(entry.priority)
            if bucket is None:
                continue
            bucket.remove(entry)
            if not bucket:
                del self._buckets[entry.priority]
                self._priorities.remove(entry.priority)
        self.cache.invalidate_entries(removed)

    def remove(self, match: Match, strict: bool = False,
               priority: Optional[int] = None) -> List[FlowEntry]:
        """Delete entries; non-strict removes every entry *covered* by
        match. Strict deletion also requires the priority to match when
        one is given (OpenFlow delete_strict semantics)."""
        if strict:
            removed = [e for e in self
                       if e.match == match
                       and (priority is None or e.priority == priority)]
        else:
            removed = [e for e in self if match.covers(e.match)]
        self._drop_bucket_entries(removed)
        return removed

    def remove_by_cookie(self, cookie: int) -> List[FlowEntry]:
        removed = [e for e in self if e.cookie == cookie]
        self._drop_bucket_entries(removed)
        return removed

    def expire_idle(self, now: float) -> List[FlowEntry]:
        expired = [e for e in self if e.idle_expired(now)]
        self._drop_bucket_entries(expired)
        return expired

    def referencing_port(self, port: int) -> List[FlowEntry]:
        """Entries that match on or output to the given port."""
        hits = []
        for entry in self:
            if entry.match.in_port == port:
                hits.append(entry)
                continue
            if any(isinstance(a, Output) and a.port == port for a in entry.actions):
                hits.append(entry)
        return hits


#: Sentinel distinguishing "cached miss" (None) from "not cached".
_CACHE_ABSENT = object()

"""SDN controller runtime (the Floodlight stand-in).

The controller owns control channels to every switch and hosts *control
plane applications* (§4). Applications subscribe to switch events
(PacketIn, PortStatus, FlowRemoved, stats replies) and send messages
through the controller's helpers. All controller <-> switch traffic pays
half an OpenFlow RTT each way.

The Typhoon-specific logic (rule templates, control tuples, coordinator
integration) lives in :mod:`repro.core.controller`; this module is the
generic substrate any app runs on.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional, Sequence, Tuple

from ..sim.audit import LAYER_CONTROLLER, R_CONTROL_BACKLOG, DeliveryLedger
from ..sim.costs import CostModel
from ..sim.engine import Engine, Event, Process
from .flow import Action, Match
from .group import Bucket
from .openflow import (
    ADD,
    DELETE,
    FlowMod,
    FlowRemoved,
    FlowStatsReply,
    FlowStatsRequest,
    GroupMod,
    Message,
    MeterMod,
    MeterStatsReply,
    MeterStatsRequest,
    PacketIn,
    PacketOut,
    PortStatsReply,
    PortStatsRequest,
    PortStatus,
    RoleReply,
    SwitchReconnect,
)
from .switch import SoftwareSwitch


class ControllerApp:
    """Base class for SDN control plane applications.

    Subclasses override the ``on_*`` hooks they care about. Hooks run
    synchronously in event-arrival order; long-running work should be
    spawned as a process via ``self.controller.engine.process``.
    """

    name = "app"

    def __init__(self):
        self.controller: Optional["SdnController"] = None

    def attach(self, controller: "SdnController") -> None:
        self.controller = controller
        self.on_start()

    # -- overridable hooks -------------------------------------------------

    def on_start(self) -> None:
        """Called once when the app is registered."""

    def on_stop(self) -> None:
        """Called when the controller shuts down."""

    def on_switch_connected(self, switch: SoftwareSwitch) -> None:
        pass

    def on_switch_reconnect(self, dpid: str) -> None:
        """The switch restarted with empty tables; re-sync any state."""

    def on_packet_in(self, message: PacketIn) -> None:
        pass

    def on_port_status(self, message: PortStatus) -> None:
        pass

    def on_flow_removed(self, message: FlowRemoved) -> None:
        pass

    def on_flow_stats(self, message: FlowStatsReply) -> None:
        pass

    def on_port_stats(self, message: PortStatsReply) -> None:
        pass

    def on_meter_stats(self, message: MeterStatsReply) -> None:
        pass

    # -- high-availability hooks (warm-standby state sync) -----------------

    def snapshot(self) -> Optional[Dict[str, Any]]:
        """Serializable state a warm standby needs to take over without a
        cold re-learn. ``None`` (the default) means the app is stateless
        or can rebuild from switch events alone."""
        return None

    def restore(self, state: Dict[str, Any]) -> None:
        """Load a :meth:`snapshot` published by a former leader."""

    def desired_flows(self) -> Optional[Dict[Tuple[str, Match],
                                             Tuple[int, Tuple[Action, ...]]]]:
        """The app's intended rule set, ``(dpid, match) -> (priority,
        actions)``, for the post-failover anti-entropy sweep. ``None``
        (the default) means the app installs no flow rules."""
        return None


class SdnController:
    """Dispatches switch events to apps and sends control messages."""

    #: Bound on events queued while the controller is down. The switch
    #: connections buffer on the controller's behalf during an outage;
    #: a real process would run out of socket/queue memory, so overflow
    #: is dropped tail-first and attributed in the delivery ledger.
    MAX_EVENT_BACKLOG = 4096

    def __init__(self, engine: Engine, costs: CostModel, name: str = "controller"):
        self.engine = engine
        self.costs = costs
        self.name = name
        self.switches: Dict[str, SoftwareSwitch] = {}
        self.apps: List[ControllerApp] = []
        self._tasks: List[Process] = []
        self._pending_stats: Dict[Tuple[str, type], Deque[Event]] = {}
        self.messages_sent = 0
        self.events_received = 0
        # Chaos-injection state (see repro.sim.faults). While the
        # controller is down both inbound events and outbound sends queue
        # (switch connections buffer; apps are simply not running) and
        # flush FIFO on recovery. ``control_*`` models a degraded control
        # channel and applies only to PacketIn/PacketOut traffic.
        self.up = True
        self.outages = 0
        self.control_dropped = 0
        self.control_extra_delay = 0.0
        self.control_drop_rate = 0.0
        self.control_rng = None
        self._event_backlog: List[Message] = []
        self._send_backlog: List[Tuple[str, Message]] = []
        self.max_event_backlog = self.MAX_EVENT_BACKLOG
        self.event_backlog_high_water = 0
        self.event_backlog_dropped = 0
        #: Optional delivery ledger for attributing backlog-overflow
        #: drops (wired by the cluster runtime).
        self.ledger: Optional[DeliveryLedger] = None
        # Replicated-control-plane state. ``channel_name`` set means this
        # controller reaches switches through a named role-managed
        # channel (HA replica); ``rule_cookie`` stamps installed rules
        # with the replica's election generation for the anti-entropy
        # reconciliation sweep; RoleReplies are handed to the HA layer.
        self.channel_name: Optional[str] = None
        self.rule_cookie = 0
        self.role_reply_handler: Optional[Callable[[RoleReply], None]] = None

    # -- topology ---------------------------------------------------------

    def connect_switch(self, switch: SoftwareSwitch) -> None:
        if switch.dpid in self.switches:
            raise ValueError("switch %s already connected" % switch.dpid)
        self.switches[switch.dpid] = switch
        switch.connect_controller(self._receive)
        for app in self.apps:
            app.on_switch_connected(switch)

    def register_app(self, app: ControllerApp) -> ControllerApp:
        self.apps.append(app)
        app.attach(self)
        for switch in self.switches.values():
            app.on_switch_connected(switch)
        return app

    def app(self, name: str) -> ControllerApp:
        for candidate in self.apps:
            if candidate.name == name:
                return candidate
        raise KeyError("no app named %r" % name)

    # -- event dispatch ------------------------------------------------------

    def _receive(self, message: Message) -> None:
        self.events_received += 1
        if not self.up:
            backlog = self._event_backlog
            if len(backlog) >= self.max_event_backlog:
                self.event_backlog_dropped += 1
                dpid = getattr(message, "dpid", None)
                switch = self.switches.get(dpid) if dpid is not None else None
                if switch is not None:
                    switch.controller_backlog_dropped += 1
                if isinstance(message, PacketIn) and self.ledger is not None:
                    # The switch counted this frame controller-delivered
                    # when it punted it; move it to an attributed drop.
                    self.ledger.record_frame_controller_dropped(
                        LAYER_CONTROLLER, R_CONTROL_BACKLOG, message.frame)
                return
            backlog.append(message)
            if len(backlog) > self.event_backlog_high_water:
                self.event_backlog_high_water = len(backlog)
            return
        if isinstance(message, PacketIn):
            # Control-channel faults hit the packet path, not the
            # connection-level events (PortStatus etc. ride the reliable
            # session the switch re-establishes on its own).
            if (self.control_drop_rate > 0.0 and self.control_rng is not None
                    and self.control_rng.random() < self.control_drop_rate):
                self.control_dropped += 1
                return
            if self.control_extra_delay > 0.0:
                self.engine.schedule(self.control_extra_delay,
                                     self._dispatch, message)
                return
        self._dispatch(message)

    def _dispatch(self, message: Message) -> None:
        if isinstance(message, PacketIn):
            for app in self.apps:
                app.on_packet_in(message)
        elif isinstance(message, SwitchReconnect):
            for app in self.apps:
                app.on_switch_reconnect(message.dpid)
        elif isinstance(message, PortStatus):
            for app in self.apps:
                app.on_port_status(message)
        elif isinstance(message, FlowRemoved):
            for app in self.apps:
                app.on_flow_removed(message)
        elif isinstance(message, FlowStatsReply):
            self._resolve_stats(message.dpid, FlowStatsReply, message)
            for app in self.apps:
                app.on_flow_stats(message)
        elif isinstance(message, PortStatsReply):
            self._resolve_stats(message.dpid, PortStatsReply, message)
            for app in self.apps:
                app.on_port_stats(message)
        elif isinstance(message, MeterStatsReply):
            self._resolve_stats(message.dpid, MeterStatsReply, message)
            for app in self.apps:
                app.on_meter_stats(message)
        elif isinstance(message, RoleReply):
            handler = self.role_reply_handler
            if handler is not None:
                handler(message)
        else:
            raise TypeError("controller cannot handle %r" % (message,))

    def _resolve_stats(self, dpid: str, kind: type, message: Message) -> None:
        queue = self._pending_stats.get((dpid, kind))
        if queue:
            gate = queue.popleft()
            if not gate.triggered:
                gate.succeed(message)

    # -- outbound messaging --------------------------------------------------

    def send(self, dpid: str, message: Message) -> None:
        switch = self.switches.get(dpid)
        if switch is None:
            raise KeyError("no switch %r connected" % dpid)
        self.messages_sent += 1
        if not self.up:
            self._send_backlog.append((dpid, message))
            return
        self._transmit(dpid, message)

    def _transmit(self, dpid: str, message: Message) -> None:
        switch = self.switches[dpid]
        delay = self.costs.openflow_rtt / 2
        if isinstance(message, PacketOut):
            if (self.control_drop_rate > 0.0 and self.control_rng is not None
                    and self.control_rng.random() < self.control_drop_rate):
                self.control_dropped += 1
                return
            delay += self.control_extra_delay
        if self.channel_name is not None:
            # Role-managed channel: the switch polices mastership and
            # generation-id before applying the message.
            self.engine.schedule(delay, switch.handle_message_from,
                                 self.channel_name, message)
            return
        self.engine.schedule(delay, switch.handle_message, message)

    # -- chaos injection (see repro.sim.faults) ----------------------------

    def fail(self) -> None:
        """Controller outage: apps stop reacting, messages queue."""
        if not self.up:
            return
        self.up = False
        self.outages += 1

    def recover(self) -> None:
        """End an outage; drain queued events then queued sends, FIFO.

        Backlogged PacketIns bypass the drop/delay knobs: those model
        the degraded live channel, while the backlog arrives over the
        freshly re-established sessions."""
        if self.up:
            return
        self.up = True
        events, self._event_backlog = self._event_backlog, []
        sends, self._send_backlog = self._send_backlog, []
        for message in events:
            self._dispatch(message)
        for dpid, message in sends:
            if dpid in self.switches:
                self._transmit(dpid, message)

    def drop_backlogs(self) -> None:
        """Crash semantics (HA replica): events and sends queued during
        the outage die with the process instead of flushing on recovery.
        Queued PacketIns were counted controller-delivered by their
        switch, so they move to attributed drops."""
        events, self._event_backlog = self._event_backlog, []
        self._send_backlog = []
        for message in events:
            if isinstance(message, PacketIn) and self.ledger is not None:
                self.ledger.record_frame_controller_dropped(
                    LAYER_CONTROLLER, R_CONTROL_BACKLOG, message.frame)

    def set_control_fault(self, extra_delay: float = 0.0,
                          drop_rate: float = 0.0, rng=None) -> None:
        """Degrade (or with defaults, heal) the PacketIn/PacketOut path."""
        self.control_extra_delay = extra_delay
        self.control_drop_rate = drop_rate
        self.control_rng = rng if drop_rate > 0.0 else None

    def install_flow(
        self,
        dpid: str,
        match: Match,
        actions: Sequence[Action],
        priority: int = 100,
        idle_timeout: Optional[float] = None,
        cookie: int = 0,
    ) -> None:
        self.send(dpid, FlowMod(ADD, match, tuple(actions), priority,
                                idle_timeout, cookie or self.rule_cookie))

    def delete_flows(self, dpid: str, match: Match, strict: bool = False,
                     priority: int = 100) -> None:
        command = "delete_strict" if strict else DELETE
        self.send(dpid, FlowMod(command, match, priority=priority))

    def install_group(self, dpid: str, group_id: int, group_type: str,
                      buckets: Sequence[Bucket], modify: bool = False) -> None:
        command = "modify" if modify else ADD
        self.send(dpid, GroupMod(command, group_id, group_type, tuple(buckets)))

    def packet_out(self, dpid: str, message: PacketOut) -> None:
        self.send(dpid, message)

    def install_meter(self, dpid: str, meter_id: int,
                      rate_bytes_per_sec: float, burst_bytes: float = 0.0,
                      max_queue_seconds: float = 0.05,
                      modify: bool = False) -> None:
        command = "modify" if modify else ADD
        self.send(dpid, MeterMod(command, meter_id, rate_bytes_per_sec,
                                 burst_bytes, max_queue_seconds))

    def delete_meter(self, dpid: str, meter_id: int) -> None:
        self.send(dpid, MeterMod(DELETE, meter_id))

    def request_flow_stats(self, dpid: str,
                           match: Optional[Match] = None) -> Event:
        """Send a FlowStatsRequest; the returned event fires with the reply."""
        gate = self.engine.event()
        self._pending_stats.setdefault((dpid, FlowStatsReply), deque()).append(gate)
        self.send(dpid, FlowStatsRequest(match or Match()))
        return gate

    def request_port_stats(self, dpid: str,
                           port_no: Optional[int] = None) -> Event:
        gate = self.engine.event()
        self._pending_stats.setdefault((dpid, PortStatsReply), deque()).append(gate)
        self.send(dpid, PortStatsRequest(port_no))
        return gate

    def request_meter_stats(self, dpid: str,
                            meter_id: Optional[int] = None) -> Event:
        gate = self.engine.event()
        self._pending_stats.setdefault((dpid, MeterStatsReply), deque()).append(gate)
        self.send(dpid, MeterStatsRequest(meter_id))
        return gate

    # -- background tasks -------------------------------------------------------

    def every(self, interval: float, callback: Callable[[], None],
              name: str = "task") -> Process:
        """Run ``callback`` every ``interval`` virtual seconds."""

        def loop():
            while True:
                yield interval
                callback()

        task = self.engine.process(loop(), name="%s:%s" % (self.name, name))
        self._tasks.append(task)
        return task

    def shutdown(self) -> None:
        for task in self._tasks:
            task.interrupt("controller shutdown")
        for app in self.apps:
            app.on_stop()

"""SDN network hypervisor: isolated virtual SDN slices (§8).

The paper defends Typhoon's cross-layer design by pointing at "SDN
network hypervisors" (FlowVisor, OpenVirteX): data-center tenants get
fully isolated virtual SDN slices, so a tenant application like Typhoon
can program *its own* slice without conflicting with other cross-layer
applications. This module provides that layer:

* a :class:`NetworkHypervisor` sits between the physical switches and
  per-tenant :class:`SliceController` instances,
* each slice owns a set of 16-bit application address prefixes (the
  app-id space used in Typhoon worker addressing),
* southbound messages (FlowMod/GroupMod/PacketOut) are validated against
  the slice's address space — a rule that could capture or inject
  another tenant's traffic raises :class:`SliceViolation`,
* northbound events are demultiplexed: PacketIns go to the slice owning
  the frame's address space; PortStatus/FlowRemoved go to every slice
  (topology visibility is shared; traffic is isolated).
"""

from __future__ import annotations

from typing import Dict, Optional, Set, Tuple

from ..net.addresses import WorkerAddress
from ..sim.costs import CostModel
from ..sim.engine import Engine
from .controller import SdnController
from .flow import Match, SetDlDst
from .openflow import (
    DELETE,
    FlowMod,
    FlowRemoved,
    GroupMod,
    Message,
    MeterMod,
    PacketIn,
    PacketOut,
    PortStatus,
)
from .switch import SoftwareSwitch


class SliceViolation(Exception):
    """A slice tried to touch traffic outside its address space."""


class SliceController(SdnController):
    """A tenant's view of the network: an SdnController whose southbound
    messages are policed by the hypervisor."""

    def __init__(self, engine: Engine, costs: CostModel, name: str,
                 app_ids: Set[int], hypervisor: "NetworkHypervisor",
                 bandwidth_quota: Optional[float] = None):
        super().__init__(engine, costs, name=name)
        self.app_ids = set(app_ids)
        self.hypervisor = hypervisor
        self.violations = 0
        #: Max total committed meter rate (bytes/sec); None = unlimited.
        self.bandwidth_quota = bandwidth_quota
        #: (dpid, meter_id) -> committed rate for this slice's meters.
        self.committed_rates: Dict[Tuple[Optional[str], int], float] = {}

    def committed_bandwidth(self) -> float:
        """Total meter rate this slice has committed (bytes/sec)."""
        return sum(self.committed_rates.values())

    # The hypervisor connects the switches; slices must not bypass it.
    def send(self, dpid: str, message: Message) -> None:
        if dpid not in self.switches:
            raise KeyError("no switch %r visible to slice %s"
                           % (dpid, self.name))
        try:
            self.hypervisor.validate(self, message, dpid=dpid)
        except SliceViolation:
            self.violations += 1
            raise
        self.messages_sent += 1
        self.engine.schedule(
            self.costs.openflow_rtt / 2,
            self.hypervisor.forward, dpid, message,
        )


class NetworkHypervisor:
    """FlowVisor-like slicing proxy."""

    def __init__(self, engine: Engine, costs: CostModel):
        self.engine = engine
        self.costs = costs
        self.switches: Dict[str, SoftwareSwitch] = {}
        self.slices: Dict[str, SliceController] = {}
        self._owned_apps: Set[int] = set()
        #: (dpid, meter_id) -> owning slice name (meter isolation).
        self._meter_owner: Dict[Tuple[Optional[str], int], str] = {}
        self.events_demuxed = 0
        self.messages_forwarded = 0

    # -- topology --------------------------------------------------------

    def connect_switch(self, switch: SoftwareSwitch) -> None:
        if switch.dpid in self.switches:
            raise ValueError("switch %s already connected" % switch.dpid)
        if switch.channels():
            # A switch speaking the named-channel (master/slave role)
            # protocol belongs to a replicated control plane; inserting
            # the hypervisor's single anonymous channel underneath it
            # would bypass generation-id fencing.
            raise ValueError(
                "switch %s is managed by a replicated control plane; "
                "hypervisor slicing and controller HA are mutually "
                "exclusive" % switch.dpid)
        self.switches[switch.dpid] = switch
        switch.connect_controller(
            lambda message, dpid=switch.dpid: self._on_event(dpid, message))
        for slice_controller in self.slices.values():
            self._expose_switch(slice_controller, switch)

    def create_slice(self, name: str, app_ids: Set[int],
                     bandwidth_quota: Optional[float] = None,
                     ) -> SliceController:
        """Carve out a slice owning the given application prefixes.

        ``bandwidth_quota`` caps the total switch-meter rate the slice
        may commit (bytes/sec): a MeterMod that would push the slice's
        committed sum past the quota raises :class:`SliceViolation`.
        """
        if name in self.slices:
            raise ValueError("slice %r exists" % name)
        if bandwidth_quota is not None and bandwidth_quota <= 0:
            raise ValueError("bandwidth quota must be positive")
        overlap = self._owned_apps & set(app_ids)
        if overlap:
            raise ValueError("app ids %s already sliced" % sorted(overlap))
        slice_controller = SliceController(self.engine, self.costs, name,
                                           set(app_ids), self,
                                           bandwidth_quota=bandwidth_quota)
        self._owned_apps |= set(app_ids)
        self.slices[name] = slice_controller
        for switch in self.switches.values():
            self._expose_switch(slice_controller, switch)
        return slice_controller

    def _expose_switch(self, slice_controller: SliceController,
                       switch: SoftwareSwitch) -> None:
        # Register visibility without re-pointing the switch's control
        # channel (the hypervisor keeps it).
        slice_controller.switches[switch.dpid] = switch
        for app in slice_controller.apps:
            app.on_switch_connected(switch)

    # -- southbound: validation + forwarding -------------------------------

    def forward(self, dpid: str, message: Message) -> None:
        self.messages_forwarded += 1
        self.switches[dpid].handle_message(message)

    def validate(self, slice_controller: SliceController,
                 message: Message, dpid: Optional[str] = None) -> None:
        app_ids = slice_controller.app_ids
        if isinstance(message, FlowMod):
            self._validate_match(app_ids, message.match)
            self._validate_actions(app_ids, message.actions)
        elif isinstance(message, GroupMod):
            for bucket in message.buckets:
                self._validate_actions(app_ids, bucket.actions)
        elif isinstance(message, PacketOut):
            frame = message.frame
            if not self._address_ok(app_ids, frame.dst):
                raise SliceViolation(
                    "PacketOut to foreign address %s" % frame.dst)
            self._validate_actions(app_ids, message.actions)
        elif isinstance(message, MeterMod):
            self._validate_meter(slice_controller, message, dpid)
        # Stats requests are read-only: switch-wide stats are permitted
        # (FlowVisor-style slicing of counters is out of scope).

    def _validate_meter(self, slice_controller: SliceController,
                        message: MeterMod, dpid: Optional[str]) -> None:
        """Meter isolation + bandwidth-quota admission control.

        A slice may only create/modify/delete its own meters, and the
        sum of its committed meter rates must stay within its
        ``bandwidth_quota``. Admission is stateful: an accepted MeterMod
        records the commitment, a DELETE releases it.
        """
        key = (dpid, message.meter_id)
        owner = self._meter_owner.get(key)
        if owner is not None and owner != slice_controller.name:
            raise SliceViolation(
                "meter %#x on %s belongs to slice %r"
                % (message.meter_id, dpid, owner))
        if message.command == DELETE:
            self._meter_owner.pop(key, None)
            slice_controller.committed_rates.pop(key, None)
            return
        quota = slice_controller.bandwidth_quota
        if quota is not None:
            committed = sum(rate for k, rate
                            in slice_controller.committed_rates.items()
                            if k != key)
            if committed + message.rate_bytes_per_sec > quota * (1 + 1e-9):
                raise SliceViolation(
                    "meter rate %.0f B/s would exceed slice %r quota "
                    "(%.0f of %.0f B/s committed)"
                    % (message.rate_bytes_per_sec, slice_controller.name,
                       committed, quota))
        self._meter_owner[key] = slice_controller.name
        slice_controller.committed_rates[key] = message.rate_bytes_per_sec

    def _address_ok(self, app_ids: Set[int],
                    address: Optional[WorkerAddress]) -> bool:
        if address is None:
            return True
        if address.is_broadcast or address.is_controller:
            return True
        return address.app_id in app_ids

    def _validate_match(self, app_ids: Set[int], match: Match) -> None:
        if not self._address_ok(app_ids, match.dl_src):
            raise SliceViolation("match on foreign source %s" % match.dl_src)
        if not self._address_ok(app_ids, match.dl_dst):
            raise SliceViolation(
                "match on foreign destination %s" % match.dl_dst)
        src_anchored = (match.dl_src is not None
                        and not match.dl_src.is_broadcast)
        dst_anchored = (match.dl_dst is not None
                        and not match.dl_dst.is_broadcast
                        and not match.dl_dst.is_controller)
        if not src_anchored and not dst_anchored:
            # A rule pinned to neither endpoint could capture another
            # tenant's traffic (e.g. match-all, or broadcast-only from a
            # shared tunnel port).
            if match.in_port is None:
                raise SliceViolation(
                    "match (%s) not anchored to the slice's address space"
                    % match.describe())

    def _validate_actions(self, app_ids: Set[int], actions) -> None:
        for action in actions:
            if isinstance(action, SetDlDst):
                if not self._address_ok(app_ids, action.address):
                    raise SliceViolation(
                        "rewrite to foreign address %s" % action.address)

    # -- northbound: event demultiplexing --------------------------------------

    def _on_event(self, dpid: str, message: Message) -> None:
        self.events_demuxed += 1
        if isinstance(message, PacketIn):
            owner = self._owner_of(message.frame.src)
            if owner is None:
                owner = self._owner_of(message.frame.dst)
            if owner is not None:
                owner._receive(message)
            return
        # Port/flow lifecycle events are shared visibility.
        for slice_controller in self.slices.values():
            slice_controller._receive(message)

    def _owner_of(self, address: WorkerAddress) -> Optional[SliceController]:
        if address.is_broadcast or address.is_controller:
            return None
        for slice_controller in self.slices.values():
            if address.app_id in slice_controller.app_ids:
                return slice_controller
        return None

"""Group tables: ``all`` and ``select`` groups.

The Typhoon load balancer application (§4) offloads routing decisions to
the network using *select*-type groups: the switch rewrites the frame's
destination worker ID and forwards it in a weighted round-robin fashion
among the buckets. ``all`` groups replicate the frame to every bucket.

Bucket selection uses smooth weighted round robin, which is deterministic
and spreads each weight evenly over time (the same scheme nginx uses).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from .flow import Action

GROUP_ALL = "all"
GROUP_SELECT = "select"


@dataclass
class Bucket:
    """One group bucket: an action list plus a select weight."""

    actions: Tuple[Action, ...]
    weight: int = 1

    def __post_init__(self) -> None:
        self.actions = tuple(self.actions)
        if self.weight <= 0:
            raise ValueError("bucket weight must be positive")


class GroupEntry:
    """A group-table entry."""

    def __init__(self, group_id: int, group_type: str, buckets: Sequence[Bucket]):
        if group_type not in (GROUP_ALL, GROUP_SELECT):
            raise ValueError("unknown group type: %r" % group_type)
        if not buckets:
            raise ValueError("group needs at least one bucket")
        self.group_id = group_id
        self.group_type = group_type
        self.buckets: List[Bucket] = list(buckets)
        self.packets = 0
        # smooth-WRR state
        self._current: List[int] = [0] * len(self.buckets)

    def set_buckets(self, buckets: Sequence[Bucket]) -> None:
        if not buckets:
            raise ValueError("group needs at least one bucket")
        self.buckets = list(buckets)
        self._current = [0] * len(self.buckets)

    def select_buckets(self) -> List[Bucket]:
        """Return the bucket(s) a frame should take through this group."""
        self.packets += 1
        if self.group_type == GROUP_ALL:
            return list(self.buckets)
        return [self._select_one()]

    def _select_one(self) -> Bucket:
        total = 0
        best = 0
        for i, bucket in enumerate(self.buckets):
            self._current[i] += bucket.weight
            total += bucket.weight
            if self._current[i] > self._current[best]:
                best = i
        self._current[best] -= total
        return self.buckets[best]


class GroupTable:
    """All group entries of one switch."""

    def __init__(self):
        self._groups: Dict[int, GroupEntry] = {}

    def add(self, entry: GroupEntry) -> GroupEntry:
        self._groups[entry.group_id] = entry
        return entry

    def get(self, group_id: int) -> GroupEntry:
        if group_id not in self._groups:
            raise KeyError("no such group: %d" % group_id)
        return self._groups[group_id]

    def remove(self, group_id: int) -> None:
        self._groups.pop(group_id, None)

    def __contains__(self, group_id: int) -> bool:
        return group_id in self._groups

    def __len__(self) -> int:
        return len(self._groups)

"""Host-based software SDN switch (the DPDK-OVS stand-in).

Each compute host runs one :class:`SoftwareSwitch`. Workers attach to
numbered ports (shared-memory ring buffers in the prototype); one or more
*tunnel* ports lead to peer hosts over host-level TCP tunnels (§3.3.1).

Forwarding is modelled as a single busy-server: every packet occupies the
switch for ``lookup + per-output copy`` virtual time, so an overloaded
switch builds backlog and eventually drops (the TX-queue overflow the
paper discusses in §8). Per-packet cost is far below per-tuple
serialization cost, which is exactly why network-level replication beats
application-level broadcast (Fig. 9).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from ..net.ethernet import EthernetFrame
from ..sim.audit import (
    LAYER_SWITCH,
    R_BACKLOG_OVERFLOW,
    R_CONTROL_BACKLOG,
    R_METER_LIMIT,
    R_NO_CONTROLLER,
    R_NO_GROUP,
    R_NO_OUTPUT,
    R_PORT_DOWN,
    R_SWITCH_DOWN,
    R_TABLE_MISS,
    DeliveryLedger,
)
from ..sim.costs import CostModel
from ..sim.engine import Engine
from ..sim.trace import H_PACKET_IN, H_REPLICATE, H_SWITCH, Tracer
from .flow import (
    OFPP_CONTROLLER,
    Action,
    FlowEntry,
    FlowTable,
    GroupAction,
    Match,
    Meter,
    Output,
    SetDlDst,
    SetTunnelDst,
    train_forward_plan,
)
from .group import GroupEntry, GroupTable
from .openflow import (
    ADD,
    DELETE,
    DELETE_STRICT,
    MODIFY,
    OFPP_TABLE,
    FlowMod,
    FlowRemoved,
    FlowStatsEntry,
    FlowStatsReply,
    FlowStatsRequest,
    GroupMod,
    Message,
    MeterMod,
    MeterStatsEntry,
    MeterStatsReply,
    MeterStatsRequest,
    PacketIn,
    PacketOut,
    PortStatsEntry,
    PortStatsReply,
    PortStatsRequest,
    PortStatus,
    RoleReply,
    RoleRequest,
    SwitchReconnect,
    REASON_ACTION,
    REASON_DELETE,
    REASON_IDLE_TIMEOUT,
    PORT_ADD,
    PORT_DELETE,
    ROLE_MASTER,
    ROLE_SLAVE,
)

#: A port sink receives ``(frame, tun_dst)``; tun_dst is only meaningful
#: for tunnel ports and carries the peer host selected by SetTunnelDst.
PortSink = Callable[[EthernetFrame, Optional[str]], None]


class SwitchPort:
    """One switch port and its traffic counters."""

    WORKER = "worker"
    TUNNEL = "tunnel"

    def __init__(self, number: int, name: str, sink: PortSink, kind: str):
        self.number = number
        self.name = name
        self.sink = sink
        self.kind = kind
        self.up = True
        self.rx_packets = 0
        self.tx_packets = 0
        self.rx_bytes = 0
        self.tx_bytes = 0
        self.tx_dropped = 0

    def stats_entry(self) -> PortStatsEntry:
        return PortStatsEntry(
            port_no=self.number,
            port_name=self.name,
            rx_packets=self.rx_packets,
            tx_packets=self.tx_packets,
            rx_bytes=self.rx_bytes,
            tx_bytes=self.tx_bytes,
            tx_dropped=self.tx_dropped,
        )


class MeterState:
    """One installed rate meter: a token-bucket shaper with a bounded
    virtual queue.

    Modelled as a virtual serialization horizon ``next_free``: each
    admitted frame advances it by ``bytes/rate``; a ``burst`` allowance
    caps how much idle credit accumulates. Frames whose queueing delay
    would exceed ``max_queue`` seconds are dropped (the rate queue's
    finite depth), attributed as ``meter-limit``.
    """

    __slots__ = ("meter_id", "rate", "burst", "max_queue", "next_free",
                 "packets", "bytes", "dropped_packets", "dropped_bytes")

    def __init__(self, meter_id: int, rate: float, burst: float,
                 max_queue: float):
        self.meter_id = meter_id
        self.rate = rate
        self.burst = burst
        self.max_queue = max_queue
        self.next_free = 0.0
        self.packets = 0
        self.bytes = 0
        self.dropped_packets = 0
        self.dropped_bytes = 0

    def configure(self, rate: float, burst: float, max_queue: float) -> None:
        self.rate = rate
        self.burst = burst
        self.max_queue = max_queue

    def shape(self, nbytes: int, ready_at: float) -> "tuple[float, bool]":
        """Admit one frame at ``ready_at``; returns (departure, dropped)."""
        floor = ready_at - (self.burst / self.rate if self.burst else 0.0)
        horizon = self.next_free
        if horizon < floor:
            horizon = floor
        horizon += nbytes / self.rate
        if horizon - ready_at > self.max_queue:
            self.dropped_packets += 1
            self.dropped_bytes += nbytes
            return ready_at, True
        self.next_free = horizon
        self.packets += 1
        self.bytes += nbytes
        return (horizon if horizon > ready_at else ready_at), False

    def stats_entry(self) -> MeterStatsEntry:
        return MeterStatsEntry(
            meter_id=self.meter_id,
            rate_bytes_per_sec=self.rate,
            packets=self.packets,
            bytes=self.bytes,
            dropped_packets=self.dropped_packets,
            dropped_bytes=self.dropped_bytes,
        )


class _FrameAccount:
    """Dispositions of one frame traversal, for replication accounting.

    A frame entering the switch is one copy; action processing emits it
    to ``emitted + controller + dropped`` final dispositions. Anything
    above one is switch-level replication (broadcast, mirror rules);
    zero means the frame died without any output at all.
    """

    __slots__ = ("emitted", "controller", "dropped")

    def __init__(self) -> None:
        self.emitted = 0
        self.controller = 0
        self.dropped = 0

    @property
    def total(self) -> int:
        return self.emitted + self.controller + self.dropped


class _ControlChannel:
    """One named controller connection (OpenFlow 1.2+ multi-controller).

    A switch accepting several controllers keeps one channel per
    controller name; exactly one may hold the MASTER role at a time and
    only that one may mutate switch state.
    """

    __slots__ = ("name", "deliver", "role", "up")

    def __init__(self, name: str, deliver: Callable[[Message], None]):
        self.name = name
        self.deliver = deliver
        self.role = ROLE_SLAVE
        self.up = True


class SoftwareSwitch:
    """Flow-rule driven frame forwarding on one host."""

    #: Maximum forwarding backlog before packets are dropped (models
    #: bounded TX/RX rings).
    MAX_BACKLOG_SECONDS = 0.005

    #: Bound on events buffered for the control plane while no master
    #: controller is reachable (fail-safe blackout mode). Overflow is
    #: dropped tail-first and attributed in the delivery ledger.
    MAX_PENDING_CONTROLLER = 512

    def __init__(self, engine: Engine, costs: CostModel, dpid: str,
                 idle_sweep_interval: float = 1.0,
                 ledger: Optional[DeliveryLedger] = None,
                 tracer: Optional[Tracer] = None):
        self.engine = engine
        self.costs = costs
        self.dpid = dpid
        self.ledger = ledger
        self.tracer = tracer
        self.flows = FlowTable()
        self.groups = GroupTable()
        self.meters: Dict[int, MeterState] = {}
        self.ports: Dict[int, SwitchPort] = {}
        self._next_port = 1
        self._busy_until = 0.0
        self.up = True
        self.crashes = 0
        self.control_lost_while_down = 0
        self.packets_forwarded = 0
        self.packets_dropped = 0
        self.table_misses = 0
        self.group_misses = 0
        self.meter_drops = 0
        #: Batch-forwarding telemetry: fused trains accepted and the
        #: frames they forwarded (train_frames / packets_forwarded is
        #: the fast-path fraction the perf gates hold ≥ 0.95 on fig8).
        self.trains = 0
        self.train_frames = 0
        #: Set by the controller when it connects; receives event Messages.
        #: With named channels registered this is a derived pointer to the
        #: live master channel's deliver callback (or None in blackout).
        self._to_controller: Optional[Callable[[Message], None]] = None
        #: Named controller channels (replicated control plane). Empty in
        #: the classic single-controller wiring.
        self._channels: Dict[str, _ControlChannel] = {}
        self._master_channel: Optional[str] = None
        #: Largest master generation-id granted; MASTER claims below this
        #: are rejected (split-brain fencing, OpenFlow 1.2+).
        self.master_generation = -1
        self.stale_master_rejections = 0
        #: Fail-safe blackout buffer: events held for the next master.
        self._pending_ctrl: List[Message] = []
        self.max_pending_controller = self.MAX_PENDING_CONTROLLER
        self.pending_high_water = 0
        self.pending_overflow_dropped = 0
        #: Events from this switch dropped by the controller's bounded
        #: outage backlog (bumped by the controller for attribution).
        self.controller_backlog_dropped = 0
        #: Stats replies from a slave-role channel return to the asking
        #: channel, not the master; set around the reply dispatch.
        self._reply_override: Optional[Callable[[Message], None]] = None
        self._sweep_interval = idle_sweep_interval
        self._sweeper = engine.process(self._sweep_idle(), name="sweep:%s" % dpid)

    # -- exact-match cache telemetry --------------------------------------

    @property
    def cache_hits(self) -> int:
        return self.flows.cache.hits

    @property
    def cache_misses(self) -> int:
        return self.flows.cache.misses

    @property
    def cache_hit_rate(self) -> float:
        return self.flows.cache.hit_rate

    # -- controller connectivity ------------------------------------------

    def connect_controller(self, deliver: Callable[[Message], None]) -> None:
        self._to_controller = deliver

    def register_controller(self, name: str,
                            deliver: Callable[[Message], None]) -> None:
        """Attach a named controller channel (replicated control plane).

        The channel starts in the SLAVE role: it receives no events and
        may not mutate switch state until it wins a
        :class:`~repro.sdn.openflow.RoleRequest` master claim.
        """
        if name in self._channels:
            raise ValueError("controller channel %r already registered"
                             % name)
        self._channels[name] = _ControlChannel(name, deliver)

    @property
    def master_controller(self) -> Optional[str]:
        return self._master_channel

    def channels(self) -> Tuple[str, ...]:
        """Registered controller channel names, sorted."""
        return tuple(sorted(self._channels))

    def set_channel_up(self, name: str, up: bool) -> None:
        """Mark a controller channel alive/dead (chaos: replica outage).

        Losing the master channel starts fail-safe blackout mode: the
        data plane keeps forwarding on installed rules while events are
        buffered (bounded) for the next master.
        """
        channel = self._channels.get(name)
        if channel is None or channel.up == up:
            return
        channel.up = up
        if name == self._master_channel:
            if not up:
                self._to_controller = None
            else:
                self._to_controller = channel.deliver
                self._flush_pending(channel.deliver)

    def handle_message_from(self, name: str, message: Message) -> None:
        """Apply a message arriving on the named controller channel.

        Role claims are always examined; state-mutating messages
        (FlowMod/GroupMod/MeterMod/PacketOut) from any channel that does
        not hold the MASTER role are rejected and answered with a stale
        RoleReply so a deposed controller learns it lost mastership.
        Read-only stats requests are honoured for slaves, with the reply
        routed back to the asking channel.
        """
        if isinstance(message, RoleRequest):
            self._handle_role_request(message)
            return
        channel = self._channels.get(name)
        if channel is None:
            self.stale_master_rejections += 1
            return
        if name != self._master_channel and isinstance(
                message, (FlowMod, GroupMod, MeterMod, PacketOut)):
            self.stale_master_rejections += 1
            if self.up:
                self.engine.schedule(
                    self.costs.openflow_rtt / 2, channel.deliver,
                    RoleReply(self.dpid, name, ROLE_SLAVE,
                              self.master_generation, stale=True))
            return
        if name != self._master_channel:
            # Slave read: replies return on the asking channel.
            self._reply_override = channel.deliver
            try:
                self.handle_message(message)
            finally:
                self._reply_override = None
            return
        self.handle_message(message)

    def _handle_role_request(self, request: RoleRequest) -> None:
        if not self.up:
            self.control_lost_while_down += 1
            return
        channel = self._channels.get(request.controller)
        if channel is None:
            return
        half_rtt = self.costs.openflow_rtt / 2
        if request.role == ROLE_MASTER:
            if request.generation_id < self.master_generation:
                # Fencing: a deposed master re-claiming with an old
                # generation-id must not regain control.
                self.stale_master_rejections += 1
                self.engine.schedule(
                    half_rtt, channel.deliver,
                    RoleReply(self.dpid, request.controller, ROLE_SLAVE,
                              self.master_generation, stale=True))
                return
            self.master_generation = request.generation_id
            previous = self._master_channel
            if previous is not None and previous != request.controller:
                old = self._channels.get(previous)
                if old is not None:
                    old.role = ROLE_SLAVE
            self._master_channel = request.controller
            channel.role = ROLE_MASTER
            self._to_controller = channel.deliver if channel.up else None
            self.engine.schedule(
                half_rtt, channel.deliver,
                RoleReply(self.dpid, request.controller, ROLE_MASTER,
                          request.generation_id, stale=False))
            if channel.up:
                # Blackout ends: hand the buffered events to the new
                # master, then re-announce every port so it re-learns
                # worker locations without a cold re-learn elsewhere.
                self._flush_pending(channel.deliver)
                for number in sorted(self.ports):
                    port = self.ports[number]
                    self._notify_controller(
                        PortStatus(self.dpid, number, port.name, PORT_ADD),
                        self.costs.port_event_latency,
                    )
        else:
            if request.controller == self._master_channel:
                self._master_channel = None
                self._to_controller = None
            channel.role = ROLE_SLAVE
            self.engine.schedule(
                half_rtt, channel.deliver,
                RoleReply(self.dpid, request.controller, ROLE_SLAVE,
                          self.master_generation, stale=False))

    def _flush_pending(self, deliver: Callable[[Message], None]) -> None:
        """Drain the blackout buffer FIFO onto a live master channel."""
        if not self._pending_ctrl:
            return
        pending, self._pending_ctrl = self._pending_ctrl, []
        half_rtt = self.costs.openflow_rtt / 2
        for message in pending:
            self.engine.schedule(half_rtt, deliver, message)

    def _buffer_pending(self, message: Message) -> bool:
        """Queue an event for the next master; False when the bound hit."""
        pending = self._pending_ctrl
        if len(pending) >= self.max_pending_controller:
            self.pending_overflow_dropped += 1
            return False
        pending.append(message)
        if len(pending) > self.pending_high_water:
            self.pending_high_water = len(pending)
        return True

    def _notify_controller(self, message: Message, delay: float) -> None:
        override = self._reply_override
        if override is not None:
            self.engine.schedule(delay, override, message)
            return
        if self._to_controller is None:
            if self._channels:
                self._buffer_pending(message)
            return
        self.engine.schedule(delay, self._to_controller, message)

    def _live_tracer(self) -> Optional[Tracer]:
        """The tracer, only while at least one sampled tuple is in
        flight — keeps the per-frame hot path to one attribute test."""
        tracer = self.tracer
        if tracer is not None and tracer.has_active():
            return tracer
        return None

    # -- port management -----------------------------------------------------

    def add_port(self, name: str, sink: PortSink,
                 kind: str = SwitchPort.WORKER) -> int:
        number = self._next_port
        self._next_port += 1
        self.ports[number] = SwitchPort(number, name, sink, kind)
        self.flows.invalidate_cache()
        self._notify_controller(
            PortStatus(self.dpid, number, name, PORT_ADD),
            self.costs.port_event_latency,
        )
        return number

    def remove_port(self, number: int) -> None:
        """Detach a port. The controller learns via PortStatus — this is
        the signal the fault detector reacts to (§4)."""
        port = self.ports.pop(number, None)
        if port is None:
            return
        self.flows.invalidate_cache()
        self._notify_controller(
            PortStatus(self.dpid, number, port.name, PORT_DELETE),
            self.costs.port_event_latency,
        )

    def port_by_name(self, name: str) -> Optional[SwitchPort]:
        for port in self.ports.values():
            if port.name == name:
                return port
        return None

    # -- crash / restart (chaos injection) -----------------------------------

    def crash(self) -> None:
        """The switch process dies: flow and group tables are lost, the
        data plane stops, and the controller sees every port vanish (the
        same signal a worker death produces, but for the whole host).
        Ports themselves survive in the model — attached workers keep
        their ring buffers and re-appear on :meth:`restore`."""
        if not self.up:
            return
        self.up = False
        self.crashes += 1
        self.flows = FlowTable()
        self.groups = GroupTable()
        self.meters = {}
        self._busy_until = self.engine.now
        # Blackout-buffered events die with the switch process; buffered
        # PacketIns were already counted controller-delivered, so move
        # them to an attributed drop to keep conservation exact.
        if self._pending_ctrl:
            for message in self._pending_ctrl:
                if isinstance(message, PacketIn) and self.ledger is not None:
                    self.ledger.record_frame_controller_dropped(
                        LAYER_SWITCH, R_SWITCH_DOWN, message.frame)
            self._pending_ctrl = []
        for number in sorted(self.ports):
            port = self.ports[number]
            self._notify_controller(
                PortStatus(self.dpid, number, port.name, PORT_DELETE),
                self.costs.port_event_latency,
            )

    def restore(self) -> None:
        """Restart the switch with an empty flow table. Announces the
        reconnect first (so apps can invalidate bookkeeping for the lost
        tables), then re-adds every surviving port; the controller
        re-learns locations and re-installs rules per PORT_ADD."""
        if self.up:
            return
        self.up = True
        # The reconnect hands the controller a blank table; any cached
        # lookups from the previous incarnation must not survive it.
        self.flows.invalidate_cache()
        self._notify_controller(SwitchReconnect(self.dpid),
                                self.costs.port_event_latency)
        for number in sorted(self.ports):
            port = self.ports[number]
            self._notify_controller(
                PortStatus(self.dpid, number, port.name, PORT_ADD),
                self.costs.port_event_latency,
            )

    # -- OpenFlow message handling -------------------------------------------

    def handle_message(self, message: Message) -> None:
        """Apply a controller message (already delivered over the control
        channel; FlowMods additionally pay the rule-installation latency)."""
        if not self.up:
            # The control channel to a dead switch is gone; the message
            # is lost and the controller must reconcile after restart.
            self.control_lost_while_down += 1
            return
        if isinstance(message, FlowMod):
            self.engine.schedule(
                self.costs.flow_install_latency, self._apply_flow_mod, message
            )
        elif isinstance(message, GroupMod):
            self.engine.schedule(
                self.costs.flow_install_latency, self._apply_group_mod, message
            )
        elif isinstance(message, MeterMod):
            self.engine.schedule(
                self.costs.flow_install_latency, self._apply_meter_mod, message
            )
        elif isinstance(message, PacketOut):
            self._apply_packet_out(message)
        elif isinstance(message, FlowStatsRequest):
            self._reply_flow_stats(message)
        elif isinstance(message, PortStatsRequest):
            self._reply_port_stats(message)
        elif isinstance(message, MeterStatsRequest):
            self._reply_meter_stats(message)
        else:
            raise TypeError("switch cannot handle %r" % (message,))

    def _apply_flow_mod(self, mod: FlowMod) -> None:
        if not self.up:
            # The install latency straddled a crash: the mod dies with
            # the switch process instead of landing in the fresh table.
            self.control_lost_while_down += 1
            return
        if mod.command == ADD or mod.command == MODIFY:
            entry = FlowEntry(
                match=mod.match,
                actions=mod.actions,
                priority=mod.priority,
                idle_timeout=mod.idle_timeout,
                cookie=mod.cookie,
            )
            self.flows.add(entry, now=self.engine.now)
        elif mod.command in (DELETE, DELETE_STRICT):
            strict = mod.command == DELETE_STRICT
            removed = self.flows.remove(mod.match, strict=strict,
                                        priority=mod.priority if strict else None)
            for entry in removed:
                self._notify_controller(
                    FlowRemoved(self.dpid, entry.match, entry.cookie,
                                REASON_DELETE, entry.packets, entry.bytes),
                    self.costs.openflow_rtt / 2,
                )

    def _apply_group_mod(self, mod: GroupMod) -> None:
        if not self.up:
            self.control_lost_while_down += 1
            return
        if mod.command == ADD:
            self.groups.add(GroupEntry(mod.group_id, mod.group_type,
                                       list(mod.buckets)))
        elif mod.command == MODIFY:
            self.groups.get(mod.group_id).set_buckets(list(mod.buckets))
        elif mod.command == DELETE:
            self.groups.remove(mod.group_id)
        # Group contents changed under existing rules: conservatively
        # drop memoized lookups so no stale resolution can survive.
        self.flows.invalidate_cache()

    def _apply_meter_mod(self, mod: MeterMod) -> None:
        if not self.up:
            self.control_lost_while_down += 1
            return
        if mod.command == DELETE:
            self.meters.pop(mod.meter_id, None)
            return
        existing = self.meters.get(mod.meter_id)
        if mod.command == MODIFY and existing is not None:
            # Reconfiguration keeps counters and the shaping horizon:
            # the allocator's rate changes must not reset accounting.
            existing.configure(mod.rate_bytes_per_sec, mod.burst_bytes,
                               mod.max_queue_seconds)
            return
        self.meters[mod.meter_id] = MeterState(
            mod.meter_id, mod.rate_bytes_per_sec, mod.burst_bytes,
            mod.max_queue_seconds)

    def _reply_meter_stats(self, request: MeterStatsRequest) -> None:
        if request.meter_id is None:
            meters = [self.meters[mid] for mid in sorted(self.meters)]
        else:
            meters = [m for m in self.meters.values()
                      if m.meter_id == request.meter_id]
        self._notify_controller(
            MeterStatsReply(self.dpid, [m.stats_entry() for m in meters]),
            self.costs.openflow_rtt / 2,
        )

    def _apply_packet_out(self, message: PacketOut) -> None:
        # Controller-injected frames enter the data plane here without
        # passing any transport's send path: count them as inputs.
        account: Optional[_FrameAccount] = None
        if self.ledger is not None:
            self.ledger.record_frame_injected(message.frame)
            account = _FrameAccount()
        tracer = self._live_tracer()
        if tracer is not None:
            tracer.frame_event(message.frame, H_SWITCH, dpid=self.dpid,
                               packet_out=True)
        self._run_actions(message.frame, message.actions, message.in_port,
                          tun_dst=None, account=account)
        self._settle_account(message.frame, account)

    def _settle_account(self, frame: EthernetFrame,
                        account: Optional[_FrameAccount]) -> None:
        """Balance one frame traversal: one copy in, ``total`` out."""
        if account is None or self.ledger is None:
            return
        if account.total == 0:
            self.ledger.record_frame_drop(LAYER_SWITCH, R_NO_OUTPUT, frame)
            tracer = self._live_tracer()
            if tracer is not None:
                tracer.frame_drop(frame, LAYER_SWITCH, R_NO_OUTPUT)
        else:
            self.ledger.record_frame_replicated(frame, account.total - 1)

    def _reply_flow_stats(self, request: FlowStatsRequest) -> None:
        entries = [
            FlowStatsEntry(e.match, e.priority, e.cookie, e.packets, e.bytes,
                           e.actions)
            for e in self.flows
            if request.match.covers(e.match)
        ]
        self._notify_controller(
            FlowStatsReply(self.dpid, entries), self.costs.openflow_rtt / 2
        )

    def _reply_port_stats(self, request: PortStatsRequest) -> None:
        if request.port_no is None:
            ports = list(self.ports.values())
        else:
            ports = [p for p in self.ports.values() if p.number == request.port_no]
        self._notify_controller(
            PortStatsReply(self.dpid, [p.stats_entry() for p in ports]),
            self.costs.openflow_rtt / 2,
        )

    # -- data plane -------------------------------------------------------------

    def inject(self, in_port: int, frame: EthernetFrame) -> bool:
        """Receive a frame on ``in_port`` and forward it.

        Returns False when the frame was dropped (backlog or table miss).
        """
        tracer = self._live_tracer()
        if not self.up:
            self.packets_dropped += 1
            if self.ledger is not None:
                self.ledger.record_frame_drop(LAYER_SWITCH,
                                              R_SWITCH_DOWN, frame)
            if tracer is not None:
                tracer.frame_drop(frame, LAYER_SWITCH, R_SWITCH_DOWN)
            return False
        port = self.ports.get(in_port)
        if port is not None:
            port.rx_packets += 1
            port.rx_bytes += len(frame)

        backlog = self._busy_until - self.engine.now
        if backlog > self.MAX_BACKLOG_SECONDS:
            self.packets_dropped += 1
            if self.ledger is not None:
                self.ledger.record_frame_drop(LAYER_SWITCH,
                                              R_BACKLOG_OVERFLOW, frame)
            if tracer is not None:
                tracer.frame_drop(frame, LAYER_SWITCH, R_BACKLOG_OVERFLOW)
            return False

        entry = self.flows.lookup_cached(frame, in_port)
        if entry is None:
            self.table_misses += 1
            if self.ledger is not None:
                self.ledger.record_frame_drop(LAYER_SWITCH,
                                              R_TABLE_MISS, frame)
            if tracer is not None:
                tracer.frame_drop(frame, LAYER_SWITCH, R_TABLE_MISS)
            return False
        # Cache hits and priority-table hits bump the same flow-entry
        # counters: FlowStatsReply, the stats monitor and the
        # auto-scaler see identical numbers either way.
        entry.touch(self.engine.now, len(frame))
        if tracer is not None:
            tracer.frame_event(frame, H_SWITCH, dpid=self.dpid)

        cost = self.costs.switch_lookup_per_packet
        start = max(self.engine.now, self._busy_until)
        finish = start + cost
        self._busy_until = finish
        self.packets_forwarded += 1
        account = _FrameAccount() if self.ledger is not None else None
        self._run_actions(frame, entry.actions, in_port, tun_dst=None,
                          ready_at=finish, account=account)
        self._settle_account(frame, account)
        return True

    def inject_train(self, in_port: int, frames) -> None:
        """Receive a batch of same-headed frames on ``in_port`` (one
        transport flush) and forward them as a *train*.

        Fast path: classify one representative header with a single
        megaflow lookup, precompile the action list into a pure
        forwarding plan (:func:`train_forward_plan`), then move the
        whole batch in one fused loop that replays :meth:`inject`'s
        per-frame busy-server arithmetic term for term — same flow
        counter touches, same backlog checks, same per-copy departure
        times, same sink-event schedule. Falls back to per-frame
        :meth:`inject` whenever anything could diverge: switch down, a
        live tracer, divergent headers, a table miss, or actions beyond
        plain Output/SetTunnelDst forwarding (meters, groups, rewrites,
        controller punts).
        """
        if len(frames) < 2:
            for frame in frames:
                self.inject(in_port, frame)
            return
        if not self.up or self._live_tracer() is not None:
            for frame in frames:
                self.inject(in_port, frame)
            return
        first = frames[0]
        dst = first.dst
        src = first.src
        ethertype = first.ethertype
        for frame in frames:
            if (frame.dst is not dst and frame.dst != dst) \
                    or (frame.src is not src and frame.src != src) \
                    or frame.ethertype != ethertype:
                for divergent in frames:
                    self.inject(in_port, divergent)
                return
        entry = self.flows.lookup_cached(first, in_port)
        out_ports = None
        if entry is not None:
            plan = train_forward_plan(entry.actions)
            if plan is not None:
                out_ports = []
                for port_no, tun in plan:
                    port = self.ports.get(port_no)
                    if port is None or not port.up:
                        out_ports = None
                        break
                    out_ports.append((port, tun))
        if out_ports is None:
            # Miss or non-trivial actions: per-frame matching (the
            # representative probe above only warmed the cache).
            for frame in frames:
                self.inject(in_port, frame)
            return
        self.trains += 1
        engine = self.engine
        now = engine.now
        schedule = engine.schedule
        costs = self.costs
        lookup_cost = costs.switch_lookup_per_packet
        copy_per_output = costs.switch_copy_per_output
        copy_per_byte = costs.switch_copy_per_byte
        loopback = costs.loopback_latency
        ledger = self.ledger
        rx_port = self.ports.get(in_port)
        max_backlog = self.MAX_BACKLOG_SECONDS
        busy = self._busy_until
        touch = entry.touch
        forwarded = 0
        dropped = 0
        for frame in frames:
            nbytes = len(frame)
            if rx_port is not None:
                rx_port.rx_packets += 1
                rx_port.rx_bytes += nbytes
            if busy - now > max_backlog:
                dropped += 1
                if ledger is not None:
                    ledger.record_frame_drop(LAYER_SWITCH,
                                             R_BACKLOG_OVERFLOW, frame)
                continue
            touch(now, nbytes)
            # inject(): start = max(now, busy); finish = start + lookup.
            finish = (busy if busy > now else now) + lookup_cost
            busy = finish
            forwarded += 1
            copies = 0
            ready = finish
            for port, tun in out_ports:
                # _output(): finish = max(ready_at, busy) + copy_cost,
                # and ready_at == busy at every step of a pure plan.
                finish = ready + (copy_per_output + nbytes * copy_per_byte)
                busy = finish
                port.tx_packets += 1
                port.tx_bytes += nbytes
                schedule((finish - now) + loopback, port.sink, frame, tun)
                ready = finish
                copies += 1
            if ledger is not None:
                ledger.record_frame_replicated(frame, copies - 1)
        self._busy_until = busy
        self.packets_forwarded += forwarded
        self.packets_dropped += dropped
        self.train_frames += forwarded

    def _run_actions(
        self,
        frame: EthernetFrame,
        actions,
        in_port: int,
        tun_dst: Optional[str],
        ready_at: Optional[float] = None,
        account: Optional[_FrameAccount] = None,
        meter_extra: float = 0.0,
    ) -> None:
        """Execute an action list; copies pay per-output switch time.

        ``meter_extra`` is accumulated rate-queue shaping delay: it
        postpones deliveries without occupying the forwarding server
        (metered frames wait in a port queue, not on the switch CPU).
        """
        if ready_at is None:
            ready_at = self.engine.now
        current = frame
        for action in actions:
            if isinstance(action, SetTunnelDst):
                tun_dst = action.host
            elif isinstance(action, SetDlDst):
                current = current.with_dst(action.address)
            elif isinstance(action, Meter):
                meter = self.meters.get(action.meter_id)
                if meter is None:
                    continue  # fail open: police only installed meters
                depart, dropped = meter.shape(len(current),
                                              ready_at + meter_extra)
                if dropped:
                    # Rate-queue overflow: the frame dies here; none of
                    # the remaining actions see it.
                    self.meter_drops += 1
                    self.packets_dropped += 1
                    if account is not None:
                        account.dropped += 1
                    if self.ledger is not None:
                        self.ledger.record_frame_drop(LAYER_SWITCH,
                                                      R_METER_LIMIT, current)
                    tracer = self._live_tracer()
                    if tracer is not None:
                        tracer.frame_drop(current, LAYER_SWITCH,
                                          R_METER_LIMIT)
                    return
                meter_extra = depart - ready_at
            elif isinstance(action, GroupAction):
                if action.group_id not in self.groups:
                    # Install race (flow landed before its group) or a
                    # group lost to a switch restart: drop, attributed so
                    # the conservation audit can explain the frame.
                    self.group_misses += 1
                    self.packets_dropped += 1
                    if account is not None:
                        account.dropped += 1
                    if self.ledger is not None:
                        self.ledger.record_frame_drop(LAYER_SWITCH,
                                                      R_NO_GROUP, current)
                    tracer = self._live_tracer()
                    if tracer is not None:
                        tracer.frame_drop(current, LAYER_SWITCH, R_NO_GROUP)
                    continue
                group = self.groups.get(action.group_id)
                buckets = list(group.select_buckets())
                tracer = self._live_tracer()
                if tracer is not None and len(buckets) > 1:
                    tracer.frame_event(current, H_REPLICATE, dpid=self.dpid,
                                       copies=len(buckets))
                for bucket in buckets:
                    self._run_actions(current, bucket.actions, in_port,
                                      tun_dst, ready_at, account, meter_extra)
            elif isinstance(action, Output):
                ready_at = self._output(current, action.port, in_port,
                                        tun_dst, ready_at, account,
                                        meter_extra)
            else:
                raise TypeError("unknown action %r" % (action,))

    def _output(
        self,
        frame: EthernetFrame,
        out_port: int,
        in_port: int,
        tun_dst: Optional[str],
        ready_at: float,
        account: Optional[_FrameAccount] = None,
        meter_extra: float = 0.0,
    ) -> float:
        copy_cost = (
            self.costs.switch_copy_per_output
            + len(frame) * self.costs.switch_copy_per_byte
        )
        finish = max(ready_at, self._busy_until) + copy_cost
        self._busy_until = finish

        tracer = self._live_tracer()
        if out_port == OFPP_CONTROLLER:
            if self._to_controller is None and self._channels:
                # Fail-safe blackout: no live master, but the replicated
                # control plane will promote one — buffer (bounded) and
                # attribute overflow instead of stalling the data plane.
                message = PacketIn(self.dpid, frame, in_port, REASON_ACTION)
                if self._buffer_pending(message):
                    if account is not None:
                        account.controller += 1
                    if self.ledger is not None:
                        self.ledger.record_frame_controller_delivered(frame)
                    if tracer is not None:
                        tracer.frame_event(frame, H_PACKET_IN, dpid=self.dpid)
                else:
                    self.packets_dropped += 1
                    if account is not None:
                        account.dropped += 1
                    if self.ledger is not None:
                        self.ledger.record_frame_drop(LAYER_SWITCH,
                                                      R_CONTROL_BACKLOG, frame)
                    if tracer is not None:
                        tracer.frame_drop(frame, LAYER_SWITCH,
                                          R_CONTROL_BACKLOG)
                return finish
            if self._to_controller is None:
                if account is not None:
                    account.dropped += 1
                if self.ledger is not None:
                    self.ledger.record_frame_drop(LAYER_SWITCH,
                                                  R_NO_CONTROLLER, frame)
                if tracer is not None:
                    tracer.frame_drop(frame, LAYER_SWITCH, R_NO_CONTROLLER)
                return finish
            if account is not None:
                account.controller += 1
            if self.ledger is not None:
                self.ledger.record_frame_controller_delivered(frame)
            if tracer is not None:
                tracer.frame_event(frame, H_PACKET_IN, dpid=self.dpid)
            self._notify_controller(
                PacketIn(self.dpid, frame, in_port, REASON_ACTION),
                (finish - self.engine.now) + self.costs.openflow_rtt / 2,
            )
            return finish
        if out_port == OFPP_TABLE:
            entry = self.flows.lookup_cached(frame, in_port)
            if entry is None:
                self.table_misses += 1
                if account is not None:
                    account.dropped += 1
                if self.ledger is not None:
                    self.ledger.record_frame_drop(LAYER_SWITCH,
                                                  R_TABLE_MISS, frame)
                if tracer is not None:
                    tracer.frame_drop(frame, LAYER_SWITCH, R_TABLE_MISS)
                return finish
            entry.touch(self.engine.now, len(frame))
            self._run_actions(frame, entry.actions, in_port, tun_dst, finish,
                              account, meter_extra)
            return self._busy_until

        port = self.ports.get(out_port)
        if port is None or not port.up:
            self.packets_dropped += 1
            if account is not None:
                account.dropped += 1
            if self.ledger is not None:
                self.ledger.record_frame_drop(LAYER_SWITCH,
                                              R_PORT_DOWN, frame)
            if tracer is not None:
                tracer.frame_drop(frame, LAYER_SWITCH, R_PORT_DOWN)
            return finish
        if account is not None:
            account.emitted += 1
        port.tx_packets += 1
        port.tx_bytes += len(frame)
        # Meter shaping delays the delivery (the frame sits in the port's
        # rate queue) without occupying the switch forwarding server.
        delay = (finish - self.engine.now) + self.costs.loopback_latency \
            + meter_extra
        self.engine.schedule(delay, port.sink, frame, tun_dst)
        return finish

    # -- introspection ------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """Operational counters for the REST/chaos surfaces."""
        return {
            "dpid": self.dpid,
            "up": self.up,
            "rules": len(self.flows),
            "ports": len(self.ports),
            "crashes": self.crashes,
            "packets_forwarded": self.packets_forwarded,
            "packets_dropped": self.packets_dropped,
            "table_misses": self.table_misses,
            "group_misses": self.group_misses,
            "meter_drops": self.meter_drops,
            "control_lost_while_down": self.control_lost_while_down,
            "master": self._master_channel,
            "master_generation": self.master_generation,
            "stale_master_rejections": self.stale_master_rejections,
            "pending_controller": len(self._pending_ctrl),
            "pending_high_water": self.pending_high_water,
            "pending_overflow_dropped": self.pending_overflow_dropped,
            "controller_backlog_dropped": self.controller_backlog_dropped,
        }

    # -- idle-timeout sweeper ------------------------------------------------------

    def _sweep_idle(self):
        while True:
            yield self._sweep_interval
            for entry in self.flows.expire_idle(self.engine.now):
                self._notify_controller(
                    FlowRemoved(self.dpid, entry.match, entry.cookie,
                                REASON_IDLE_TIMEOUT, entry.packets, entry.bytes),
                    self.costs.openflow_rtt / 2,
                )

    def shutdown(self) -> None:
        self._sweeper.interrupt("switch shutdown")

"""Replicated SDN control plane: leader election, role fencing, and
post-failover anti-entropy reconciliation.

Typhoon's prototype runs one Floodlight controller — a single point of
failure the paper leaves to "standard SDN controller HA" practice. This
module supplies that layer for the reproduction:

* N :class:`ControllerReplica` instances each own a full
  :class:`~repro.sdn.controller.SdnController` (apps included) and a
  named, role-managed channel to every switch,
* leadership comes from the classic ZooKeeper recipe over the
  coordination store: each live replica holds an *ephemeral + sequence*
  member znode under ``/ha/election``; the lowest sequence wins,
* the winner increments the ``/ha/generation`` counter with a CAS write
  and claims every switch with ``RoleRequest(MASTER, generation)`` —
  switches remember the largest granted generation and reject stale
  claims and stale masters' mutations (split-brain fencing),
* the leader periodically publishes its apps' :meth:`snapshot` states to
  ``/ha/state`` so a standby promotes *warm*: it restores the shadow
  flow/group bookkeeping before claiming switches instead of cold
  re-learning the network,
* promotion ends with an anti-entropy sweep: per switch, the rules the
  previous regime installed (cookie = election generation >= 1) are
  diffed against the new leader's desired state — stale rules deleted,
  missing rules installed — and the failover record measures the
  control-plane blackout from failure detection to reconciliation.

During a blackout (no live master) switches stay fail-safe: the data
plane keeps forwarding on installed rules while control events buffer in
a bounded queue (overflow ledger-attributed) until the next master
flushes them.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from ..coordination.store import Coordinator, NoNodeError
from ..sim.audit import DeliveryLedger
from ..sim.costs import CostModel
from ..sim.engine import Engine
from .controller import ControllerApp, SdnController
from .flow import Match
from .openflow import ROLE_MASTER, ROLE_SLAVE, RoleReply, RoleRequest

ELECTION_PATH = "/ha/election"
GENERATION_PATH = "/ha/generation"
STATE_PATH = "/ha/state"


class ControllerReplica:
    """One controller instance in the replicated control plane."""

    def __init__(self, plane: "HAControlPlane", name: str):
        self.plane = plane
        self.name = name
        self.sdn = SdnController(plane.engine, plane.costs, name=name)
        self.sdn.channel_name = name
        self.sdn.ledger = plane.ledger
        self.sdn.role_reply_handler = self._on_role_reply
        self.role = ROLE_SLAVE
        #: Election generation under which this replica holds (or last
        #: held) mastership; 0 = never promoted.
        self.generation = 0
        self.up = True
        #: False models a partition between this replica and the store:
        #: heartbeats stop (the session will expire) while the replica
        #: itself keeps running — the stale-master scenario.
        self.store_reachable = True
        self.outages = 0
        self.promotions = 0
        #: Stale RoleReplies received: the switch fenced one of our
        #: messages because a newer master exists.
        self.fenced = 0
        self.member_path: Optional[str] = None
        self.last_heartbeat = 0.0

    @property
    def is_leader(self) -> bool:
        return self.plane.leader_name == self.name

    # -- chaos injection ---------------------------------------------------

    def fail(self) -> None:
        """Crash this replica (controller process death)."""
        if not self.up:
            return
        self.up = False
        self.outages += 1
        self.sdn.fail()
        for dpid in sorted(self.sdn.switches):
            self.sdn.switches[dpid].set_channel_up(self.name, False)

    def recover(self) -> None:
        """Restart the replica. Anything it queued died with the old
        process; unless it somehow still holds leadership (a blip shorter
        than the session timeout) it rejoins the election as a standby."""
        if self.up:
            return
        self.up = True
        self.sdn.drop_backlogs()
        self.sdn.recover()
        if self.plane.leader_name != self.name:
            self.role = ROLE_SLAVE
            self.sdn.rule_cookie = 0
        for dpid in sorted(self.sdn.switches):
            self.sdn.switches[dpid].set_channel_up(self.name, True)

    # -- role handling -----------------------------------------------------

    def _on_role_reply(self, reply: RoleReply) -> None:
        if reply.stale:
            self.fenced += 1
            if self.role == ROLE_MASTER \
                    and reply.generation_id > self.generation:
                # A newer master exists: this replica was deposed while
                # it could not observe the election (partition).
                self.role = ROLE_SLAVE

    def snapshot(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "role": self.role,
            "up": self.up,
            "store_reachable": self.store_reachable,
            "generation": self.generation,
            "promotions": self.promotions,
            "outages": self.outages,
            "fenced": self.fenced,
            "apps": [app.name for app in self.sdn.apps],
        }


class HAControlPlane:
    """Election, warm-standby sync and failover for controller replicas."""

    def __init__(self, engine: Engine, costs: CostModel,
                 coordinator: Coordinator,
                 ledger: Optional[DeliveryLedger] = None,
                 replicas: int = 3,
                 name_prefix: str = "controller",
                 heartbeat_interval: float = 0.2,
                 session_timeout: float = 0.6,
                 sync_interval: float = 0.5,
                 reconcile_settle: float = 0.25,
                 blackout_budget: float = 3.0):
        if replicas < 2:
            raise ValueError("a replicated control plane needs >= 2 "
                             "replicas, got %d" % replicas)
        self.engine = engine
        self.costs = costs
        self.coordinator = coordinator
        self.ledger = ledger
        self.heartbeat_interval = heartbeat_interval
        self.session_timeout = session_timeout
        self.sync_interval = sync_interval
        self.reconcile_settle = reconcile_settle
        #: Virtual-seconds budget a failover blackout (detection to
        #: reconciliation) must stay under; checked by the chaos harness.
        self.blackout_budget = blackout_budget
        self.replicas: List[ControllerReplica] = [
            ControllerReplica(self, "%s-%d" % (name_prefix, index))
            for index in range(replicas)
        ]
        self._by_name = {replica.name: replica for replica in self.replicas}
        self.leader_name: Optional[str] = None
        self.generation = 0
        #: Completed and in-flight failover records (dicts; see
        #: :meth:`_promote`). The initial election is not a failover and
        #: is not recorded here.
        self.failovers: List[Dict[str, Any]] = []
        self._leader_lost_at: Optional[float] = None
        self._started = False
        if not coordinator.exists(ELECTION_PATH):
            coordinator.create(ELECTION_PATH, make_parents=True)
        if not coordinator.exists(GENERATION_PATH):
            coordinator.create(GENERATION_PATH, 0)
        coordinator.watch_children(ELECTION_PATH, self._on_members_changed)

    # -- wiring ------------------------------------------------------------

    def replica(self, name: str) -> ControllerReplica:
        return self._by_name[name]

    @property
    def leader(self) -> Optional[ControllerReplica]:
        if self.leader_name is None:
            return None
        return self._by_name.get(self.leader_name)

    @property
    def active_sdn(self) -> SdnController:
        """The leader's controller; during a blackout, the last leader's
        (its queues absorb sends until promotion rewires everything)."""
        leader = self.leader
        if leader is not None:
            return leader.sdn
        return self.replicas[0].sdn

    def register_app_factory(
            self, factory: Callable[[], ControllerApp]) -> None:
        """Instantiate and register one app per replica (apps hold
        per-controller state, so each replica needs its own instance)."""
        for replica in self.replicas:
            replica.sdn.register_app(factory())

    def attach_switches(self, switches) -> None:
        """Register every replica as a named controller channel on every
        switch. No replica owns a switch until it wins the election."""
        for switch in switches:
            for replica in self.replicas:
                if switch.dpid in replica.sdn.switches:
                    raise ValueError("switch %s already attached"
                                     % switch.dpid)
                replica.sdn.switches[switch.dpid] = switch
                switch.register_controller(replica.name,
                                           replica.sdn._receive)
                for app in replica.sdn.apps:
                    app.on_switch_connected(switch)

    def start(self) -> None:
        """Join all replicas to the election and elect the first leader
        synchronously (claims still pay the control-channel latency, but
        they are enqueued before any client work can be)."""
        if self._started:
            raise ValueError("HA control plane already started")
        self._started = True
        for replica in self.replicas:
            self._join(replica)
        self._evaluate(self.coordinator.children(ELECTION_PATH))
        self.engine.process(self._monitor_loop(), name="ha:monitor")
        self.engine.process(self._sync_loop(), name="ha:sync")

    def _join(self, replica: ControllerReplica) -> None:
        self.coordinator.start_session(replica.name)
        replica.member_path = self.coordinator.create(
            ELECTION_PATH + "/member-", data=replica.name,
            ephemeral_owner=replica.name, sequence=True)
        replica.last_heartbeat = self.engine.now

    # -- liveness ----------------------------------------------------------

    def _monitor_loop(self):
        """The store's session machinery: replicas that heartbeat keep
        their ephemeral member node; silent ones expire after the session
        timeout, which deletes the node and triggers the election watch."""
        while True:
            yield self.heartbeat_interval
            now = self.engine.now
            for replica in self.replicas:
                if replica.up and replica.store_reachable:
                    if self.coordinator.session_active(replica.name):
                        replica.last_heartbeat = now
                    else:
                        # Healed partition or restarted process: rejoin
                        # the election with a fresh (higher) sequence.
                        self._join(replica)
                elif self.coordinator.session_active(replica.name) and \
                        now - replica.last_heartbeat > self.session_timeout:
                    if replica.name == self.leader_name \
                            and self._leader_lost_at is None:
                        self._leader_lost_at = now
                    self.coordinator.expire_session(replica.name)

    def _sync_loop(self):
        """Leader duties between failovers: publish app snapshots for the
        standbys (warm takeover) and re-assert mastership over switches
        that lost it (e.g. a restarted switch remembering a dead master)."""
        while True:
            yield self.sync_interval
            leader = self.leader
            if leader is None or not leader.up \
                    or not leader.store_reachable \
                    or leader.role != ROLE_MASTER:
                continue
            snapshots = {}
            for app in leader.sdn.apps:
                state = app.snapshot()
                if state is not None:
                    snapshots[app.name] = state
            self.coordinator.ensure(STATE_PATH, snapshots)
            for dpid in sorted(leader.sdn.switches):
                switch = leader.sdn.switches[dpid]
                if switch.up and (
                        switch.master_controller != leader.name
                        or switch.master_generation < leader.generation):
                    leader.sdn.send(dpid, RoleRequest(
                        leader.name, ROLE_MASTER, leader.generation))

    # -- election ----------------------------------------------------------

    def _on_members_changed(self, _path: str, names: List[str]) -> None:
        self._evaluate(names)

    def _evaluate(self, names: List[str]) -> None:
        """ZooKeeper recipe: the live member with the lowest sequence is
        the rightful leader. A dead member's claim only clears when its
        session expires, so failover waits for the session timeout."""
        if not names:
            return
        owner = self.coordinator.get_data(
            ELECTION_PATH + "/" + names[0])
        elected = self._by_name.get(owner)
        if elected is None:
            return
        # Replicas that can observe the election and see they are not
        # elected step down locally (a partitioned stale master cannot,
        # and must be fenced by the switches instead).
        for replica in self.replicas:
            if replica is not elected and replica.role == ROLE_MASTER \
                    and replica.up and replica.store_reachable:
                replica.role = ROLE_SLAVE
        if not elected.up or not elected.store_reachable:
            return  # cannot serve; its own session will expire next
        if self.leader_name == elected.name \
                and elected.role == ROLE_MASTER:
            return  # stable leadership
        self._promote(elected)

    def _promote(self, replica: ControllerReplica) -> None:
        initial = self.leader_name is None
        detected_at = self._leader_lost_at
        if detected_at is None:
            detected_at = self.engine.now
        data, version = self.coordinator.get(GENERATION_PATH)
        generation = int(data or 0) + 1
        # CAS: the generation counter is the fencing token — it must
        # only ever move forward, one step per promotion.
        self.coordinator.set(GENERATION_PATH, generation,
                             expected_version=version)
        previous = self.leader_name
        # A promotion supersedes any unfinished reconciliation sweep of
        # an earlier regime (e.g. the successor died mid-sweep): the new
        # leader's own sweep covers that blackout end to end.
        for record in self.failovers:
            if record["reconciled_at"] is None:
                record["superseded"] = True
        self.generation = generation
        self.leader_name = replica.name
        self._leader_lost_at = None
        replica.role = ROLE_MASTER
        replica.generation = generation
        replica.promotions += 1
        replica.sdn.rule_cookie = generation
        if not initial:
            # Warm takeover: load the last state the old regime
            # published before touching any switch.
            snapshots = self.coordinator.get_data(STATE_PATH)
            if snapshots:
                for app in replica.sdn.apps:
                    state = snapshots.get(app.name)
                    if state is not None:
                        app.restore(state)
        for dpid in sorted(replica.sdn.switches):
            replica.sdn.send(dpid, RoleRequest(
                replica.name, ROLE_MASTER, generation))
        if initial:
            return
        record: Dict[str, Any] = {
            "generation": generation,
            "leader": replica.name,
            "previous": previous,
            "detected_at": round(detected_at, 6),
            "promoted_at": round(self.engine.now, 6),
            "reconciled_at": None,
            "blackout_ms": None,
            "superseded": False,
            "stale_deleted": 0,
            "repaired": 0,
        }
        self.failovers.append(record)
        self.engine.process(self._reconcile(replica, record),
                            name="ha:reconcile:g%d" % generation)

    # -- anti-entropy reconciliation ---------------------------------------

    def _desired_flows(self, replica: ControllerReplica
                       ) -> Dict[Tuple[str, Match], Tuple[int, tuple]]:
        desired: Dict[Tuple[str, Match], Tuple[int, tuple]] = {}
        for app in replica.sdn.apps:
            flows = app.desired_flows()
            if flows:
                for key, (priority, actions) in flows.items():
                    desired[key] = (priority, tuple(actions))
        return desired

    def _reconcile(self, replica: ControllerReplica,
                   record: Dict[str, Any]):
        """Sweep every switch: rules stamped by any election generation
        (cookie >= 1) that the new leader does not want are deleted;
        wanted rules that are missing or differ are (re)installed."""
        yield self.reconcile_settle
        sdn = replica.sdn
        for dpid in sorted(sdn.switches):
            if not replica.up or self.leader_name != replica.name:
                return  # superseded mid-sweep; the next leader redoes it
            switch = sdn.switches[dpid]
            if not switch.up:
                continue  # a restarting switch re-syncs via reconnect
            reply = yield sdn.request_flow_stats(dpid)
            if not replica.up or self.leader_name != replica.name:
                return
            desired = self._desired_flows(replica)
            want = {match: value for (d, match), value in desired.items()
                    if d == dpid}
            have: Dict[Match, Tuple[int, tuple]] = {}
            for entry in reply.entries:
                if entry.cookie >= 1:
                    have[entry.match] = (entry.priority,
                                         tuple(entry.actions))
            for entry in reply.entries:
                if entry.cookie >= 1 and entry.match not in want:
                    sdn.delete_flows(dpid, entry.match, strict=True,
                                     priority=entry.priority)
                    record["stale_deleted"] += 1
            for match, (priority, actions) in want.items():
                if have.get(match) != (priority, actions):
                    sdn.install_flow(dpid, match, actions,
                                     priority=priority)
                    record["repaired"] += 1
        now = self.engine.now
        record["reconciled_at"] = round(now, 6)
        record["blackout_ms"] = round(
            (now - record["detected_at"]) * 1000.0, 3)

    # -- audit / surfaces --------------------------------------------------

    def rule_divergence(self) -> Dict[str, int]:
        """Direct inspection: per live switch, generation-stamped rules
        vs the current leader's desired state (both directions, actions
        included). All-zero after every failover reconciles."""
        stale = missing = mismatched = 0
        leader = self.leader
        if leader is not None:
            desired = self._desired_flows(leader)
            for dpid in sorted(leader.sdn.switches):
                switch = leader.sdn.switches[dpid]
                if not switch.up:
                    continue
                want = {match: value
                        for (d, match), value in desired.items()
                        if d == dpid}
                have: Dict[Match, Tuple[int, tuple]] = {}
                for entry in switch.flows:
                    if entry.cookie >= 1:
                        have[entry.match] = (entry.priority,
                                             tuple(entry.actions))
                for match, value in have.items():
                    if match not in want:
                        stale += 1
                    elif want[match] != value:
                        mismatched += 1
                for match in want:
                    if match not in have:
                        missing += 1
        return {"stale": stale, "missing": missing,
                "mismatched": mismatched,
                "total": stale + missing + mismatched}

    def blackout_summary(self) -> Dict[str, Any]:
        blackouts = [record["blackout_ms"] for record in self.failovers
                     if record["blackout_ms"] is not None]
        unreconciled = sum(1 for record in self.failovers
                           if record["reconciled_at"] is None
                           and not record.get("superseded"))
        return {
            "failovers": len(self.failovers),
            "unreconciled": unreconciled,
            "max_blackout_ms": max(blackouts) if blackouts else 0.0,
            "budget_ms": round(self.blackout_budget * 1000.0, 3),
        }

    def fencing_summary(self) -> Dict[str, int]:
        leader = self.leader if self.leader is not None \
            else self.replicas[0]
        rejections = sum(
            leader.sdn.switches[dpid].stale_master_rejections
            for dpid in leader.sdn.switches)
        return {
            "switch_rejections": rejections,
            "replica_fenced": sum(r.fenced for r in self.replicas),
        }

    def election_members(self) -> List[Dict[str, str]]:
        try:
            names = self.coordinator.children(ELECTION_PATH)
        except NoNodeError:
            return []
        return [{"member": name,
                 "owner": self.coordinator.get_data(
                     ELECTION_PATH + "/" + name)}
                for name in names]

    def snapshot(self) -> Dict[str, Any]:
        """Full HA state for the GET /ha REST surface."""
        reference = self.leader if self.leader is not None \
            else self.replicas[0]
        switches = {}
        for dpid in sorted(reference.sdn.switches):
            switch = reference.sdn.switches[dpid]
            stats = switch.stats()
            switches[dpid] = {
                "master": stats["master"],
                "master_generation": stats["master_generation"],
                "stale_master_rejections":
                    stats["stale_master_rejections"],
                "pending_controller": stats["pending_controller"],
                "pending_high_water": stats["pending_high_water"],
                "pending_overflow_dropped":
                    stats["pending_overflow_dropped"],
            }
        return {
            "leader": self.leader_name,
            "generation": self.generation,
            "replicas": [replica.snapshot()
                         for replica in self.replicas],
            "election": self.election_members(),
            "failovers": list(self.failovers),
            "blackout": self.blackout_summary(),
            "fencing": self.fencing_summary(),
            "rule_divergence": self.rule_divergence(),
            "switches": switches,
            "store": self.coordinator.stats(),
        }

"""Link bandwidth allocation policy (pure functions).

The SDN side of resource-aware scheduling (§5): once the scheduler has
placed workers, the inter-host flows that share a physical link compete
for its capacity. These helpers compute how much each flow should get.
The :class:`~repro.core.apps.bandwidth_allocator.BandwidthAllocator`
controller app turns the answer into switch meters (``MeterMod``) and
re-runs the computation as observed rates shift.

The policy is weighted max-min fairness with guarantees:

* each flow has a *guarantee* — its weighted share of the link,
  ``fair_shares`` — that any flow which wants it is always granted
  within one control round (no starvation);
* capacity a flow does not currently use is lent to hungry flows in
  proportion to their guarantees (progressive filling); the lender's
  allocation may drop below its guarantee but never below
  ``RECLAIM_FLOOR`` of it, so it always has enough headroom left to
  signal hunger and reclaim its full guarantee the next round;
* when guarantees alone would overshoot (a quiet flow ramps back up),
  the trim comes out of above-guarantee surplus first, so a hungry
  flow is never pushed below its guarantee by another flow's borrow.

All functions are deterministic and side-effect free so the allocation
loop — and its tests — can reason about convergence exactly.
"""

from __future__ import annotations

from typing import Dict, Mapping

#: Observed-rate headroom: a flow is "hungry" when its observed rate is
#: within this fraction of its current allocation (it is likely being
#: clipped by its meter, not naturally slower).
HUNGRY_FRACTION = 0.9

#: Satisfied flows shrink to ``observed / SHRINK_FRACTION``. Strictly
#: below HUNGRY_FRACTION so the shrink target is a fixed point: a flow
#: sending a constant rate sits at observed == SHRINK * alloc, safely
#: outside the hunger band, instead of oscillating on its edge.
SHRINK_FRACTION = 0.8

#: An allocation never drops below this fraction of the guarantee, even
#: for an idle flow — the floor keeps enough metered headroom that a
#: ramping flow trips HUNGRY_FRACTION and reclaims its guarantee in one
#: round.
RECLAIM_FLOOR = 0.25

#: Relative change below which a reallocation round is considered a
#: no-op (meters are not reprogrammed, the loop can settle).
SETTLE_EPSILON = 0.05


def fair_shares(capacity: float,
                weights: Mapping[str, float]) -> Dict[str, float]:
    """Weighted guaranteed share of ``capacity`` for each flow.

    Weights are the flows' demanded rates (or 1.0 when undeclared); a
    flow's guarantee is ``capacity * w / sum(w)``. Every flow gets a
    strictly positive guarantee so none can be starved by the meters.
    """
    if capacity <= 0:
        raise ValueError("link capacity must be positive")
    if not weights:
        return {}
    total = 0.0
    normalized: Dict[str, float] = {}
    for name, weight in weights.items():
        w = weight if weight > 0 else 1.0
        normalized[name] = w
        total += w
    return {name: capacity * w / total for name, w in normalized.items()}


def reallocate(
    allocations: Mapping[str, float],
    observed: Mapping[str, float],
    guarantees: Mapping[str, float],
    capacity: float,
) -> Dict[str, float]:
    """One round of progressive filling; returns the new allocations.

    ``observed`` are per-flow measured rates since the last round.
    Hungry flows (observed near their allocation — the meter is likely
    clipping them) are raised to at least their guarantee; satisfied
    flows shrink toward ``observed / SHRINK_FRACTION`` — but never
    below ``RECLAIM_FLOOR`` of their guarantee — and the freed capacity
    is split among hungry flows in proportion to their guarantees.
    Overshoot is trimmed from above-guarantee surplus first; total
    never exceeds ``capacity``.
    """
    if capacity <= 0:
        raise ValueError("link capacity must be positive")
    flows = list(guarantees)
    if not flows:
        return {}
    new: Dict[str, float] = {}
    hungry = []
    for name in flows:
        guarantee = guarantees[name]
        alloc = allocations.get(name, guarantee)
        rate = observed.get(name, 0.0)
        if rate >= HUNGRY_FRACTION * alloc:
            hungry.append(name)
            new[name] = max(alloc, guarantee)
        else:
            # Lend what the flow demonstrably does not use, keeping
            # headroom (SHRINK_FRACTION) so a steady sender is a fixed
            # point and a floor (RECLAIM_FLOOR) so a ramping one can
            # still signal hunger through its meter.
            new[name] = max(guarantee * RECLAIM_FLOOR,
                            rate / SHRINK_FRACTION)
    spare = capacity - sum(new.values())
    if spare > 0 and hungry:
        weight_total = sum(guarantees[name] for name in hungry)
        if weight_total > 0:
            for name in hungry:
                new[name] += spare * guarantees[name] / weight_total
    # Overshoot (quiet flows ramping back to their guarantees while
    # others still hold borrowed surplus): claw back the surplus held
    # above guarantees first, so nobody is trimmed below a guarantee
    # they are actively asking for.
    excess = sum(new.values()) - capacity
    if excess > 0:
        surplus = {name: max(0.0, new[name] - guarantees[name])
                   for name in flows}
        surplus_total = sum(surplus.values())
        if surplus_total > 0:
            take = min(excess, surplus_total)
            for name in flows:
                if surplus[name] > 0:
                    new[name] -= take * surplus[name] / surplus_total
            excess -= take
        if excess > 1e-9:
            # Guarantees alone exceed capacity (caller passed shares
            # not produced by fair_shares): last-resort uniform scale.
            scale = capacity / sum(new.values())
            for name in flows:
                new[name] *= scale
    return new


def settled(old: Mapping[str, float], new: Mapping[str, float],
            epsilon: float = SETTLE_EPSILON) -> bool:
    """True when no allocation moved by more than ``epsilon`` relative."""
    for name, value in new.items():
        prev = old.get(name)
        if prev is None:
            return False
        base = max(abs(prev), 1e-9)
        if abs(value - prev) / base > epsilon:
            return False
    return True

"""OpenFlow-like control-protocol messages.

The Typhoon controller drives everything through this message set (§3.4):
``FlowMod`` programs tuple routing, ``PacketOut`` injects control tuples,
``PacketIn`` carries worker statistics responses back, ``PortStatus``
signals worker attach/detach (the fault detector's trigger), and the
stats request/reply pairs expose the cross-layer network statistics the
control-plane applications consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..net.ethernet import EthernetFrame
from .flow import Action, Match
from .group import Bucket

#: Virtual output port: re-submit the frame to the flow table.
OFPP_TABLE = 0xFFFFFFF9

ADD = "add"
MODIFY = "modify"
DELETE = "delete"
DELETE_STRICT = "delete_strict"

PORT_ADD = "add"
PORT_DELETE = "delete"

REASON_PACKET_OUT = "packet_out"
REASON_ACTION = "action"
REASON_IDLE_TIMEOUT = "idle_timeout"
REASON_DELETE = "delete"

#: OFPT_ROLE_REQUEST roles (OpenFlow 1.2+ controller role machinery).
ROLE_MASTER = "master"
ROLE_SLAVE = "slave"
ROLE_EQUAL = "equal"


@dataclass
class Message:
    """Base class for controller <-> switch messages."""


@dataclass
class FlowMod(Message):
    """Install / delete flow rules."""

    command: str
    match: Match
    actions: Tuple[Action, ...] = ()
    priority: int = 100
    idle_timeout: Optional[float] = None
    cookie: int = 0

    def __post_init__(self) -> None:
        self.actions = tuple(self.actions)
        if self.command not in (ADD, MODIFY, DELETE, DELETE_STRICT):
            raise ValueError("bad FlowMod command: %r" % self.command)


@dataclass
class GroupMod(Message):
    """Install / modify / delete a group entry."""

    command: str
    group_id: int
    group_type: str = "select"
    buckets: Tuple[Bucket, ...] = ()

    def __post_init__(self) -> None:
        self.buckets = tuple(self.buckets)
        if self.command not in (ADD, MODIFY, DELETE):
            raise ValueError("bad GroupMod command: %r" % self.command)


@dataclass
class PacketOut(Message):
    """Inject a frame into the switch data plane.

    ``in_port`` is the nominal ingress (OFPP_CONTROLLER for control
    tuples); actions usually either output to explicit ports or re-submit
    to the flow table via ``Output(OFPP_TABLE)``.
    """

    frame: EthernetFrame
    actions: Tuple[Action, ...]
    in_port: int

    def __post_init__(self) -> None:
        self.actions = tuple(self.actions)


@dataclass
class PacketIn(Message):
    """Frame delivered to the controller (e.g. METRIC_RESP control tuples)."""

    dpid: str
    frame: EthernetFrame
    in_port: int
    reason: str = REASON_ACTION


@dataclass
class PortStatus(Message):
    """Port added/removed. Unexpected removals signal worker death (§4)."""

    dpid: str
    port_no: int
    port_name: str
    reason: str


@dataclass
class FlowRemoved(Message):
    """A rule expired (idle timeout) or was deleted."""

    dpid: str
    match: Match
    cookie: int
    reason: str
    packets: int
    bytes: int


@dataclass
class SwitchReconnect(Message):
    """A crashed switch came back with an empty flow table.

    Real controllers see this as the control channel re-establishing
    (OpenFlow HELLO + feature reply); apps must assume all previously
    installed state on ``dpid`` is gone and re-sync.
    """

    dpid: str


@dataclass
class RoleRequest(Message):
    """A controller claims a role on a switch (OFPT_ROLE_REQUEST).

    ``generation_id`` is the monotonic master-election epoch: a switch
    remembers the largest generation it has granted and rejects MASTER
    claims carrying a smaller one, which fences controllers that were
    deposed while partitioned (the OpenFlow 1.2+ split-brain guard).
    """

    controller: str
    role: str
    generation_id: int

    def __post_init__(self) -> None:
        if self.role not in (ROLE_MASTER, ROLE_SLAVE, ROLE_EQUAL):
            raise ValueError("bad controller role: %r" % self.role)


@dataclass
class RoleReply(Message):
    """The switch's answer to a :class:`RoleRequest`.

    ``stale=True`` means the claim (or a state-mutating message from a
    non-master channel) was rejected; ``generation_id`` then carries the
    switch's current generation so the deposed controller can learn it
    lost mastership.
    """

    dpid: str
    controller: str
    role: str
    generation_id: int
    stale: bool = False


@dataclass
class FlowStatsRequest(Message):
    match: Match = field(default_factory=Match)


@dataclass
class FlowStatsEntry:
    match: Match
    priority: int
    cookie: int
    packets: int
    bytes: int
    actions: Tuple[Action, ...] = ()


@dataclass
class FlowStatsReply(Message):
    dpid: str
    entries: List[FlowStatsEntry]


@dataclass
class MeterMod(Message):
    """Install / modify / delete a rate meter (per-port rate queue).

    Frames directed through the meter by a :class:`~repro.sdn.flow.Meter`
    flow action are shaped to ``rate_bytes_per_sec``: a ``burst_bytes``
    token bucket absorbs bursts, excess traffic queues up to
    ``max_queue_seconds`` of delay and overflow is dropped (attributed as
    ``meter-limit`` in the delivery ledger).
    """

    command: str
    meter_id: int
    rate_bytes_per_sec: float = 0.0
    burst_bytes: float = 0.0
    max_queue_seconds: float = 0.05

    def __post_init__(self) -> None:
        if self.command not in (ADD, MODIFY, DELETE):
            raise ValueError("bad MeterMod command: %r" % self.command)
        if self.command != DELETE and self.rate_bytes_per_sec <= 0:
            raise ValueError("meter rate must be positive")


@dataclass
class MeterStatsRequest(Message):
    meter_id: Optional[int] = None


@dataclass
class MeterStatsEntry:
    meter_id: int
    rate_bytes_per_sec: float
    packets: int
    bytes: int
    dropped_packets: int
    dropped_bytes: int


@dataclass
class MeterStatsReply(Message):
    dpid: str
    entries: List[MeterStatsEntry]


@dataclass
class PortStatsRequest(Message):
    port_no: Optional[int] = None


@dataclass
class PortStatsEntry:
    port_no: int
    port_name: str
    rx_packets: int
    tx_packets: int
    rx_bytes: int
    tx_bytes: int
    tx_dropped: int


@dataclass
class PortStatsReply(Message):
    dpid: str
    entries: List[PortStatsEntry]

"""Typhoon framework layer: control-tuple handling inside workers (§3.3.2).

The :class:`~repro.streaming.executor.WorkerExecutor` already implements
routing, (de)serialization and tuple classification; this module supplies
the Typhoon-specific piece — the handler invoked for tuples on the
CONTROL stream. Depending on their role, control tuples are consumed
here (ROUTING, METRIC_REQ, INPUT_RATE, ACTIVATE/DEACTIVATE, BATCH_SIZE)
or passed up to the application layer (SIGNAL -> ``on_signal``).
"""

from __future__ import annotations


from ..streaming.executor import WorkerExecutor
from ..streaming.grouping import Router
from ..streaming.tuples import StreamTuple, signal_tuple
from . import control as ct
from .io_layer import TyphoonTransport

#: CPU charged for applying a worker-local reconfiguration.
_RECONFIG_COST = 2e-6


def _reset_rate_window(executor: WorkerExecutor) -> None:
    """Restart rate-limit accounting from now (after rate changes or
    re-activation, so paused time doesn't count as emission budget)."""
    executor._rate_anchor = executor.engine.now
    executor._emitted_since_anchor = 0


def handle_control_tuple(executor: WorkerExecutor,
                         stream_tuple: StreamTuple) -> float:
    """Dispatch one control tuple; returns the virtual-time cost.

    Sequence-stamped tuples (reliable control channel) are acknowledged
    back to the controller and applied at most once: the controller may
    retry a delivery the PacketIn ack for which was lost, and blindly
    re-applying e.g. a stale ROUTING update would undo newer state."""
    message = ct.ControlTuple.from_stream_tuple(stream_tuple)
    transport = executor.transport
    seq = message.payload.get(ct.SEQ_KEY)
    if seq is not None:
        cost = 0.0
        if isinstance(transport, TyphoonTransport):
            receipt = ct.control_ack(seq, executor.worker_id)
            cost += transport.send_to_controller(
                receipt.to_stream_tuple(executor.worker_id))
        # METRIC_REQ is exempt from dedup: its whole effect is the
        # response, and a retry means the previous response was lost.
        if (message.ctype != ct.METRIC_REQ
                and seq in executor.applied_control_seqs):
            return cost + _RECONFIG_COST
        executor.applied_control_seqs.add(seq)
        return cost + _dispatch_control(executor, message, stream_tuple)
    return _dispatch_control(executor, message, stream_tuple)


def _dispatch_control(executor: WorkerExecutor, message: "ct.ControlTuple",
                      stream_tuple: StreamTuple) -> float:
    transport = executor.transport
    if message.ctype == ct.ROUTING:
        return _apply_routing(executor, message)
    if message.ctype == ct.SIGNAL:
        kind = message.payload.get("kind", "flush")
        flush = signal_tuple(kind, source_worker=stream_tuple.source_worker)
        return _RECONFIG_COST + executor._run_component(flush, signal=True)
    if message.ctype == ct.METRIC_REQ:
        response = ct.metric_response(
            message.request_id, executor.worker_id, executor.stats_snapshot()
        )
        if isinstance(transport, TyphoonTransport):
            return _RECONFIG_COST + transport.send_to_controller(
                response.to_stream_tuple(executor.worker_id)
            )
        return _RECONFIG_COST
    if message.ctype == ct.INPUT_RATE:
        rate = message.payload.get("rate", -1.0)
        executor.input_rate_limit = None if rate < 0 else rate
        _reset_rate_window(executor)
        return _RECONFIG_COST
    if message.ctype == ct.ACTIVATE:
        executor.active = True
        _reset_rate_window(executor)
        return _RECONFIG_COST
    if message.ctype == ct.DEACTIVATE:
        executor.active = False
        return _RECONFIG_COST
    if message.ctype == ct.BATCH_SIZE:
        size = int(message.payload.get("size", executor.config.batch_size))
        transport.set_batch_size(size)
        executor._emit_batch = max(1, size)
        return _RECONFIG_COST
    # METRIC_RESP and unknown types are controller-bound; ignore.
    return _RECONFIG_COST


def _apply_routing(executor: WorkerExecutor, message: ct.ControlTuple) -> float:
    """ROUTING: swap per-edge routing state without touching ongoing
    computation (§3.3.2). New edges may appear (e.g. a dynamically added
    downstream component); empty next-hop lists remove an edge."""
    from ..streaming.topology import SDN_SELECT
    from .rules import select_address

    transport = executor.transport
    for update in ct.parse_routing(message):
        key = (update.dst_component, update.stream)
        if not update.next_hops:
            executor.routers.pop(key, None)
            continue
        router = executor.routers.get(key)
        if router is None:
            grouping = update.grouping()
            if grouping is None:
                continue  # cannot create an edge without a policy
            executor.routers[key] = Router(grouping, update.next_hops,
                                           stream=update.stream)
        else:
            router.update(next_hops=update.next_hops,
                          grouping=update.grouping())
        # SDN offload: derive the edge's virtual select address so the
        # I/O layer can target the switch's select group.
        if (update.grouping_kind == SDN_SELECT
                and isinstance(transport, TyphoonTransport)):
            transport.select_addresses[key] = select_address(
                transport.app_id, update.dst_component, update.stream)
    return _RECONFIG_COST

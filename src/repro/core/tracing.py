"""Typhoon-side glue for the hop-by-hop tracing layer.

The tracer itself lives in :mod:`repro.sim.trace` (it must be importable
from every layer — switch, channels, transports — without cycles); this
module contributes the pieces that understand Typhoon frames and
clusters:

* :func:`frame_trace_ids` — the tracer ``frame_inspector`` that maps an
  Ethernet frame (or packed tunnel bytes) to the trace ids of sampled
  tuples it carries;
* :func:`trace_snapshot` — JSON-shaped view for ``GET /trace``;
* :func:`run_forwarding_trace` — the Fig. 8 forwarding workload with
  tracing enabled, behind ``repro trace``.

Tuple identity across fragmentation mirrors the audit layer: a FRAGMENT
frame carries its tuple's trace id iff it is the head (``offset == 0``),
so replication/drop of a traced fragmented tuple is recorded exactly
once per frame copy.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..net.ethernet import EthernetFrame
from ..sim.trace import TraceReport, Tracer
from ..streaming.serialize import peek_trace_id
from .packets import Fragment, unpack_payload

__all__ = [
    "TraceReport",
    "Tracer",
    "frame_trace_ids",
    "run_forwarding_trace",
    "trace_snapshot",
]


def frame_trace_ids(frame: object) -> Tuple[int, ...]:
    """Tracer inspector: trace ids of sampled tuples inside a frame.

    Accepts :class:`EthernetFrame` objects or packed frame bytes (the
    form tunnels carry). A fragment contributes its id only on the head
    chunk; trailing fragments are anonymous, like in the audit layer.
    """
    if isinstance(frame, (bytes, bytearray)):
        frame = EthernetFrame.unpack(bytes(frame))
    if not isinstance(frame, EthernetFrame):
        return ()
    decoded = unpack_payload(frame.payload)
    if isinstance(decoded, Fragment):
        if decoded.offset != 0:
            return ()
        trace_id = peek_trace_id(decoded.data)
        return (trace_id,) if trace_id is not None else ()
    ids = []
    for chunk in decoded:
        trace_id = peek_trace_id(chunk)
        if trace_id is not None:
            ids.append(trace_id)
    return tuple(ids)


def trace_snapshot(cluster) -> Dict[str, object]:
    """Live view of the tracer for ``GET /trace`` (non-quiescing)."""
    tracer: Optional[Tracer] = getattr(cluster, "tracer", None)
    if tracer is None:
        return {"enabled": False, "sample_every": 0}
    report = tracer.report()
    out = report.to_dict()
    out["enabled"] = tracer.enabled
    out["span_events"] = tracer.span_events
    out["overflow_traces"] = tracer.overflow_traces
    return out


def run_forwarding_trace(seed: int = 0, sample_every: int = 7,
                         rate: float = 50_000.0, duration: float = 0.5,
                         hosts: int = 2):
    """Run the Fig. 8 forwarding workload with tracing on.

    Returns ``(report, tracer, cluster)`` after quiescing, so every
    sampled tuple has reached a terminal hop and the hop-sum identity
    against ``trace.e2e`` in the metrics registry holds exactly.
    """
    from ..sim.engine import Engine
    from ..streaming.topology import TopologyConfig
    from ..workloads.wordcount import forwarding_topology
    from .audit import quiesce
    from .runtime import TyphoonCluster

    engine = Engine()
    cluster = TyphoonCluster(engine, num_hosts=hosts, seed=seed)
    cluster.tracer.configure(sample_every)
    config = TopologyConfig(batch_size=50, max_spout_rate=rate,
                            acking=False)
    cluster.submit(forwarding_topology("fwd", config))
    deploy = 2.1  # same settle the bench harness gives §3.2 deployment
    engine.run(until=deploy)
    engine.run(until=deploy + duration)
    quiesce(cluster, settle=1.0)
    return cluster.tracer.report(), cluster.tracer, cluster

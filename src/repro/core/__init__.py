"""Typhoon core: the paper's contribution, built on the substrates."""

from . import control
from .control import (
    ACTIVATE,
    BATCH_SIZE,
    DEACTIVATE,
    INPUT_RATE,
    METRIC_REQ,
    METRIC_RESP,
    ROUTING,
    SIGNAL,
    ControlTuple,
    RoutingUpdate,
)
from .controller import TyphoonControllerApp
from .framework_layer import handle_control_tuple
from .io_layer import HostFabric, TyphoonFabric, TyphoonTransport
from .packets import Fragment, PacketError, Reassembler, pack_tuples, unpack_payload
from .rest import RestApi
from .runtime import TyphoonCluster, TyphoonManager
from .scheduler import TyphoonScheduler, topological_order
from .topology_manager import DynamicTopologyManager
from .update import ReconfigurationError, predecessor_routing_updates

__all__ = [
    "ACTIVATE",
    "BATCH_SIZE",
    "DEACTIVATE",
    "INPUT_RATE",
    "METRIC_REQ",
    "METRIC_RESP",
    "ROUTING",
    "SIGNAL",
    "ControlTuple",
    "DynamicTopologyManager",
    "Fragment",
    "HostFabric",
    "PacketError",
    "Reassembler",
    "ReconfigurationError",
    "RestApi",
    "RoutingUpdate",
    "TyphoonCluster",
    "TyphoonControllerApp",
    "TyphoonFabric",
    "TyphoonManager",
    "TyphoonScheduler",
    "TyphoonTransport",
    "control",
    "handle_control_tuple",
    "pack_tuples",
    "predecessor_routing_updates",
    "topological_order",
    "unpack_payload",
]

"""Stable topology update procedures (§3.5, Fig. 6).

Reconfiguring a running pipeline must not lose tuples or corrupt stateful
workers. The procedures below orchestrate the exact orderings the paper
prescribes:

* **add workers (stateless)** — launch first, let the controller install
  flow rules (triggered by the new ports' PortStatus events), and only
  then repoint predecessors' routing state via ROUTING control tuples;
* **remove workers (stateless)** — repoint predecessors first so nothing
  new reaches the victims, then drain-and-kill them; their rules are
  cleaned up afterwards;
* **stateful variants** — identical, plus SIGNAL control tuples injected
  into the stateful workers to flush their in-memory caches (Listing 2)
  after the first step and right before the final reconfiguration;
* **computation-logic replacement** — launch replacements with the new
  logic, cut routing over atomically, drain and retire the old workers
  (the Fig. 14 experiment).

Each procedure is a generator meant to run as an engine process; the
:class:`~repro.core.topology_manager.DynamicTopologyManager` serializes
them per topology.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..streaming.physical import WorkerAssignment
from ..streaming.topology import Grouping, LogicalTopology
from .control import RoutingUpdate

#: Settle time after pushing control tuples / flow mods, covering
#: PacketOut delivery plus worker-side application of the update.
_SETTLE = 0.05

#: Named phases of the Fig. 6 stable-update procedures, announced to
#: ``cluster.update_phase_listeners`` as ``listener(topology_id, op,
#: phase)``. Not every procedure visits every phase (scale-down never
#: launches; stateless updates never signal).
PHASE_BEGIN = "begin"          #: state written, procedure starting
PHASE_LAUNCHED = "launched"    #: new workers up and attached to switches
PHASE_RULES = "rules"          #: controller-installed flow rules settled
PHASE_SIGNALLED = "signalled"  #: SIGNAL flush of stateful caches settled
PHASE_REROUTED = "rerouted"    #: predecessors' ROUTING state swapped
PHASE_RETIRING = "retiring"    #: victims draining before removal
PHASE_DONE = "done"            #: procedure finished

UPDATE_PHASES = (PHASE_BEGIN, PHASE_LAUNCHED, PHASE_RULES, PHASE_SIGNALLED,
                 PHASE_REROUTED, PHASE_RETIRING, PHASE_DONE)


def _phase(cluster, topology_id: str, op: str, phase: str) -> None:
    """Announce a named update phase (chaos hooks inject faults here)."""
    for listener in list(getattr(cluster, "update_phase_listeners", ())):
        listener(topology_id, op, phase)


class ReconfigurationError(RuntimeError):
    """Raised when a runtime reconfiguration cannot proceed."""


def predecessor_routing_updates(
    logical: LogicalTopology,
    physical,
    component: str,
    next_hops: Sequence[int],
) -> Dict[int, List[RoutingUpdate]]:
    """ROUTING payloads for every worker feeding ``component``."""
    updates: Dict[int, List[RoutingUpdate]] = {}
    for edge in logical.incoming(component):
        for worker_id in physical.worker_ids_for(edge.src):
            updates.setdefault(worker_id, []).append(RoutingUpdate(
                dst_component=component,
                stream=edge.stream,
                next_hops=list(next_hops),
                grouping_kind=edge.grouping.kind,
                grouping_fields=tuple(edge.grouping.fields),
            ))
    return updates


def wait_for_ports(cluster, worker_ids: Sequence[int], timeout: float = 30.0):
    """Poll until every worker's switch port is known to the controller."""
    deadline = cluster.engine.now + timeout
    remaining = set(worker_ids)
    while remaining:
        remaining = {wid for wid in remaining
                     if wid not in cluster.app.worker_host}
        if not remaining:
            return
        if cluster.engine.now >= deadline:
            raise ReconfigurationError(
                "workers %s never attached to the data plane"
                % sorted(remaining)
            )
        yield 0.05


def _push_routing(cluster, topology_id: str,
                  updates: Dict[int, List[RoutingUpdate]]) -> None:
    for worker_id in sorted(updates):
        cluster.app.update_routing(topology_id, worker_id, updates[worker_id])


def _signal_workers(cluster, topology_id: str,
                    worker_ids: Sequence[int]) -> None:
    for worker_id in worker_ids:
        cluster.app.send_signal(topology_id, worker_id)


def _launch_new_workers(cluster, record, component: str, count: int,
                        task_index_base: int) -> List[int]:
    """Allocate, place and launch ``count`` new workers of a component."""
    physical = record.physical
    new_ids: List[int] = []
    for offset in range(count):
        worker_id = cluster.manager.allocator.allocate()
        host = cluster.manager.scheduler.place_one(
            physical, component, cluster.cluster)
        assignment = WorkerAssignment(
            worker_id=worker_id,
            component=component,
            task_index=task_index_base + offset,
            hostname=host,
        )
        physical = physical.add_worker(assignment)
        new_ids.append(worker_id)
        record.assignment_times[worker_id] = cluster.engine.now
    record.physical = physical
    cluster.state.write_physical(record.logical.topology_id, physical)
    for worker_id in new_ids:
        assignment = physical.worker(worker_id)
        agent = cluster.manager.agent_for(assignment.hostname)
        agent.launch(record.logical.topology_id, assignment)
    return new_ids


def _retire_workers(cluster, record, worker_ids: Sequence[int]):
    """Drain-and-kill workers, then drop them from global state."""
    topology_id = record.logical.topology_id
    cluster.app.expected_removals.update(worker_ids)
    for worker_id in worker_ids:
        assignment = record.physical.worker(worker_id)
        agent = cluster.manager.agent_for(assignment.hostname)
        agent.kill(worker_id, drain=True)
        record.assignment_times.pop(worker_id, None)
    yield cluster.costs.worker_kill_latency + _SETTLE
    physical = record.physical
    for worker_id in worker_ids:
        physical = physical.remove_worker(worker_id)
    record.physical = physical
    cluster.state.write_physical(topology_id, physical)
    cluster.app.sync_topology(topology_id)
    cluster.app.expected_removals.difference_update(worker_ids)


# -- public procedures ---------------------------------------------------------


def scale_up(cluster, topology_id: str, component: str, new_parallelism: int):
    """Fig. 6(a)/(b) scale-up: launch → rules → (signal) → reroute."""
    record = cluster.manager.topologies[topology_id]
    node = record.logical.node(component)
    add_count = new_parallelism - node.parallelism
    if add_count <= 0:
        raise ReconfigurationError("scale_up needs a larger parallelism")
    old_ids = record.physical.worker_ids_for(component)
    record.logical = record.logical.with_parallelism(component,
                                                     new_parallelism)
    cluster.state.write_logical(topology_id, record.logical)
    _phase(cluster, topology_id, "scale_up", PHASE_BEGIN)

    new_ids = _launch_new_workers(cluster, record, component, add_count,
                                  task_index_base=node.parallelism)
    yield from wait_for_ports(cluster, new_ids)
    _phase(cluster, topology_id, "scale_up", PHASE_LAUNCHED)
    # Let the controller's PortStatus-triggered sync install the rules.
    yield cluster.costs.flow_install_latency + cluster.costs.openflow_rtt + _SETTLE
    _phase(cluster, topology_id, "scale_up", PHASE_RULES)

    if node.stateful:
        # Re-partitioning changes the key mapping: flush existing caches.
        _signal_workers(cluster, topology_id, old_ids)
        yield _SETTLE
        _phase(cluster, topology_id, "scale_up", PHASE_SIGNALLED)

    updates = predecessor_routing_updates(
        record.logical, record.physical, component, old_ids + new_ids)
    _push_routing(cluster, topology_id, updates)
    yield _SETTLE
    _phase(cluster, topology_id, "scale_up", PHASE_REROUTED)
    _phase(cluster, topology_id, "scale_up", PHASE_DONE)
    return new_ids


def scale_down(cluster, topology_id: str, component: str,
               new_parallelism: int):
    """Fig. 6(a)/(b) scale-down: reroute → (signal) → drain → remove."""
    record = cluster.manager.topologies[topology_id]
    node = record.logical.node(component)
    remove_count = node.parallelism - new_parallelism
    if remove_count <= 0 or new_parallelism < 1:
        raise ReconfigurationError("scale_down needs a smaller, positive "
                                   "parallelism")
    workers = record.physical.workers_for(component)
    victims = [a.worker_id for a in workers[-remove_count:]]
    survivors = [a.worker_id for a in workers[:-remove_count]]
    record.logical = record.logical.with_parallelism(component,
                                                     new_parallelism)
    cluster.state.write_logical(topology_id, record.logical)
    _phase(cluster, topology_id, "scale_down", PHASE_BEGIN)

    updates = predecessor_routing_updates(
        record.logical, record.physical, component, survivors)
    _push_routing(cluster, topology_id, updates)
    yield _SETTLE
    _phase(cluster, topology_id, "scale_down", PHASE_REROUTED)

    if node.stateful:
        # Flush the victims' caches right before removal.
        _signal_workers(cluster, topology_id, victims)
        yield _SETTLE
        _phase(cluster, topology_id, "scale_down", PHASE_SIGNALLED)

    _phase(cluster, topology_id, "scale_down", PHASE_RETIRING)
    yield from _retire_workers(cluster, record, victims)
    _phase(cluster, topology_id, "scale_down", PHASE_DONE)
    return victims


def replace_computation(cluster, topology_id: str, component: str, factory,
                        new_parallelism: Optional[int] = None):
    """Swap a component's computation logic at runtime (Fig. 14)."""
    record = cluster.manager.topologies[topology_id]
    node = record.logical.node(component)
    count = new_parallelism or node.parallelism
    old_ids = record.physical.worker_ids_for(component)

    logical = record.logical.with_factory(component, factory)
    if count != node.parallelism:
        logical = logical.with_parallelism(component, count)
    record.logical = logical
    cluster.state.write_logical(topology_id, logical)
    _phase(cluster, topology_id, "replace_computation", PHASE_BEGIN)

    max_index = max((a.task_index for a in
                     record.physical.workers_for(component)), default=-1)
    new_ids = _launch_new_workers(cluster, record, component, count,
                                  task_index_base=max_index + 1)
    yield from wait_for_ports(cluster, new_ids)
    _phase(cluster, topology_id, "replace_computation", PHASE_LAUNCHED)
    yield cluster.costs.flow_install_latency + cluster.costs.openflow_rtt + _SETTLE
    _phase(cluster, topology_id, "replace_computation", PHASE_RULES)

    if node.stateful:
        _signal_workers(cluster, topology_id, old_ids)
        yield _SETTLE
        _phase(cluster, topology_id, "replace_computation", PHASE_SIGNALLED)

    updates = predecessor_routing_updates(
        record.logical, record.physical, component, new_ids)
    _push_routing(cluster, topology_id, updates)
    yield _SETTLE
    _phase(cluster, topology_id, "replace_computation", PHASE_REROUTED)

    _phase(cluster, topology_id, "replace_computation", PHASE_RETIRING)
    yield from _retire_workers(cluster, record, old_ids)
    _phase(cluster, topology_id, "replace_computation", PHASE_DONE)
    return new_ids


def attach_component(cluster, topology_id: str, name: str, factory,
                     subscribe_to: str, grouping: Grouping,
                     parallelism: int = 1, stream: int = 0,
                     stateful: bool = False):
    """Plug a brand-new component into a running pipeline (§1's
    "interactive data mining": dynamically constructed queries attach to
    existing streaming pipelines and detach when done).

    The new node subscribes to ``subscribe_to`` via ``grouping``; the
    procedure launches its workers, waits for data-plane wiring, then
    adds the edge to the sources' routing state via ROUTING control
    tuples. Tuples keep flowing to the pre-existing downstream nodes
    untouched.
    """
    from ..streaming.topology import BOLT, Edge, LogicalNode

    record = cluster.manager.topologies[topology_id]
    if name in record.logical.nodes:
        raise ReconfigurationError("component %r already exists" % name)
    logical = record.logical.clone()
    logical.nodes[name] = LogicalNode(name, BOLT, factory,
                                      parallelism=parallelism,
                                      stateful=stateful)
    logical.edges.append(Edge(subscribe_to, name, grouping, stream))
    logical.version += 1
    logical._validate()
    record.logical = logical
    cluster.state.write_logical(topology_id, logical)
    # Physical edges must match so the controller generates rules.
    record.physical = record.physical.with_edges(list(logical.edges))
    cluster.state.write_physical(topology_id, record.physical)

    new_ids = _launch_new_workers(cluster, record, name, parallelism,
                                  task_index_base=0)
    yield from wait_for_ports(cluster, new_ids)
    yield cluster.costs.flow_install_latency + cluster.costs.openflow_rtt + _SETTLE

    for worker_id in record.physical.worker_ids_for(subscribe_to):
        cluster.app.update_routing(topology_id, worker_id, [RoutingUpdate(
            dst_component=name,
            stream=stream,
            next_hops=new_ids,
            grouping_kind=grouping.kind,
            grouping_fields=tuple(grouping.fields),
        )])
    yield _SETTLE
    return new_ids


def detach_component(cluster, topology_id: str, name: str):
    """Unplug a dynamically attached component: sources stop routing to
    it first, then its workers drain and retire."""
    record = cluster.manager.topologies[topology_id]
    node = record.logical.node(name)
    if record.logical.outgoing(name):
        raise ReconfigurationError(
            "cannot detach %r: downstream nodes depend on it" % name)
    incoming = record.logical.incoming(name)
    worker_ids = record.physical.worker_ids_for(name)

    # 1. Remove the edge from every source worker's routing state.
    for edge in incoming:
        for worker_id in record.physical.worker_ids_for(edge.src):
            cluster.app.update_routing(topology_id, worker_id, [
                RoutingUpdate(dst_component=name, stream=edge.stream,
                              next_hops=[]),
            ])
    yield _SETTLE

    if node.stateful:
        _signal_workers(cluster, topology_id, worker_ids)
        yield _SETTLE

    # 2. Drop the node from the logical topology and global state.
    logical = record.logical.clone()
    logical.edges = [e for e in logical.edges if e.dst != name]
    del logical.nodes[name]
    logical.version += 1
    record.logical = logical
    cluster.state.write_logical(topology_id, logical)
    record.physical = record.physical.with_edges(list(logical.edges))
    cluster.state.write_physical(topology_id, record.physical)

    # 3. Drain and retire the workers; rules are cleaned by the sync.
    yield from _retire_workers(cluster, record, worker_ids)
    return worker_ids


def relocate_worker(cluster, topology_id: str, worker_id: int,
                    new_host: str):
    """Move a running worker to another host (§8, stateful worker
    management): "pause-and-resume" the worker via control tuples while
    its state remains in an external storage.

    Procedure:

    1. traffic to the worker is diverted to its siblings (ROUTING
       control tuples to the predecessors) — for a singleton worker the
       predecessors simply hold the edge until the replacement is up;
    2. a SIGNAL lets a stateful worker flush/persist its in-memory cache
       (per §8 the durable state lives in external storage);
    3. the worker drains and exits on the old host;
    4. a replacement with the *same worker id* launches on the new host,
       attaches to that host's switch (rules re-sync on PortStatus), and
       the predecessors' routing is restored.
    """
    record = cluster.manager.topologies[topology_id]
    old = record.physical.worker(worker_id)
    if old.hostname == new_host:
        return worker_id
    if new_host not in cluster.manager.agents:
        raise ReconfigurationError("no agent on host %r" % new_host)
    component = old.component
    node = record.logical.node(component)
    siblings = [wid for wid in record.physical.worker_ids_for(component)
                if wid != worker_id]

    cluster.app.expected_removals.add(worker_id)
    # 1. Divert (or pause) traffic.
    if siblings:
        updates = predecessor_routing_updates(
            record.logical, record.physical, component, siblings)
        _push_routing(cluster, topology_id, updates)
        yield _SETTLE
    # 2. Persist state.
    if node.stateful:
        _signal_workers(cluster, topology_id, [worker_id])
        yield _SETTLE
    # 3. Drain and stop on the old host.
    cluster.manager.agent_for(old.hostname).kill(worker_id, drain=True)
    yield cluster.costs.worker_kill_latency + _SETTLE
    # 4. Relaunch on the new host under the same worker id.
    relocated = old.relocated(hostname=new_host, switch_port=None)
    record.physical = record.physical.replace_worker(relocated)
    record.assignment_times[worker_id] = cluster.engine.now
    cluster.state.write_physical(topology_id, record.physical)
    cluster.manager.agent_for(new_host).launch(topology_id, relocated)
    yield from wait_for_ports(cluster, [worker_id])
    yield cluster.costs.flow_install_latency + cluster.costs.openflow_rtt + _SETTLE
    cluster.app.expected_removals.discard(worker_id)
    # Restore the full routing set.
    updates = predecessor_routing_updates(
        record.logical, record.physical, component,
        record.physical.worker_ids_for(component))
    _push_routing(cluster, topology_id, updates)
    yield _SETTLE
    return worker_id


def change_grouping(cluster, topology_id: str, src: str, dst: str,
                    grouping: Grouping):
    """Switch an edge's routing policy at runtime (e.g. key-based to
    round robin), preserving stateful consistency with a flush."""
    record = cluster.manager.topologies[topology_id]
    record.logical = record.logical.with_grouping(src, dst, grouping)
    cluster.state.write_logical(topology_id, record.logical)

    if record.logical.node(dst).stateful:
        _signal_workers(cluster, topology_id,
                        record.physical.worker_ids_for(dst))
        yield _SETTLE

    stream = next(e.stream for e in record.logical.incoming(dst)
                  if e.src == src)
    next_hops = record.physical.worker_ids_for(dst)
    for worker_id in record.physical.worker_ids_for(src):
        cluster.app.update_routing(topology_id, worker_id, [RoutingUpdate(
            dst_component=dst,
            stream=stream,
            next_hops=next_hops,
            grouping_kind=grouping.kind,
            grouping_fields=tuple(grouping.fields),
        )])
    yield _SETTLE
    return next_hops

"""Typhoon's custom topology scheduler (§5).

Replaces the baseline round-robin scheduler: topologically neighbouring
workers are packed onto the same compute host to minimize remote
inter-worker communication (remote transfers pay tunnel latency and
bandwidth). Components are laid out in topological order and sliced into
contiguous host-sized blocks, so a pipeline stage and its successor
usually share a host.
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

from ..net.hosts import Cluster
from ..streaming.physical import PhysicalTopology, WorkerAssignment
from ..streaming.scheduler import (
    IScheduler,
    SchedulingError,
    WorkerIdAllocator,
)
from ..streaming.topology import LogicalTopology


def topological_order(logical: LogicalTopology) -> List[str]:
    """Kahn's algorithm with declaration order as the tie-break."""
    names = list(logical.nodes)
    indegree = {name: 0 for name in names}
    for edge in logical.edges:
        indegree[edge.dst] += 1
    order: List[str] = []
    ready = [name for name in names if indegree[name] == 0]
    while ready:
        node = ready.pop(0)
        order.append(node)
        for edge in logical.edges:
            if edge.src != node:
                continue
            indegree[edge.dst] -= 1
            if indegree[edge.dst] == 0 and edge.dst not in order:
                if edge.dst not in ready:
                    ready.append(edge.dst)
    return order


class TyphoonScheduler(IScheduler):
    """Locality-aware block placement."""

    def schedule(self, logical: LogicalTopology, cluster: Cluster,
                 app_id: int, allocator: WorkerIdAllocator) -> PhysicalTopology:
        hosts = [host.name for host in cluster]
        if not hosts:
            raise SchedulingError("no hosts available")
        tasks: List[Tuple[str, int]] = []
        for component in topological_order(logical):
            node = logical.nodes[component]
            for index in range(node.parallelism):
                tasks.append((component, index))
        capacity = max(1, math.ceil(len(tasks) / len(hosts)))
        assignments: Dict[int, WorkerAssignment] = {}
        for position, (component, task_index) in enumerate(tasks):
            if getattr(logical.nodes[component], "replicas", 1) > 1:
                # Replicas exist to survive host loss; block packing
                # would co-locate them. Round-robin them across hosts
                # instead (distinct hosts whenever replicas <= hosts).
                host = hosts[task_index % len(hosts)]
            else:
                host = hosts[min(position // capacity, len(hosts) - 1)]
            worker_id = allocator.allocate()
            assignments[worker_id] = WorkerAssignment(
                worker_id=worker_id,
                component=component,
                task_index=task_index,
                hostname=host,
            )
        return PhysicalTopology(
            topology_id=logical.topology_id,
            app_id=app_id,
            assignments=assignments,
            edges=list(logical.edges),
            binary_location="coordinator://%s/binary" % logical.topology_id,
        )

    def place_one(self, physical: PhysicalTopology, component: str,
                  cluster: Cluster) -> str:
        """Prefer hosts already running neighbours of ``component``."""
        neighbours: Dict[str, int] = {}
        neighbour_components = set()
        for edge in physical.edges:
            if edge.src == component:
                neighbour_components.add(edge.dst)
            if edge.dst == component:
                neighbour_components.add(edge.src)
        neighbour_components.add(component)
        load: Dict[str, int] = {host.name: 0 for host in cluster}
        for assignment in physical.assignments.values():
            load[assignment.hostname] = load.get(assignment.hostname, 0) + 1
            if assignment.component in neighbour_components:
                neighbours[assignment.hostname] = (
                    neighbours.get(assignment.hostname, 0) + 1
                )
        # Highest neighbour affinity wins; break ties on lowest load.
        return max(sorted(load),
                   key=lambda name: (neighbours.get(name, 0), -load[name]))

"""Typhoon's custom topology scheduler (§5).

Replaces the baseline round-robin scheduler: topologically neighbouring
workers are packed onto the same compute host to minimize remote
inter-worker communication (remote transfers pay tunnel latency and
bandwidth). Components are laid out in topological order and sliced into
contiguous host-sized blocks, so a pipeline stage and its successor
usually share a host.

With ``resource_aware=True`` the scheduler instead runs an R-Storm-style
soft-constraint assignment: components declare per-worker
CPU/memory/bandwidth demand vectors
(:class:`~repro.streaming.topology.ResourceDemand`), hosts carry
capacity vectors (:class:`~repro.net.hosts.HostCapacity`), and workers
are placed greedily in topological order minimizing, in priority order,
(1) remote adjacent-worker pairs (network distance), (2) projected
bandwidth cost over annotated inter-host links and host NICs, and
(3) resource-space distance (just-fit bin packing). CPU and memory are
hard constraints — an infeasible worker raises the structured
:class:`InsufficientResourcesError` — while bandwidth is soft: the SDN
bandwidth-allocation loop polices it online with switch meters. The
default ``resource_aware=False`` path is byte-identical to the historic
block placement.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from ..net.hosts import Cluster
from ..streaming.physical import PhysicalTopology, WorkerAssignment
from ..streaming.scheduler import (
    IScheduler,
    SchedulingError,
    WorkerIdAllocator,
)
from ..streaming.topology import LogicalTopology, ResourceDemand

_NO_DEMAND = ResourceDemand()


class InsufficientResourcesError(SchedulingError):
    """No host can satisfy a worker's hard (cpu/memory) demand.

    A *structured* rejection: carries the component, task index, the
    offending demand vector and the per-host remaining capacities at the
    time of failure, so callers (and tests) can reason about why
    placement failed instead of parsing a message.
    """

    def __init__(self, component: str, task_index: int,
                 demand: ResourceDemand,
                 remaining: Dict[str, Tuple[float, float]]):
        self.component = component
        self.task_index = task_index
        self.demand = demand
        self.remaining = dict(remaining)
        super().__init__(
            "cannot place %s[%d] (cpu=%.1f mem=%.1f): remaining %s"
            % (component, task_index, demand.cpu, demand.memory,
               {h: ("%.1f" % c, "%.1f" % m)
                for h, (c, m) in sorted(self.remaining.items())}))


def topological_order(logical: LogicalTopology) -> List[str]:
    """Kahn's algorithm with declaration order as the tie-break."""
    names = list(logical.nodes)
    indegree = {name: 0 for name in names}
    for edge in logical.edges:
        indegree[edge.dst] += 1
    order: List[str] = []
    ready = [name for name in names if indegree[name] == 0]
    while ready:
        node = ready.pop(0)
        order.append(node)
        for edge in logical.edges:
            if edge.src != node:
                continue
            indegree[edge.dst] -= 1
            if indegree[edge.dst] == 0 and edge.dst not in order:
                if edge.dst not in ready:
                    ready.append(edge.dst)
    return order


class TyphoonScheduler(IScheduler):
    """Locality-aware block placement (default) or R-Storm-style
    resource-aware assignment (``resource_aware=True``)."""

    def __init__(self, resource_aware: bool = False):
        self.resource_aware = resource_aware
        #: host -> [cpu, memory, bandwidth] committed by topologies this
        #: scheduler already placed (cross-topology accounting; the
        #: manager releases a topology's share on kill).
        self._committed: Dict[str, List[float]] = {}
        #: topology_id -> [(host, demand)] for release().
        self._by_topology: Dict[str, List[Tuple[str, ResourceDemand]]] = {}

    def release(self, topology_id: str) -> None:
        """Return a killed topology's committed resources to the pool."""
        for host, demand in self._by_topology.pop(topology_id, []):
            committed = self._committed.get(host)
            if committed is not None:
                committed[0] -= demand.cpu
                committed[1] -= demand.memory
                committed[2] -= demand.bandwidth

    def schedule(self, logical: LogicalTopology, cluster: Cluster,
                 app_id: int, allocator: WorkerIdAllocator) -> PhysicalTopology:
        if self.resource_aware:
            return self._schedule_resource_aware(logical, cluster, app_id,
                                                 allocator)
        hosts = [host.name for host in cluster]
        if not hosts:
            raise SchedulingError("no hosts available")
        tasks: List[Tuple[str, int]] = []
        for component in topological_order(logical):
            node = logical.nodes[component]
            for index in range(node.parallelism):
                tasks.append((component, index))
        capacity = max(1, math.ceil(len(tasks) / len(hosts)))
        assignments: Dict[int, WorkerAssignment] = {}
        for position, (component, task_index) in enumerate(tasks):
            if getattr(logical.nodes[component], "replicas", 1) > 1:
                # Replicas exist to survive host loss; block packing
                # would co-locate them. Round-robin them across hosts
                # instead (distinct hosts whenever replicas <= hosts).
                host = hosts[task_index % len(hosts)]
            else:
                host = hosts[min(position // capacity, len(hosts) - 1)]
            worker_id = allocator.allocate()
            assignments[worker_id] = WorkerAssignment(
                worker_id=worker_id,
                component=component,
                task_index=task_index,
                hostname=host,
            )
        return PhysicalTopology(
            topology_id=logical.topology_id,
            app_id=app_id,
            assignments=assignments,
            edges=list(logical.edges),
            binary_location="coordinator://%s/binary" % logical.topology_id,
        )

    # -- resource-aware placement (R-Storm style) -------------------------

    def _schedule_resource_aware(
            self, logical: LogicalTopology, cluster: Cluster, app_id: int,
            allocator: WorkerIdAllocator) -> PhysicalTopology:
        hosts = [host.name for host in cluster]
        if not hosts:
            raise SchedulingError("no hosts available")
        host_order = {name: index for index, name in enumerate(hosts)}
        capacities = {host.name: host.capacity for host in cluster}
        # Remaining hard resources net of what earlier topologies hold;
        # None capacity means unconstrained.
        remaining: Dict[str, Optional[List[float]]] = {}
        nic_load: Dict[str, float] = {}
        for name in hosts:
            held = self._committed.get(name, [0.0, 0.0, 0.0])
            nic_load[name] = held[2]
            if capacities[name] is None:
                remaining[name] = None
            else:
                remaining[name] = [capacities[name].cpu - held[0],
                                   capacities[name].memory - held[1]]
        claimed = self._by_topology.setdefault(logical.topology_id, [])

        adjacency: Dict[str, List[str]] = {name: [] for name in logical.nodes}
        for edge in logical.edges:
            adjacency[edge.src].append(edge.dst)
            adjacency[edge.dst].append(edge.src)

        #: component -> {host: workers placed there} (for affinity and
        #: replica anti-affinity); host -> total placed workers.
        placed: Dict[str, Dict[str, int]] = {}
        assignments: Dict[int, WorkerAssignment] = {}

        def demand_of(component: str) -> ResourceDemand:
            return logical.nodes[component].demand or _NO_DEMAND

        def fits(host: str, demand: ResourceDemand) -> bool:
            budget = remaining[host]
            if budget is None:
                return True
            return budget[0] >= demand.cpu and budget[1] >= demand.memory

        def bandwidth_cost(host: str, component: str,
                           demand: ResourceDemand) -> float:
            """Projected soft cost of remote traffic for this placement:
            each already-placed adjacent worker on another host adds the
            pair's demanded rate over that link's capacity, plus any NIC
            oversubscription the new worker would cause."""
            cost = 0.0
            for neighbour in adjacency[component]:
                neighbour_demand = demand_of(neighbour)
                pair_rate = max(demand.bandwidth, neighbour_demand.bandwidth)
                for other, count in placed.get(neighbour, {}).items():
                    if other == host:
                        continue
                    link = cluster.link_bandwidth(host, other)
                    if link:
                        cost += count * pair_rate / link
                    elif pair_rate > 0.0:
                        cost += count  # unannotated link: count the hop
            capacity = capacities[host]
            if capacity is not None and capacity.bandwidth > 0:
                overshoot = (nic_load[host] + demand.bandwidth
                             - capacity.bandwidth)
                if overshoot > 0:
                    cost += overshoot / capacity.bandwidth
            return cost

        def resource_distance(host: str, demand: ResourceDemand) -> float:
            """R-Storm's just-fit term: prefer the host whose remaining
            resources are closest to the demand (normalized), packing
            work tightly so whole hosts stay free for later stages."""
            budget = remaining[host]
            capacity = capacities[host]
            if budget is None or capacity is None:
                return 0.0
            distance = 0.0
            if capacity.cpu > 0:
                distance += (budget[0] - demand.cpu) / capacity.cpu
            if capacity.memory > 0:
                distance += (budget[1] - demand.memory) / capacity.memory
            return distance

        for component in topological_order(logical):
            node = logical.nodes[component]
            demand = node.demand or _NO_DEMAND
            anti_affinity = getattr(node, "replicas", 1) > 1
            for task_index in range(node.parallelism):
                candidates = [h for h in hosts if fits(h, demand)]
                if not candidates:
                    snapshot = {
                        name: ((math.inf, math.inf) if remaining[name] is None
                               else (remaining[name][0], remaining[name][1]))
                        for name in hosts
                    }
                    # Roll back this topology's partial commitments so a
                    # rejected submission leaves the pool untouched.
                    self.release(logical.topology_id)
                    raise InsufficientResourcesError(
                        component, task_index, demand, snapshot)

                def score(host: str) -> Tuple:
                    affinity = sum(
                        placed.get(neighbour, {}).get(host, 0)
                        for neighbour in adjacency[component])
                    colocated = placed.get(component, {}).get(host, 0)
                    if anti_affinity:
                        # Replicas survive host loss: spreading dominates
                        # every locality/packing consideration.
                        return (colocated, -affinity,
                                bandwidth_cost(host, component, demand),
                                resource_distance(host, demand),
                                host_order[host])
                    return (-affinity,
                            bandwidth_cost(host, component, demand),
                            resource_distance(host, demand),
                            host_order[host])

                host = min(candidates, key=score)
                budget = remaining[host]
                if budget is not None:
                    budget[0] -= demand.cpu
                    budget[1] -= demand.memory
                nic_load[host] += demand.bandwidth
                held = self._committed.setdefault(host, [0.0, 0.0, 0.0])
                held[0] += demand.cpu
                held[1] += demand.memory
                held[2] += demand.bandwidth
                claimed.append((host, demand))
                placed.setdefault(component, {})
                placed[component][host] = placed[component].get(host, 0) + 1
                worker_id = allocator.allocate()
                assignments[worker_id] = WorkerAssignment(
                    worker_id=worker_id,
                    component=component,
                    task_index=task_index,
                    hostname=host,
                )
        return PhysicalTopology(
            topology_id=logical.topology_id,
            app_id=app_id,
            assignments=assignments,
            edges=list(logical.edges),
            binary_location="coordinator://%s/binary" % logical.topology_id,
        )

    def place_one(self, physical: PhysicalTopology, component: str,
                  cluster: Cluster) -> str:
        """Prefer hosts already running neighbours of ``component``."""
        neighbours: Dict[str, int] = {}
        neighbour_components = set()
        for edge in physical.edges:
            if edge.src == component:
                neighbour_components.add(edge.dst)
            if edge.dst == component:
                neighbour_components.add(edge.src)
        neighbour_components.add(component)
        load: Dict[str, int] = {host.name: 0 for host in cluster}
        for assignment in physical.assignments.values():
            load[assignment.hostname] = load.get(assignment.hostname, 0) + 1
            if assignment.component in neighbour_components:
                neighbours[assignment.hostname] = (
                    neighbours.get(assignment.hostname, 0) + 1
                )
        # Highest neighbour affinity wins; break ties on lowest load.
        return max(sorted(load),
                   key=lambda name: (neighbours.get(name, 0), -load[name]))

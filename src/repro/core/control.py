"""Control tuples (Table 2): the SDN controller's lever on workers.

Control tuples share the data-tuple wire format but use the dedicated
CONTROL stream id and carry re-configuration information in their
payload. All types except METRIC_RESP flow controller -> worker (via
PacketOut); METRIC_RESP flows worker -> controller (via PacketIn).

| type              | effect                                            |
|-------------------|---------------------------------------------------|
| ROUTING           | replace per-edge routing state (Listing 1 state)  |
| SIGNAL            | flush a stateful worker's in-memory cache         |
| METRIC_REQ        | request the worker's internal statistics          |
| METRIC_RESP       | the statistics reply                              |
| INPUT_RATE        | set a spout's processing rate                     |
| ACTIVATE          | unthrottle the first workers of a topology        |
| DEACTIVATE        | throttle them                                     |
| BATCH_SIZE        | adjust the I/O layer batch size                   |
| CONTROL_ACK       | worker's receipt for a sequence-numbered tuple    |

Reliable delivery: PacketOut gives no delivery guarantee, so with
``TopologyConfig.reliable_control`` the controller stamps a ``_seq``
payload key on each outgoing tuple, the worker replies CONTROL_ACK (via
PacketIn) and applies each sequence at most once, and the controller
retries unacked sequences with exponential backoff.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..streaming.serialize import decode_tuple, encode_tuple
from ..streaming.topology import Grouping
from ..streaming.tuples import CONTROL_STREAM, StreamTuple

ROUTING = "ROUTING"
SIGNAL = "SIGNAL"
METRIC_REQ = "METRIC_REQ"
METRIC_RESP = "METRIC_RESP"
INPUT_RATE = "INPUT_RATE"
ACTIVATE = "ACTIVATE"
DEACTIVATE = "DEACTIVATE"
BATCH_SIZE = "BATCH_SIZE"
CONTROL_ACK = "CONTROL_ACK"

CONTROL_TYPES = (ROUTING, SIGNAL, METRIC_REQ, METRIC_RESP, INPUT_RATE,
                 ACTIVATE, DEACTIVATE, BATCH_SIZE, CONTROL_ACK)

#: Payload key carrying the reliable-delivery sequence number. Only
#: present when the topology enables ``reliable_control`` (the default
#: wire format is untouched).
SEQ_KEY = "_seq"

#: Source-worker id used by the controller in control tuples.
CONTROLLER_WORKER_ID = -2


@dataclass
class RoutingUpdate:
    """New routing state for one outgoing edge of a worker."""

    dst_component: str
    stream: int
    next_hops: List[int]
    grouping_kind: Optional[str] = None
    grouping_fields: Tuple[int, ...] = ()

    def to_wire(self) -> list:
        return [self.dst_component, self.stream, list(self.next_hops),
                self.grouping_kind or "", list(self.grouping_fields)]

    @classmethod
    def from_wire(cls, wire: Sequence[Any]) -> "RoutingUpdate":
        dst, stream, hops, kind, fields = wire
        return cls(dst_component=dst, stream=stream,
                   next_hops=list(hops),
                   grouping_kind=kind or None,
                   grouping_fields=tuple(fields))

    def grouping(self) -> Optional[Grouping]:
        if self.grouping_kind is None:
            return None
        return Grouping(self.grouping_kind, tuple(self.grouping_fields))


@dataclass
class ControlTuple:
    """A typed control message; (de)serialized through the tuple codec."""

    ctype: str
    payload: Dict[str, Any] = field(default_factory=dict)
    request_id: int = 0

    def __post_init__(self) -> None:
        if self.ctype not in CONTROL_TYPES:
            raise ValueError("unknown control tuple type %r" % self.ctype)

    # -- wire conversion ----------------------------------------------------

    def to_stream_tuple(self,
                        source_worker: int = CONTROLLER_WORKER_ID) -> StreamTuple:
        return StreamTuple(
            values=(self.ctype, self.request_id, self.payload),
            stream=CONTROL_STREAM,
            source_component="__controller__",
            source_worker=source_worker,
        )

    @classmethod
    def from_stream_tuple(cls, stream_tuple: StreamTuple) -> "ControlTuple":
        if stream_tuple.stream != CONTROL_STREAM:
            raise ValueError("not a control tuple: stream %d"
                             % stream_tuple.stream)
        ctype, request_id, payload = stream_tuple.values
        return cls(ctype=ctype, payload=dict(payload), request_id=request_id)

    def encode(self, source_worker: int = CONTROLLER_WORKER_ID) -> bytes:
        return encode_tuple(self.to_stream_tuple(source_worker))

    @classmethod
    def decode(cls, data: bytes) -> "ControlTuple":
        return cls.from_stream_tuple(decode_tuple(data))


# -- constructors for each Table 2 type ------------------------------------------


def routing_update(updates: Sequence[RoutingUpdate],
                   request_id: int = 0) -> ControlTuple:
    return ControlTuple(ROUTING, {
        "updates": [u.to_wire() for u in updates],
    }, request_id)


def parse_routing(control: ControlTuple) -> List[RoutingUpdate]:
    if control.ctype != ROUTING:
        raise ValueError("not a ROUTING control tuple")
    return [RoutingUpdate.from_wire(w) for w in control.payload["updates"]]


def signal(kind: str = "flush", request_id: int = 0) -> ControlTuple:
    return ControlTuple(SIGNAL, {"kind": kind}, request_id)


def metric_request(request_id: int) -> ControlTuple:
    return ControlTuple(METRIC_REQ, {}, request_id)


def metric_response(request_id: int, worker_id: int,
                    stats: Dict[str, int]) -> ControlTuple:
    return ControlTuple(METRIC_RESP, {
        "worker_id": worker_id, "stats": dict(stats),
    }, request_id)


def input_rate(rate: Optional[float], request_id: int = 0) -> ControlTuple:
    return ControlTuple(INPUT_RATE, {
        "rate": -1.0 if rate is None else float(rate),
    }, request_id)


def activate(request_id: int = 0) -> ControlTuple:
    return ControlTuple(ACTIVATE, {}, request_id)


def deactivate(request_id: int = 0) -> ControlTuple:
    return ControlTuple(DEACTIVATE, {}, request_id)


def batch_size(size: int, request_id: int = 0) -> ControlTuple:
    return ControlTuple(BATCH_SIZE, {"size": int(size)}, request_id)


def control_ack(seq: int, worker_id: int) -> ControlTuple:
    """Worker -> controller receipt for reliable control tuple ``seq``."""
    return ControlTuple(CONTROL_ACK, {"seq": int(seq),
                                      "worker_id": int(worker_id)})

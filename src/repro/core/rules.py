"""Flow-rule templates for Typhoon data/control tuples (Table 3).

Every row of Table 3 has a builder here; the Typhoon controller composes
these into the per-topology rule set. Matches always pin the custom
EtherType so unused IPv4 wildcards never enter rule processing (§3.4).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..net.addresses import (
    BROADCAST,
    CONTROLLER_ADDRESS,
    TYPHOON_ETHERTYPE,
    WorkerAddress,
)
from ..sdn.flow import (
    OFPP_CONTROLLER,
    Action,
    Match,
    Output,
    SetTunnelDst,
)

#: Rule priorities: control > specific unicast > broadcast.
PRIORITY_CONTROL = 300
PRIORITY_UNICAST = 200
PRIORITY_BROADCAST = 150


def worker_address(app_id: int, worker_id: int) -> WorkerAddress:
    """Worker id + application prefix -> Ethernet address (§3.3.1)."""
    return WorkerAddress(app_id, worker_id)


def local_transfer(app_id: int, src_worker: int, src_port: int,
                   dst_worker: int, dst_port: int) -> Tuple[Match, Tuple[Action, ...]]:
    """Table 3, "Local transfer"."""
    match = Match(
        in_port=src_port,
        dl_src=worker_address(app_id, src_worker),
        dl_dst=worker_address(app_id, dst_worker),
        ether_type=TYPHOON_ETHERTYPE,
    )
    return match, (Output(dst_port),)


def remote_transfer_sender(app_id: int, src_worker: int, src_port: int,
                           dst_worker: int, peer_host: str,
                           tunnel_port: int) -> Tuple[Match, Tuple[Action, ...]]:
    """Table 3, "Remote transfer (sender)"."""
    match = Match(
        in_port=src_port,
        dl_src=worker_address(app_id, src_worker),
        dl_dst=worker_address(app_id, dst_worker),
        ether_type=TYPHOON_ETHERTYPE,
    )
    return match, (SetTunnelDst(peer_host), Output(tunnel_port))


def remote_transfer_receiver(app_id: int, src_worker: int, dst_worker: int,
                             tunnel_port: int,
                             dst_port: int) -> Tuple[Match, Tuple[Action, ...]]:
    """Table 3, "Remote transfer (receiver)"."""
    match = Match(
        in_port=tunnel_port,
        dl_src=worker_address(app_id, src_worker),
        dl_dst=worker_address(app_id, dst_worker),
    )
    return match, (Output(dst_port),)


def one_to_many(src_port: int, local_dst_ports: Sequence[int],
                remote_hosts: Sequence[str],
                tunnel_port: int) -> Tuple[Match, Tuple[Action, ...]]:
    """Table 3, "One-to-many transfer": broadcast replication at the
    switch — one serialized copy in, N identical frames out."""
    match = Match(in_port=src_port, dl_dst=BROADCAST,
                  ether_type=TYPHOON_ETHERTYPE)
    actions: List[Action] = [Output(port) for port in local_dst_ports]
    for host in remote_hosts:
        actions.append(SetTunnelDst(host))
        actions.append(Output(tunnel_port))
    return match, tuple(actions)


def one_to_many_receiver(app_id: int, src_worker: int, tunnel_port: int,
                         local_dst_ports: Sequence[int],
                         ) -> Tuple[Match, Tuple[Action, ...]]:
    """Broadcast continuation on a remote host: fan out tunnel arrivals."""
    match = Match(
        in_port=tunnel_port,
        dl_src=worker_address(app_id, src_worker),
        dl_dst=BROADCAST,
    )
    return match, tuple(Output(port) for port in local_dst_ports)


def worker_to_controller(src_port: int) -> Tuple[Match, Tuple[Action, ...]]:
    """Table 3, "Worker to SDN controller" (METRIC_RESP path)."""
    match = Match(in_port=src_port, dl_dst=CONTROLLER_ADDRESS,
                  ether_type=TYPHOON_ETHERTYPE)
    return match, (Output(OFPP_CONTROLLER),)


def mirror_rule(base_match: Match, base_actions: Sequence[Action],
                debug_port: int) -> Tuple[Match, Tuple[Action, ...]]:
    """Live debugger (§4): duplicate matched frames to a debug worker at
    the network layer — no extra serialization at the source."""
    return base_match, tuple(base_actions) + (Output(debug_port),)


#: Worker-id prefix for SDN-select virtual destinations (load balancer).
_SELECT_PREFIX = 0xE0000000


def select_address(app_id: int, dst_component: str,
                   stream: int) -> WorkerAddress:
    """Virtual destination address for an SDN-offloaded edge (§4).

    The sender addresses frames here; the switch's select group rewrites
    the destination to a real worker. Derived deterministically so worker
    transports and the controller agree without extra coordination.
    """
    import zlib

    digest = zlib.crc32(("%s:%d" % (dst_component, stream)).encode("utf-8"))
    return WorkerAddress(app_id, _SELECT_PREFIX | (digest & 0x0FFFFFFF))

"""The Typhoon cluster runtime: full §3.2 deployment workflow.

Wires every component of Fig. 3 together on one simulation engine:

1. compute hosts, each with a software SDN switch, meshed by host-level
   TCP tunnels (:class:`~repro.core.io_layer.TyphoonFabric`);
2. the central coordinator (ZooKeeper stand-in) holding Table 1 state;
3. the streaming manager with the locality-aware Typhoon scheduler and
   the dynamic topology manager;
4. per-host worker agents that launch Typhoon workers (three-layer
   design: application / framework / I/O);
5. the SDN controller running the core Typhoon app plus any §4 control
   plane applications.

Submitting a topology follows the paper's five steps: build & schedule,
notification via the coordinator, network setup (flow rules), application
setup (worker launch + switch attach), then data tuple communication.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..coordination.schema import GlobalState
from ..coordination.store import Coordinator
from ..net.hosts import Cluster
from ..sdn.controller import ControllerApp, SdnController
from ..sdn.ha import HAControlPlane
from ..sim.costs import DEFAULT_COSTS, CostModel
from ..sim.engine import Engine, Process
from ..sim.metrics import MetricsRegistry
from ..sim.rng import as_factory
from ..streaming.acker import ACKER_COMPONENT
from ..streaming.agent import WorkerAgent
from ..streaming.checkpoint import CHECKPOINT_SERVICE, CheckpointStore
from ..streaming.replay import REPLAY_SERVICE, ReplayService
from ..streaming.replication import (
    REPLICATION_SERVICE,
    ReplicationService,
    expand_replicas,
)
from ..streaming.executor import WorkerExecutor
from ..streaming.manager import StreamingManager, TopologyRecord
from ..streaming.physical import PhysicalTopology, WorkerAssignment
from ..sim.audit import DeliveryLedger
from ..sim.trace import Tracer
from ..streaming.storm import _with_ackers, build_routers
from ..streaming.topology import LogicalTopology
from . import control as ct
from .audit import typhoon_frame_tuples
from .tracing import frame_trace_ids
from .apps.bandwidth_allocator import BandwidthAllocator
from .controller import TyphoonControllerApp
from .framework_layer import handle_control_tuple
from .io_layer import TyphoonFabric, TyphoonTransport
from .scheduler import TyphoonScheduler
from .topology_manager import DynamicTopologyManager


class TyphoonManager(StreamingManager):
    """Nimbus refactored for Typhoon (custom scheduler plugged in)."""


class TyphoonCluster:
    """End-to-end Typhoon runtime.

    Typical use::

        engine = Engine()
        typhoon = TyphoonCluster(engine, num_hosts=3)
        typhoon.submit(builder.build())
        engine.run(until=60)
    """

    def __init__(self, engine: Engine, num_hosts: int = 3,
                 costs: CostModel = DEFAULT_COSTS, seed: int = 0,
                 scheduler=None, resource_aware: bool = False,
                 cluster: Optional[Cluster] = None, ha_replicas: int = 0):
        if ha_replicas and resource_aware:
            raise ValueError("resource-aware scheduling is not supported "
                             "with a replicated control plane yet")
        self.engine = engine
        self.costs = costs
        self.seeds = as_factory(seed)
        self.cluster = cluster if cluster is not None \
            else Cluster.of_size(num_hosts)
        self.coordinator = Coordinator(engine, costs)
        self.state = GlobalState(self.coordinator)
        self.metrics = MetricsRegistry(engine)
        self.ledger = DeliveryLedger(inspector=typhoon_frame_tuples)
        # Hop-by-hop tracing (disabled until ``tracer.configure(N)``).
        self.tracer = Tracer(engine, metrics=self.metrics,
                             frame_inspector=frame_trace_ids)
        self.fabric = TyphoonFabric(engine, costs, self.cluster,
                                    ledger=self.ledger, tracer=self.tracer)
        self.executors: Dict[int, WorkerExecutor] = {}
        self.transports: Dict[int, TyphoonTransport] = {}
        self.replication = ReplicationService()
        self.services: Dict[str, object] = {
            "now": lambda: engine.now,
            REPLAY_SERVICE: ReplayService(),
            CHECKPOINT_SERVICE: CheckpointStore(),
            REPLICATION_SERVICE: self.replication,
        }
        #: Replicated control plane (``ha_replicas >= 2``): N controller
        #: instances, leader election over the coordinator, role-fenced
        #: switch channels and post-failover reconciliation. ``None`` in
        #: the default single-controller deployment — that path is
        #: byte-identical to older builds.
        self.ha: Optional[HAControlPlane] = None
        self.bandwidth_allocator = None
        if ha_replicas:
            self._sdn = None
            self._app = None
            self.ha = HAControlPlane(engine, costs, self.coordinator,
                                     ledger=self.ledger,
                                     replicas=ha_replicas)
            self.ha.register_app_factory(self._build_core_app)
            self.ha.attach_switches(self.fabric.switches())
            self.ha.start()
        else:
            self._sdn = SdnController(engine, costs,
                                      name="typhoon-floodlight")
            self._sdn.ledger = self.ledger
            self._app = self._build_core_app()
            self._sdn.register_app(self._app)
            for switch in self.fabric.switches():
                self._sdn.connect_switch(switch)
            #: Online SDN bandwidth allocation rides with resource-aware
            #: scheduling; the default path installs neither the app nor
            #: any meters, keeping behavior byte-identical to older
            #: builds.
            if resource_aware:
                self.bandwidth_allocator = BandwidthAllocator(self._app,
                                                              self.cluster)
                self._sdn.register_app(self.bandwidth_allocator)
                self._app.bandwidth_policy = self.bandwidth_allocator
        self.manager = TyphoonManager(
            engine, costs, self.cluster, self.state,
            scheduler or TyphoonScheduler(resource_aware=resource_aware))
        #: ``listener(topology_id, op, phase)`` callbacks fired at the
        #: named phases of the Fig. 6 stable-update procedures (see
        #: :mod:`repro.core.update`); the chaos harness injects here.
        self.update_phase_listeners: List = []
        for host in self.cluster:
            agent = WorkerAgent(
                engine, costs, host.name, self.state,
                worker_factory=self._make_worker_factory(host.name),
            )
            self.manager.register_agent(agent)
        self.topology_manager = DynamicTopologyManager(self)

    def _build_core_app(self) -> TyphoonControllerApp:
        app = TyphoonControllerApp(self.state, self.fabric)
        # Replica failover rides the same port-status signal the fault
        # detector uses: a dead replica's switch port vanishing demotes
        # it (and promotes a new leader when it led the group).
        app.port_delete_listeners.append(
            lambda dpid, worker_id: self.replication.on_worker_down(worker_id))
        app.port_add_listeners.append(
            lambda dpid, worker_id: self.replication.on_worker_up(worker_id))
        return app

    # -- control plane accessors --------------------------------------------

    @property
    def sdn(self) -> SdnController:
        """The (active) SDN controller. Under HA this follows the elected
        leader, so callers always talk to the controller that owns the
        switches."""
        if self.ha is not None:
            return self.ha.active_sdn
        return self._sdn

    @property
    def app(self) -> TyphoonControllerApp:
        """The (active) core Typhoon control-plane app."""
        if self.ha is not None:
            return self.ha.active_sdn.app(TyphoonControllerApp.name)
        return self._app

    # -- public API ---------------------------------------------------------

    def submit(self, logical: LogicalTopology) -> PhysicalTopology:
        """Deploy a topology (steps i–v of §3.2)."""
        logical = expand_replicas(logical)
        logical = _with_ackers(logical)
        physical = self.manager.submit(logical)
        self.ledger.name_scope(physical.app_id, logical.topology_id)
        self.replication.register_topology(logical, physical)
        self.app.manage(logical.topology_id)
        return physical

    def kill_topology(self, topology_id: str) -> None:
        self.app.unmanage(topology_id)
        self.replication.unregister_topology(topology_id)
        self.manager.kill_topology(topology_id)

    def register_app(self, app: ControllerApp) -> ControllerApp:
        """Deploy an SDN control plane application (§4)."""
        if self.ha is not None:
            raise ValueError(
                "replicated control plane: every replica needs its own app "
                "instance — use register_app_factory instead")
        return self._sdn.register_app(app)

    def register_app_factory(self, factory) -> None:
        """Deploy a control plane app from a factory — one instance per
        controller replica under HA, a single instance otherwise."""
        if self.ha is not None:
            self.ha.register_app_factory(factory)
        else:
            self._sdn.register_app(factory())

    def executor(self, worker_id: int) -> Optional[WorkerExecutor]:
        executor = self.executors.get(worker_id)
        if executor is None or not executor.alive:
            return None
        return executor

    def executors_for(self, topology_id: str,
                      component: str) -> List[WorkerExecutor]:
        record = self.manager.topologies.get(topology_id)
        if record is None:
            return []
        out = []
        for worker_id in record.physical.worker_ids_for(component):
            executor = self.executor(worker_id)
            if executor is not None:
                out.append(executor)
        return out

    def record(self, topology_id: str) -> TopologyRecord:
        return self.manager.topologies[topology_id]

    # -- topology-level controls via control tuples ----------------------------

    def _spout_worker_ids(self, topology_id: str) -> List[int]:
        record = self.record(topology_id)
        out: List[int] = []
        for spout in record.logical.spouts():
            out.extend(record.physical.worker_ids_for(spout.name))
        return out

    def activate(self, topology_id: str) -> None:
        for worker_id in self._spout_worker_ids(topology_id):
            self.app.send_control(topology_id, worker_id, ct.activate())

    def deactivate(self, topology_id: str) -> None:
        """Throttle the first workers of a topology (Table 2)."""
        for worker_id in self._spout_worker_ids(topology_id):
            self.app.send_control(topology_id, worker_id, ct.deactivate())

    def set_input_rate(self, topology_id: str,
                       rate: Optional[float]) -> None:
        for worker_id in self._spout_worker_ids(topology_id):
            self.app.send_control(topology_id, worker_id, ct.input_rate(rate))

    def set_batch_size(self, topology_id: str, size: int) -> None:
        record = self.record(topology_id)
        for worker_id in record.physical.assignments:
            self.app.send_control(topology_id, worker_id, ct.batch_size(size))

    # -- reconfiguration shortcuts (dynamic topology manager) --------------------

    def set_parallelism(self, topology_id: str, component: str,
                        parallelism: int) -> Process:
        return self.topology_manager.set_parallelism(
            topology_id, component, parallelism)

    def replace_computation(self, topology_id: str, component: str,
                            factory, parallelism: Optional[int] = None) -> Process:
        return self.topology_manager.replace_computation(
            topology_id, component, factory, parallelism)

    def set_grouping(self, topology_id: str, src: str, dst: str,
                     grouping) -> Process:
        return self.topology_manager.set_grouping(topology_id, src, dst,
                                                  grouping)

    def attach_component(self, topology_id: str, name: str, factory,
                         subscribe_to: str, grouping,
                         parallelism: int = 1, stream: int = 0,
                         stateful: bool = False) -> Process:
        return self.topology_manager.attach_component(
            topology_id, name, factory, subscribe_to, grouping,
            parallelism, stream, stateful)

    def detach_component(self, topology_id: str, name: str) -> Process:
        return self.topology_manager.detach_component(topology_id, name)

    def relocate_worker(self, topology_id: str, worker_id: int,
                        new_host: str) -> Process:
        return self.topology_manager.relocate_worker(topology_id, worker_id,
                                                     new_host)

    # -- worker construction -----------------------------------------------------

    def _make_worker_factory(self, hostname: str):
        def factory(assignment: WorkerAssignment) -> WorkerExecutor:
            return self._build_worker(hostname, assignment)

        return factory

    def _build_worker(self, hostname: str,
                      assignment: WorkerAssignment) -> WorkerExecutor:
        record = self._record_of(assignment)
        logical = record.logical
        physical = record.physical
        node = logical.node(assignment.component)
        transport = TyphoonTransport(
            self.engine, self.costs,
            worker_id=assignment.worker_id,
            app_id=physical.app_id,
            host_fabric=self.fabric.host(hostname),
            batch_size=logical.config.batch_size,
        )
        from ..streaming.topology import SDN_SELECT
        from .rules import select_address
        for edge in logical.outgoing(assignment.component):
            if edge.grouping.kind == SDN_SELECT:
                transport.select_addresses[(edge.dst, edge.stream)] = (
                    select_address(physical.app_id, edge.dst, edge.stream)
                )
        executor = WorkerExecutor(
            engine=self.engine,
            costs=self.costs,
            assignment=assignment,
            node=node,
            config=logical.config,
            transport=transport,
            routers=build_routers(logical, physical, assignment.component),
            metrics=self.metrics,
            rng=self.seeds.rng("worker:%d" % assignment.worker_id),
            topology_id=logical.topology_id,
            ackers=physical.worker_ids_for(ACKER_COMPONENT),
            services=self.services,
            control_handler=handle_control_tuple,
            tracer=self.tracer,
        )
        # Typhoon spouts deploy throttled; the controller ACTIVATEs them
        # once the topology's flow rules are installed (§3.2 step v).
        if executor.is_spout:
            executor.active = False
        if self.replication.active():
            # Senders into a replica group stamp the sequencer on their
            # broadcast edge (routers are keyed (dst_component, stream)).
            for key, router in executor.routers.items():
                group = self.replication.group_of(logical.topology_id,
                                                  key[0])
                if group is not None:
                    router.replication_group = group
        transport.deliver = executor.deliver
        transport.attach()
        self.executors[assignment.worker_id] = executor
        self.transports[assignment.worker_id] = transport
        return executor

    def _record_of(self, assignment: WorkerAssignment) -> TopologyRecord:
        for record in self.manager.topologies.values():
            if assignment.worker_id in record.physical.assignments:
                return record
        raise KeyError("no topology owns worker %d" % assignment.worker_id)

"""Chaos harness: seeded fault scenarios + post-mortem invariant checks.

Typhoon's headline claims are *lossless* operation under reconfiguration
(§3.5, Fig. 6, Table 4) and SDN-driven fault recovery (§4, Fig. 10).
This module turns those claims into machine-checked invariants over
randomized fault scenarios:

1. **delivery conservation** — PR 1's ledger identity balances after the
   cluster quiesces (no tuple vanished without an attributed drop);
2. **flow consistency** — every rule the controller's coordinator state
   implies (Table 3) is actually present in the switches' flow tables
   with the right actions (switch crashes lose tables; the re-sync must
   have fully repaired them);
3. **no duplicate delivery** — the stateful sink's dedup registry saw
   every ``(source, seq)`` at most once across all reconfigurations;
4. **fault-detector convergence** — no worker is still redirected-around
   and no live worker routes to a dead one once faults stop;
5. **replay conservation** (acked runs only) — every message a spout
   ever tracked is accounted for: completed, still pending, or
   retry-budget-exhausted — and after the recovery window *zero* are
   exhausted, i.e. no root was permanently lost;
6. **replication conservation** (replicated runs only) — every replica
   group's ledger balances: all alive replicas applied the full
   sequenced input, replicas never diverged, every produced output was
   admitted downstream exactly once, and every admitted output
   committed exactly once with zero conflicting retries.

The harness runs in three regimes: best-effort (the default — loss is
attributed but not repaired), ``acked=True``, which turns on the full
reliability stack (acking + spout replay + checkpointing + the reliable
control channel) and holds the run to the stricter §6.1 bar, and
:func:`run_chaos_exactly_once`, which deploys the actively-replicated
workload (:mod:`repro.workloads.replicated`) and drives targeted fault
regimes — replica kill, leader kill mid-failover, broadcast-link flap,
controller outage — against the replication invariant plus a strict
zero-lost / zero-duplicate commitment check.

:func:`run_chaos` wires a cluster + the chaos workload + a seeded
:class:`~repro.sim.faults.ChaosSchedule` together and produces a fully
deterministic :class:`ChaosRunResult`: the same seed renders the same
report byte for byte, so scenarios are replayable and diffable.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..sim.audit import ConservationReport
from ..sim.engine import Engine
from ..sdn.flow import Match
from ..sim.faults import (
    STORM_KINDS,
    TYPHOON_KINDS,
    ChaosSchedule,
    FaultPlan,
    _crash,
    set_controller_replica_down,
    set_store_partition,
)
from ..streaming.acker import ACKER_COMPONENT, AckerBolt
from ..streaming.checkpoint import CHECKPOINT_SERVICE, CheckpointStore
from ..streaming.replay import REPLAY_SERVICE, ReplayService
from ..streaming.storm import StormCluster
from ..streaming.topology import TopologyConfig
from ..workloads.chaosflow import DEDUP_SERVICE, DedupRegistry, chaos_topology
from ..workloads.replicated import replicated_topology
from .apps.fault_detector import FaultDetector
from .audit import conservation_report, quiesce
from .runtime import TyphoonCluster

PASS = "PASS"
FAIL = "FAIL"
SKIP = "SKIP"

I_CONSERVATION = "delivery-conservation"
I_FLOW_CONSISTENCY = "flow-consistency"
I_NO_DUPLICATES = "no-duplicate-delivery"
I_DETECTOR = "fault-detector-convergence"
I_REPLAY = "replay-conservation"
I_REPLICATION = "replication-conservation"
I_HA_CONVERGENCE = "ha-convergence"
I_HA_DIVERGENCE = "ha-rule-divergence"
I_HA_FENCING = "ha-fencing"
I_HA_BLACKOUT = "ha-blackout"


@dataclass
class InvariantResult:
    """Outcome of one invariant check."""

    name: str
    status: str
    detail: str

    @property
    def ok(self) -> bool:
        return self.status != FAIL

    def render(self) -> str:
        return "[%s] %-26s %s" % (self.status, self.name, self.detail)


@dataclass
class InvariantReport:
    """All six chaos invariants plus the conservation snapshot."""

    results: List[InvariantResult]
    conservation: ConservationReport

    @property
    def ok(self) -> bool:
        return all(result.ok for result in self.results)

    def result(self, name: str) -> InvariantResult:
        for result in self.results:
            if result.name == name:
                return result
        raise KeyError("no invariant %r" % name)

    def render(self) -> str:
        lines = ["invariant report", "----------------"]
        lines.extend(result.render() for result in self.results)
        lines.append("verdict: %s" % ("OK" if self.ok else "VIOLATED"))
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        return {
            "ok": self.ok,
            "invariants": [
                {"name": r.name, "status": r.status, "detail": r.detail}
                for r in self.results
            ],
            "conservation": self.conservation.to_dict(),
        }


class InvariantChecker:
    """Quiesces a cluster and checks the six chaos invariants.

    Works against both runtimes; the SDN-specific checks (flow
    consistency, detector convergence) report SKIP on the Storm
    baseline, deterministically, so same-seed reports stay comparable.
    """

    def __init__(self, cluster, settle: float = 2.0):
        self.cluster = cluster
        self.settle = settle

    def run(self) -> InvariantReport:
        quiesce(self.cluster, settle=self.settle)
        conservation = conservation_report(self.cluster)
        results = [
            self._check_conservation(conservation),
            self._check_flow_consistency(),
            self._check_duplicates(),
            self._check_detector(),
            self._check_replay(),
            self._check_replication(),
        ]
        # Replicated-control-plane invariants ride along only when the
        # cluster actually deployed HA: the default single-controller
        # report stays byte-identical.
        if getattr(self.cluster, "ha", None) is not None:
            results.extend(self._check_ha(self.cluster.ha))
        return InvariantReport(results=results, conservation=conservation)

    # -- (a) delivery conservation -----------------------------------------

    def _check_conservation(self,
                            report: ConservationReport) -> InvariantResult:
        detail = ("sent=%d injected=%d delivered=%d drops=%d "
                  "unattributed=%d" % (report.sent, report.injected,
                                       report.delivered, report.drops,
                                       report.unattributed))
        return InvariantResult(I_CONSERVATION,
                               PASS if report.ok else FAIL, detail)

    # -- (b) flow-table vs. coordinator-state consistency ------------------

    def _check_flow_consistency(self) -> InvariantResult:
        app = getattr(self.cluster, "app", None)
        sdn = getattr(self.cluster, "sdn", None)
        if app is None or sdn is None:
            return InvariantResult(I_FLOW_CONSISTENCY, SKIP,
                                   "no SDN control plane")
        checked = missing = mismatched = 0
        for topology_id in sorted(app.managed):
            desired = app.desired_rules(topology_id)
            for (dpid, match), (priority, actions) in desired.items():
                checked += 1
                switch = sdn.switches.get(dpid)
                if switch is None or not switch.up:
                    missing += 1
                    continue
                entry = next((e for e in switch.flows
                              if e.match == match
                              and e.priority == priority), None)
                if entry is None:
                    missing += 1
                elif tuple(entry.actions) != tuple(actions):
                    mismatched += 1
            for (dpid, group_id), (group_type,
                                   buckets) in (app.desired_groups(
                                       topology_id).items()):
                checked += 1
                switch = sdn.switches.get(dpid)
                if switch is None or not switch.up:
                    missing += 1
                    continue
                if group_id not in switch.groups:
                    missing += 1
                    continue
                entry = switch.groups.get(group_id)
                if (entry.group_type != group_type
                        or tuple(entry.buckets) != tuple(buckets)):
                    mismatched += 1
        # Subset check by design: switches legitimately hold rules the
        # diff bookkeeping does not cover (worker->controller taps).
        detail = ("rules=%d missing=%d mismatched=%d"
                  % (checked, missing, mismatched))
        ok = missing == 0 and mismatched == 0
        return InvariantResult(I_FLOW_CONSISTENCY, PASS if ok else FAIL,
                               detail)

    # -- (c) no duplicate delivery to stateful workers ---------------------

    def _check_duplicates(self) -> InvariantResult:
        services = getattr(self.cluster, "services", {})
        registry = services.get(DEDUP_SERVICE)
        if not isinstance(registry, DedupRegistry):
            return InvariantResult(I_NO_DUPLICATES, SKIP,
                                   "no dedup registry deployed")
        detail = ("tracked=%d duplicates=%d"
                  % (registry.tracked, registry.duplicates))
        if registry.duplicates:
            keys = registry.duplicate_keys()[:5]
            detail += " first=%s" % (",".join("%s#%d" % k for k in keys))
        return InvariantResult(
            I_NO_DUPLICATES,
            PASS if registry.duplicates == 0 else FAIL, detail)

    # -- (d) fault-detector convergence ------------------------------------

    def _check_detector(self) -> InvariantResult:
        sdn = getattr(self.cluster, "sdn", None)
        if sdn is None:
            return InvariantResult(I_DETECTOR, SKIP, "no SDN control plane")
        detector = next((app for app in sdn.apps
                         if isinstance(app, FaultDetector)), None)
        if detector is None:
            return InvariantResult(I_DETECTOR, SKIP,
                                   "no fault detector deployed")
        stale = 0
        for worker_id in sorted(self.cluster.executors):
            executor = self.cluster.executor(worker_id)
            if executor is None:
                continue
            for key in sorted(executor.routers):
                router = executor.routers[key]
                stale += sum(1 for hop in router.next_hops
                             if self.cluster.executor(hop) is None)
        detail = ("redirected=%d stale-next-hops=%d detections=%d "
                  "restores=%d dead-ends=%d"
                  % (len(detector.redirected), stale, detector.detections,
                     detector.restores, detector.dead_ends))
        ok = not detector.redirected and stale == 0
        return InvariantResult(I_DETECTOR, PASS if ok else FAIL, detail)

    # -- (e) replay conservation / zero permanent loss ---------------------

    def _check_replay(self) -> InvariantResult:
        """Acked runs only: the spout replay buffers' conservation
        identity holds and the retry budget never ran dry — i.e. every
        message the sources ever emitted either completed or is still
        (benignly) in flight; none is permanently lost."""
        services = getattr(self.cluster, "services", {})
        service = services.get(REPLAY_SERVICE)
        if not isinstance(service, ReplayService) or not service.buffers:
            return InvariantResult(I_REPLAY, SKIP, "no replay buffers")
        totals = service.totals()
        detail = ("emitted=%d completed=%d in-flight=%d exhausted=%d "
                  "replays=%d recovered=%d"
                  % (totals["registered"], totals["completed"],
                     totals["pending"], totals["exhausted"],
                     totals["replays"], totals["recovered"]))
        ok = service.conserved() and totals["exhausted"] == 0
        return InvariantResult(I_REPLAY, PASS if ok else FAIL, detail)

    # -- (f) replication conservation / exactly-once -----------------------

    def _check_replication(self) -> InvariantResult:
        """Replicated runs only: every replica group's ledger balances
        once the cluster quiesces — all alive replicas applied the full
        sequenced input (convergence), no replica ever logged an output
        different from the first writer's (determinism), every produced
        output was admitted downstream exactly once, and — when the
        consumer is transactional — committed exactly once with zero
        conflicting retries. With a strict dedup registry deployed the
        check also demands zero lost spout sequences end to end."""
        service = getattr(self.cluster, "replication", None)
        if service is None or not service.active():
            return InvariantResult(I_REPLICATION, SKIP,
                                   "no replication groups")
        lag = leaderless = unadmitted = uncommitted = 0
        for key in sorted(service.groups):
            group = service.groups[key]
            if not group.alive or group.leader is None:
                leaderless += 1
            for worker_id in sorted(group.alive):
                lag += max(0, group.next_in -
                           group.applied.get(worker_id, 0))
            unadmitted += max(0, group.outputs_logged - group.admitted)
            if group.commits:
                uncommitted += max(0, group.admitted - group.commits)
        totals = service.totals()
        lost = -1
        services = getattr(self.cluster, "services", {})
        registry = services.get(DEDUP_SERVICE)
        if isinstance(registry, DedupRegistry) and not registry.at_least_once:
            lost = len(registry.missing_keys())
        detail = ("groups=%d inputs=%d lag=%d divergence=%d admitted=%d "
                  "collapsed=%d commits=%d retries=%d conflicts=%d lost=%s"
                  % (totals["groups"], totals["inputs"], lag,
                     totals["divergence"], totals["admitted"],
                     totals["duplicates_collapsed"], totals["commits"],
                     totals["commit_retries"], totals["commit_conflicts"],
                     "n/a" if lost < 0 else str(lost)))
        ok = (lag == 0 and leaderless == 0 and unadmitted == 0
              and uncommitted == 0 and totals["divergence"] == 0
              and totals["commit_conflicts"] == 0 and lost <= 0)
        return InvariantResult(I_REPLICATION, PASS if ok else FAIL, detail)


    # -- (g..j) replicated-control-plane invariants ------------------------

    def _check_ha(self, ha) -> List[InvariantResult]:
        expectations = getattr(self.cluster, "ha_expectations", {})
        return [
            self._check_ha_convergence(ha),
            self._check_ha_divergence(ha),
            self._check_ha_fencing(ha, expectations),
            self._check_ha_blackout(ha, expectations),
        ]

    def _check_ha_convergence(self, ha) -> InvariantResult:
        """Exactly one live master, agreed by store and switches, with
        every blackout buffer drained."""
        problems: List[str] = []
        leader = ha.leader
        if leader is None:
            problems.append("no-leader")
        else:
            if not leader.up:
                problems.append("leader-down")
            if leader.role != "master":
                problems.append("leader-role=%s" % leader.role)
            stored = ha.coordinator.get_data("/ha/generation", 0)
            if stored != ha.generation:
                problems.append("generation-skew store=%s plane=%d"
                                % (stored, ha.generation))
            masters = sum(1 for replica in ha.replicas
                          if replica.role == "master")
            if masters != 1:
                problems.append("masters=%d" % masters)
            pending = 0
            for dpid in sorted(leader.sdn.switches):
                switch = leader.sdn.switches[dpid]
                if not switch.up:
                    continue
                stats = switch.stats()
                if stats["master"] != leader.name:
                    problems.append("%s-master=%s" % (dpid, stats["master"]))
                if stats["master_generation"] != ha.generation:
                    problems.append("%s-gen=%d" % (dpid,
                                                   stats["master_generation"]))
                pending += stats["pending_controller"]
            if pending:
                problems.append("pending-buffers=%d" % pending)
        detail = ("leader=%s generation=%d replicas=%d"
                  % (ha.leader_name, ha.generation, len(ha.replicas)))
        if problems:
            detail += " problems=" + ",".join(problems)
        return InvariantResult(I_HA_CONVERGENCE,
                               PASS if not problems else FAIL, detail)

    def _check_ha_divergence(self, ha) -> InvariantResult:
        """Zero generation-stamped rule divergence between the promoted
        leader's desired state and the live flow tables — the anti-
        entropy sweep fully repaired every failover."""
        divergence = ha.rule_divergence()
        detail = ("rule_divergence=%d (stale=%d missing=%d mismatched=%d)"
                  % (divergence["total"], divergence["stale"],
                     divergence["missing"], divergence["mismatched"]))
        return InvariantResult(I_HA_DIVERGENCE,
                               PASS if divergence["total"] == 0 else FAIL,
                               detail)

    def _check_ha_fencing(self, ha, expectations) -> InvariantResult:
        """Every stale-master mutation was rejected: the switches fenced
        at least as many messages as the harness provably sent from
        deposed masters, and no probe FlowMod landed in a table."""
        fencing = ha.fencing_summary()
        probes = expectations.get("probes", 0)
        problems: List[str] = []
        if probes and fencing["switch_rejections"] < probes:
            problems.append("rejections<probes")
        probe_match = expectations.get("probe_match")
        if probe_match is not None:
            reference = ha.leader if ha.leader is not None \
                else ha.replicas[0]
            for dpid in sorted(reference.sdn.switches):
                switch = reference.sdn.switches[dpid]
                if any(entry.match == probe_match
                       for entry in switch.flows):
                    problems.append("probe-rule-applied@%s" % dpid)
        detail = ("switch_rejections=%d replica_fenced=%d probes=%d"
                  % (fencing["switch_rejections"],
                     fencing["replica_fenced"], probes))
        if problems:
            detail += " problems=" + ",".join(problems)
        return InvariantResult(I_HA_FENCING,
                               PASS if not problems else FAIL, detail)

    def _check_ha_blackout(self, ha, expectations) -> InvariantResult:
        """Every failover reconciled, and the control-plane blackout
        (failure detection to reconciliation) stayed under budget."""
        summary = ha.blackout_summary()
        minimum = expectations.get("min_failovers", 1)
        ok = (summary["unreconciled"] == 0
              and summary["failovers"] >= minimum
              and summary["max_blackout_ms"] <= summary["budget_ms"])
        detail = ("failovers=%d unreconciled=%d max_blackout_ms=%.3f "
                  "budget_ms=%.3f"
                  % (summary["failovers"], summary["unreconciled"],
                     summary["max_blackout_ms"], summary["budget_ms"]))
        return InvariantResult(I_HA_BLACKOUT, PASS if ok else FAIL, detail)


# -- the chaos runner ----------------------------------------------------------


@dataclass
class ChaosRunResult:
    """Everything one seeded chaos run produced, rendered reproducibly."""

    system: str
    seed: int
    schedule: ChaosSchedule
    plan: FaultPlan
    invariants: InvariantReport
    acked: bool = False
    exactly_once: bool = False
    #: Replicated-control-plane summary (``repro chaos --ha`` runs only).
    ha: Optional[Dict[str, object]] = None

    @property
    def ok(self) -> bool:
        return self.invariants.ok

    def render(self) -> str:
        header = ("chaos run system=%s seed=%d acked=%s"
                  % (self.system, self.seed, self.acked))
        if self.exactly_once:
            header += " exactly-once=True"
        if self.ha is not None:
            header += " ha=True"
        sections = [
            header,
            self.schedule.describe(),
            self.plan.render(),
            self.invariants.render(),
            self.invariants.conservation.render(),
        ]
        if self.ha is not None:
            sections.append(self._render_ha())
        return "\n".join(sections)

    def _render_ha(self) -> str:
        ha = self.ha
        blackout = ha["blackout"]
        divergence = ha["rule_divergence"]
        fencing = ha["fencing"]
        lines = [
            "ha summary",
            "----------",
            "leader=%s generation=%d replicas=%d"
            % (ha["leader"], ha["generation"], len(ha["replicas"])),
            "failovers=%d unreconciled=%d max_blackout_ms=%.3f "
            "budget_ms=%.3f"
            % (blackout["failovers"], blackout["unreconciled"],
               blackout["max_blackout_ms"], blackout["budget_ms"]),
            "rule_divergence=%d (stale=%d missing=%d mismatched=%d)"
            % (divergence["total"], divergence["stale"],
               divergence["missing"], divergence["mismatched"]),
            "fencing switch_rejections=%d replica_fenced=%d probes=%d"
            % (fencing["switch_rejections"], fencing["replica_fenced"],
               ha.get("probes", 0)),
        ]
        for record in ha["failovers_detail"]:
            lines.append(
                "  g=%d %s<-%s detected=%.3f promoted=%.3f "
                "blackout_ms=%s stale_deleted=%d repaired=%d"
                % (record["generation"], record["leader"],
                   record["previous"], record["detected_at"],
                   record["promoted_at"],
                   "%.3f" % record["blackout_ms"]
                   if record["blackout_ms"] is not None
                   else ("superseded" if record.get("superseded")
                         else "-"),
                   record["stale_deleted"], record["repaired"]))
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        payload = self.invariants.to_dict()
        payload.update({
            "system": self.system,
            "seed": self.seed,
            "acked": self.acked,
            "exactly_once": self.exactly_once,
            "specs": [spec.describe() for spec in self.schedule.specs],
            "faults_fired": list(self.plan.fired),
            "faults_clamped": list(self.plan.clamped),
            "faults_unresolved": list(self.plan.unresolved),
        })
        if self.ha is not None:
            payload["ha"] = self.ha
        return payload


def run_chaos(system: str = "typhoon", seed: int = 0, hosts: int = 3,
              duration: float = 16.0, faults: int = 6, rate: float = 1500.0,
              warmup: float = 4.0, recovery: float = 5.0,
              settle: float = 2.0, relays: int = 2,
              sinks: int = 2, acked: bool = False) -> ChaosRunResult:
    """One seeded chaos scenario end to end.

    Timeline: deploy the chaos workload, warm up, arm a seeded fault
    schedule inside ``[warmup, duration - 2]`` (every durable fault ends
    before the horizon), run to ``duration`` plus a recovery window that
    covers the slowest repair (supervisor restart ≈ 3 s), then quiesce
    and check the six invariants.

    ``acked=True`` turns on the full reliability stack — acking + spout
    replay + checkpointed sinks + the reliable control channel — puts
    the dedup registry in its idempotent at-least-once mode, and holds
    the run to the replay-conservation invariant: zero permanently-lost
    roots once recovery settles.
    """
    if system not in ("typhoon", "storm"):
        raise ValueError("system must be 'typhoon' or 'storm'")
    engine = Engine()
    if system == "typhoon":
        cluster = TyphoonCluster(engine, num_hosts=hosts, seed=seed)
        cluster.register_app(FaultDetector(cluster))
        kinds = TYPHOON_KINDS
    else:
        cluster = StormCluster(engine, num_hosts=hosts, seed=seed)
        kinds = STORM_KINDS
    registry = DedupRegistry(at_least_once=acked)
    cluster.services[DEDUP_SERVICE] = registry

    if acked:
        # Every replayed tuple needs time to drain through backoff plus
        # a possible supervisor restart before the loss check is fair.
        recovery = max(recovery, 8.0)
        config = TopologyConfig(
            batch_size=50, max_spout_rate=rate,
            acking=True, num_ackers=1, tuple_timeout=2.0, max_pending=48,
            replay_enabled=True, replay_max_retries=12,
            replay_backoff_base=0.25, replay_backoff_factor=2.0,
            replay_backoff_max=1.0,
            checkpoint_interval=0.5, reliable_control=True)
    else:
        config = TopologyConfig(batch_size=50, max_spout_rate=rate)
    physical = cluster.submit(chaos_topology("chaos", config, relays=relays,
                                             sinks=sinks))
    engine.run(until=warmup)

    window = (warmup, max(warmup + 1.0, duration - 2.0))
    schedule = ChaosSchedule(seed, kinds=kinds,
                             workers=sorted(physical.assignments),
                             hosts=sorted(cluster.manager.agents),
                             window=window, count=faults)
    plan = schedule.apply(cluster)
    cluster.chaos_plan = plan

    engine.run(until=duration + recovery)
    invariants = InvariantChecker(cluster, settle=settle).run()
    return ChaosRunResult(system=system, seed=seed, schedule=schedule,
                          plan=plan, invariants=invariants, acked=acked)


# -- the exactly-once (replicated) chaos runner --------------------------------

#: Fault regimes the exactly-once harness cycles through. Faults target
#: only the replica group, the links between its hosts, and the control
#: plane — never spouts or relays: loss upstream of the sequencer is
#: outside the exactly-once boundary (that is the replay stack's job).
EXACTLY_ONCE_REGIMES = ("replica-kill", "leader-kill", "broadcast-flap",
                        "controller-outage")


@dataclass
class ExactlyOnceSpec:
    """One planned regime instance (deterministic, renderable)."""

    kind: str
    when: float
    detail: str

    def describe(self) -> str:
        return "%-18s t=%6.2f %s" % (self.kind, self.when, self.detail)


@dataclass
class ExactlyOnceSchedule:
    """Seeded regime schedule for the replicated workload — same shape
    as :class:`~repro.sim.faults.ChaosSchedule` where the report
    machinery cares (``specs`` + ``describe``)."""

    seed: int
    specs: List[ExactlyOnceSpec]

    def describe(self) -> str:
        lines = ["exactly-once fault schedule seed=%d regimes=%d"
                 % (self.seed, len(self.specs))]
        lines.extend("  " + spec.describe() for spec in self.specs)
        return "\n".join(lines)


def _exactly_once_faults(cluster, group, seed: int,
                         window: Tuple[float, float],
                         count: int) -> Tuple[ExactlyOnceSchedule, FaultPlan]:
    """Build the targeted fault plan for one replica ``group``.

    Kill victims are resolved *at fire time* (``FaultPlan.custom``):
    "the leader" means whoever leads when the injection fires, so a
    leader-kill regime lands on the promoted successor mid-failover
    rather than on a stale snapshot of the membership."""
    rng = random.Random(seed)
    plan = FaultPlan(cluster)
    specs: List[ExactlyOnceSpec] = []
    start, end = window
    step = (end - start) / max(1, count)
    group_hosts = sorted(set(group.hosts.values()))

    def kill(role: str):
        def action() -> None:
            if role == "leader":
                victim = group.leader
            else:
                candidates = sorted(worker_id for worker_id in group.alive
                                    if worker_id != group.leader)
                victim = candidates[-1] if candidates else None
            if victim is not None:
                _crash(cluster, victim,
                       "exactly-once chaos: %s kill" % role)
        return action

    for index in range(count):
        kind = EXACTLY_ONCE_REGIMES[index % len(EXACTLY_ONCE_REGIMES)]
        when = start + step * (index + rng.uniform(0.1, 0.6))
        if kind == "broadcast-flap" and len(group_hosts) < 2:
            kind = "replica-kill"
        if kind == "replica-kill":
            plan.custom(when, "kill replica follower (dynamic)",
                        kill("follower"))
            specs.append(ExactlyOnceSpec(
                kind, when, "highest-id alive follower at fire time"))
        elif kind == "leader-kill":
            plan.custom(when, "kill group leader (dynamic)", kill("leader"))
            plan.custom(when + 0.4,
                        "kill promoted leader mid-failover (dynamic)",
                        kill("leader"))
            specs.append(ExactlyOnceSpec(
                kind, when, "leader, then its successor 0.40s later"))
        elif kind == "broadcast-flap":
            host_a, host_b = rng.sample(group_hosts, 2)
            duration = 0.6
            plan.link_flap(host_a, host_b, when, duration)
            specs.append(ExactlyOnceSpec(
                kind, when, "%s<->%s down for %.2fs"
                % (host_a, host_b, duration)))
        else:  # controller-outage (+ a replica kill inside the window)
            duration = 1.2
            plan.controller_outage(when, duration)
            plan.custom(when + 0.3,
                        "kill replica follower during controller outage",
                        kill("follower"))
            specs.append(ExactlyOnceSpec(
                kind, when, "%.2fs outage, follower killed at +0.30s"
                % duration))
    return ExactlyOnceSchedule(seed, specs), plan


def run_chaos_exactly_once(seed: int = 0, hosts: int = 3,
                           duration: float = 16.0, faults: int = 4,
                           rate: float = 1000.0, warmup: float = 4.0,
                           recovery: float = 6.0, settle: float = 2.0,
                           relays: int = 2,
                           replicas: int = 3) -> ChaosRunResult:
    """One seeded exactly-once chaos scenario end to end.

    Deploys the actively-replicated workload
    (:func:`~repro.workloads.replicated.replicated_topology`) on the
    Typhoon runtime with a *strict* dedup registry (no at-least-once
    leniency: a double-applied commit is a violation, not a replay),
    arms the targeted regime schedule, then holds the quiesced cluster
    to all six invariants — in particular replication conservation and
    zero lost / zero duplicate committed tuples.
    """
    engine = Engine()
    cluster = TyphoonCluster(engine, num_hosts=hosts, seed=seed)
    cluster.register_app(FaultDetector(cluster))
    registry = DedupRegistry(at_least_once=False)
    cluster.services[DEDUP_SERVICE] = registry
    config = TopologyConfig(batch_size=50, max_spout_rate=rate,
                            reliable_control=True)
    cluster.submit(replicated_topology("exactly-once", config,
                                       relays=relays, replicas=replicas))
    group = cluster.replication.group_of("exactly-once", "rstate")
    if group is None:
        raise RuntimeError("replicated workload deployed no replica group")
    engine.run(until=warmup)

    window = (warmup, max(warmup + 1.0, duration - 3.0))
    schedule, plan = _exactly_once_faults(cluster, group, seed, window,
                                          faults)
    plan.arm()
    cluster.chaos_plan = plan

    # The recovery tail must cover the slowest chain this harness can
    # produce: supervisor restart (~3 s) + rejoin + log repair + the
    # re-emit age gate.
    engine.run(until=duration + max(recovery, 6.0))
    invariants = InvariantChecker(cluster, settle=settle).run()
    return ChaosRunResult(system="typhoon", seed=seed, schedule=schedule,
                          plan=plan, invariants=invariants,
                          exactly_once=True)


# -- the controller-HA chaos runner --------------------------------------------

#: Fault regimes the controller-HA harness drives, in order:
#:
#: * ``leader-kill-mid-update`` — crash the elected leader exactly when a
#:   Fig. 6 scale-up announces its ``rules`` phase (flow rules half
#:   installed, routing not yet swapped);
#: * ``successor-kill`` — crash the leader, then crash the freshly
#:   promoted successor again before its anti-entropy sweep can finish;
#: * ``store-partition`` — cut the leader off from the coordination
#:   store so it keeps running as a *stale master*, and prove the
#:   switches fence its mutations (a probe FlowMod must be rejected).
HA_REGIMES = ("leader-kill-mid-update", "successor-kill", "store-partition")


@dataclass
class HASpec:
    """One planned controller-HA regime instance (deterministic)."""

    kind: str
    when: float
    detail: str

    def describe(self) -> str:
        return "%-22s t=%6.2f %s" % (self.kind, self.when, self.detail)


@dataclass
class HASchedule:
    """Seeded regime schedule for the replicated control plane — same
    shape as :class:`~repro.sim.faults.ChaosSchedule` where the report
    machinery cares (``specs`` + ``describe``)."""

    seed: int
    specs: List[HASpec] = field(default_factory=list)

    def describe(self) -> str:
        lines = ["controller-ha fault schedule seed=%d regimes=%d"
                 % (self.seed, len(self.specs))]
        lines.extend("  " + spec.describe() for spec in self.specs)
        return "\n".join(lines)


def _ha_faults(cluster, seed: int, window: Tuple[float, float],
               relays: int) -> Tuple[HASchedule, FaultPlan, Dict[str, object]]:
    """Build the three targeted HA regimes against a running cluster.

    Every kill resolves its victim at fire time ("the leader" means
    whoever leads *then*), and every downed replica restarts well before
    the next regime so each failover is observed in isolation."""
    engine = cluster.engine
    rng = random.Random(seed)
    plan = FaultPlan(cluster)
    specs: List[HASpec] = []
    start, end = window
    step = (end - start) / len(HA_REGIMES)
    probe_dpid = sorted(cluster.sdn.switches)[0]
    probe_match = Match(in_port=199)
    expectations: Dict[str, object] = {
        "probes": 0,
        "probe_match": probe_match,
        "probe_dpid": probe_dpid,
        "min_failovers": 4,
    }

    def kill_current_leader(repair_after: float):
        def action() -> None:
            ha = cluster.ha
            victim = ha.leader_name or ha.replicas[0].name
            set_controller_replica_down(cluster, victim, True)
            engine.schedule(repair_after, set_controller_replica_down,
                            cluster, victim, False)
        return action

    # Regime 1: leader killed the instant a scale-up announces that its
    # flow rules are in — the worst mid-update moment, half the new
    # data plane programmed by a controller that just died.
    t_update = round(start + step * rng.uniform(0.1, 0.3), 3)
    engine.schedule(max(0.0, t_update - engine.now),
                    cluster.set_parallelism, "chaos", "relay", relays + 1)
    plan.at_phase("chaos", "scale_up", "rules",
                  kill_current_leader(repair_after=2.5),
                  description="kill leader at scale-up rules phase")
    specs.append(HASpec(HA_REGIMES[0], t_update,
                        "scale relay->%d, kill fire-time leader at the "
                        "rules phase, restart +2.50s" % (relays + 1)))

    # Regime 2: double failure — the promoted successor dies too, after
    # it claimed the switches but (typically) before its reconciliation
    # sweep finished; the third replica must converge the plane.
    t_double = round(start + step * (1 + rng.uniform(0.1, 0.3)), 3)
    plan.custom(t_double, "kill leader (dynamic)",
                kill_current_leader(repair_after=3.0))
    plan.custom(t_double + 0.9, "kill promoted successor (dynamic)",
                kill_current_leader(repair_after=3.0))
    specs.append(HASpec(HA_REGIMES[1], t_double,
                        "leader, then its successor 0.90s later, "
                        "restarts +3.00s"))

    # Regime 3: the leader loses the store but keeps running — a stale
    # master. After the survivors elect a new leader, the stale one
    # provably tries a FlowMod; the switches must fence it.
    t_split = round(start + step * (2 + rng.uniform(0.1, 0.3)), 3)
    split_holder: Dict[str, str] = {}

    def partition() -> None:
        ha = cluster.ha
        victim = ha.leader_name or ha.replicas[0].name
        split_holder["victim"] = victim
        set_store_partition(cluster, victim, True)

    def heal() -> None:
        victim = split_holder.get("victim")
        if victim is not None:
            set_store_partition(cluster, victim, False)

    def probe() -> None:
        victim = split_holder.get("victim")
        if victim is None:
            return
        expectations["probes"] = expectations.get("probes", 0) + 1
        # The deposed master mutates the data plane; the switch must
        # reject this (and tell it so via a stale RoleReply).
        cluster.ha.replica(victim).sdn.install_flow(
            probe_dpid, probe_match, (), priority=1)

    plan.custom(t_split, "partition leader from store", partition,
                duration=2.0, restore=heal)
    plan.custom(t_split + 1.2, "stale-master probe FlowMod", probe)
    specs.append(HASpec(HA_REGIMES[2], t_split,
                        "leader loses the store for 2.00s; stale-master "
                        "FlowMod probe at +1.20s"))
    return HASchedule(seed, specs), plan, expectations


def run_chaos_ha(seed: int = 0, hosts: int = 3, duration: float = 20.0,
                 rate: float = 1500.0, warmup: float = 4.0,
                 recovery: float = 6.0, settle: float = 2.0,
                 relays: int = 2, sinks: int = 2,
                 replicas: int = 3) -> ChaosRunResult:
    """One seeded controller-HA chaos scenario end to end.

    Deploys the chaos workload on a cluster with a *replicated* control
    plane (``ha_replicas`` controller instances, leader election over
    the coordinator), drives the three HA regimes — leader kill mid
    Fig. 6 update, kill of the freshly promoted successor, leader/store
    partition with a stale-master probe — then holds the quiesced
    cluster to the standard six invariants plus the four HA invariants:
    single-master convergence, zero rule divergence, complete fencing,
    and bounded blackout.
    """
    engine = Engine()
    cluster = TyphoonCluster(engine, num_hosts=hosts, seed=seed,
                             ha_replicas=replicas)
    cluster.register_app_factory(lambda: FaultDetector(cluster))
    registry = DedupRegistry(at_least_once=False)
    cluster.services[DEDUP_SERVICE] = registry
    config = TopologyConfig(batch_size=50, max_spout_rate=rate)
    cluster.submit(chaos_topology("chaos", config, relays=relays,
                                  sinks=sinks))
    engine.run(until=warmup)

    window = (warmup, max(warmup + 3.0, duration - 3.0))
    schedule, plan, expectations = _ha_faults(cluster, seed, window, relays)
    plan.arm()
    cluster.chaos_plan = plan
    cluster.ha_expectations = expectations

    # The tail must cover the last regime's heal plus a full failback
    # (session timeout + promotion + reconciliation sweep).
    engine.run(until=duration + max(recovery, 5.0))
    invariants = InvariantChecker(cluster, settle=settle).run()
    ha_payload = dict(cluster.ha.snapshot())
    ha_payload["failovers_detail"] = ha_payload.pop("failovers")
    ha_payload["probes"] = expectations.get("probes", 0)
    return ChaosRunResult(system="typhoon", seed=seed, schedule=schedule,
                          plan=plan, invariants=invariants, ha=ha_payload)


def chaos_snapshot(cluster) -> Dict[str, object]:
    """Live (non-quiescing) chaos state for the ``GET /chaos`` route.

    In-flight tuples make the conservation residual non-zero on a
    running cluster; this is a dashboard view, not the oracle —
    :class:`InvariantChecker` is the strict check.
    """
    snapshot: Dict[str, object] = {
        "conservation": conservation_report(cluster).to_dict(),
    }
    services = getattr(cluster, "services", {})
    registry = services.get(DEDUP_SERVICE)
    if isinstance(registry, DedupRegistry):
        snapshot["duplicates"] = {
            "tracked": registry.tracked,
            "duplicates": registry.duplicates,
            "redelivered": registry.redelivered,
            "at_least_once": registry.at_least_once,
        }
    replay = services.get(REPLAY_SERVICE)
    if isinstance(replay, ReplayService) and replay.buffers:
        snapshot["replay"] = replay.totals()
    replication = getattr(cluster, "replication", None)
    if replication is not None and replication.active():
        snapshot["replication"] = {
            "totals": replication.totals(),
            "groups": replication.snapshot(),
        }
    checkpoints = services.get(CHECKPOINT_SERVICE)
    if isinstance(checkpoints, CheckpointStore) and checkpoints.saves:
        snapshot["checkpoints"] = checkpoints.stats()
    ackers: Dict[str, object] = {}
    manager = getattr(cluster, "manager", None)
    if manager is not None and hasattr(cluster, "executors_for"):
        for topology_id in sorted(manager.topologies):
            for executor in cluster.executors_for(topology_id,
                                                  ACKER_COMPONENT):
                if isinstance(executor.component, AckerBolt):
                    ackers["%s/%d" % (topology_id, executor.worker_id)] = (
                        executor.component.stats())
    if ackers:
        snapshot["ackers"] = ackers
    sdn = getattr(cluster, "sdn", None)
    if sdn is not None:
        snapshot["controller"] = {
            "up": sdn.up,
            "outages": sdn.outages,
            "control_dropped": sdn.control_dropped,
        }
        snapshot["switches"] = {
            dpid: {"up": switch.up, "crashes": switch.crashes,
                   "rules": len(switch.flows)}
            for dpid, switch in sorted(sdn.switches.items())
        }
        detector = next((app for app in sdn.apps
                         if isinstance(app, FaultDetector)), None)
        if detector is not None:
            snapshot["fault_detector"] = {
                "detections": detector.detections,
                "restores": detector.restores,
                "redirected": sorted(detector.redirected),
                "dead_ends": detector.dead_ends,
                "dead_end_events": list(detector.dead_end_events),
            }
        app = getattr(cluster, "app", None)
        if app is not None and hasattr(app, "control_channel_stats"):
            channel = app.control_channel_stats()
            if channel.get("reliable_topologies"):
                snapshot["control_channel"] = channel
    ha = getattr(cluster, "ha", None)
    if ha is not None:
        snapshot["ha"] = ha.snapshot()
    plan = getattr(cluster, "chaos_plan", None)
    if isinstance(plan, FaultPlan):
        snapshot["faults"] = {
            "fired": list(plan.fired),
            "clamped": list(plan.clamped),
            "unresolved": list(plan.unresolved),
        }
    return snapshot

"""Typhoon-side glue for the delivery-accounting layer.

The ledger itself lives in :mod:`repro.sim.audit` (it must be importable
from every layer without cycles); this module contributes the pieces
that need to understand Typhoon frames and clusters:

* :func:`typhoon_frame_tuples` — the ledger ``inspector`` that maps an
  Ethernet frame (or packed tunnel bytes) to ``(scope, tuple_count)``;
* :func:`conservation_report` — snapshot the conservation identity for
  a cluster (Typhoon or the Storm baseline — both expose ``ledger`` and
  ``transports``);
* :func:`verify_conservation` — quiesce a cluster and assert zero
  unattributed loss; the bench harness runs this after the Fig. 10/11/14
  reproductions so a tuple leak fails the experiment loudly.

Tuple identity across fragmentation: a FRAGMENT frame carries 1 tuple
iff it is the head (``offset == 0``), else 0. The head defines the
tuple, so whichever layer kills the head accounts for the whole tuple,
trailing fragments are free to die uncounted, and a gap discovered at
the receiver is accounted exactly once by the reassembler.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..net.ethernet import EthernetFrame
from ..sim.audit import (
    ConservationError,
    ConservationReport,
    DeliveryLedger,
)
from .packets import Fragment, unpack_payload

__all__ = [
    "ConservationError",
    "ConservationReport",
    "DeliveryLedger",
    "conservation_report",
    "quiesce",
    "typhoon_frame_tuples",
    "verify_conservation",
]


def typhoon_frame_tuples(frame: object) -> Optional[Tuple[int, int]]:
    """Ledger inspector: ``(scope, tuple_count)`` for a Typhoon frame.

    Accepts :class:`EthernetFrame` objects or packed frame bytes (the
    form tunnels carry). Control frames name the controller/broadcast
    pseudo-application in ``src``; their tuples belong to the
    destination's application.
    """
    if isinstance(frame, (bytes, bytearray)):
        frame = EthernetFrame.unpack(bytes(frame))
    if not isinstance(frame, EthernetFrame):
        return None
    if frame.src.is_controller or frame.src.is_broadcast:
        scope = frame.dst.app_id
    else:
        scope = frame.src.app_id
    decoded = unpack_payload(frame.payload)
    if isinstance(decoded, Fragment):
        return scope, (1 if decoded.offset == 0 else 0)
    return scope, len(decoded)


def conservation_report(cluster) -> ConservationReport:
    """Snapshot the conservation identity for a cluster's ledger.

    The ledger holds the flow terms; the buffered / pending-reassembly
    terms are read off the live transports here.
    """
    ledger: DeliveryLedger = cluster.ledger
    buffered = 0
    pending = 0
    for transport in getattr(cluster, "transports", {}).values():
        pending_fn = getattr(transport, "pending_tuples", None)
        if pending_fn is not None:
            buffered += pending_fn()
        pending += getattr(transport, "pending_reassembly", 0)
    return ConservationReport(
        sent=sum(ledger.sent.values()),
        injected=sum(ledger.injected.values()),
        replicated=sum(ledger.replicated.values()),
        delivered=sum(ledger.delivered.values()),
        controller_delivered=sum(ledger.controller_delivered.values()),
        drops=ledger.total_drops(),
        buffered=buffered,
        pending_reassembly=pending,
        drop_rows=ledger.drop_rows(),
        unattributable_frames=ledger.unattributable_frames,
    )


def quiesce(cluster, settle: float = 2.0) -> None:
    """Stop emissions and drain the data plane.

    Deactivates every topology, lets in-flight traffic land, then
    flushes live transports and lets those frames land too. After this,
    the only tuples not delivered or dropped sit in transport buffers
    (detached workers) or partial reassembly — both snapshot terms.
    """
    engine = cluster.engine
    for topology_id in list(cluster.manager.topologies):
        cluster.deactivate(topology_id)
    engine.run(until=engine.now + settle)
    for transport in list(cluster.transports.values()):
        if not getattr(transport, "closed", False):
            transport.flush()
    engine.run(until=engine.now + settle)


def verify_conservation(cluster, settle: float = 2.0,
                        strict: bool = True) -> ConservationReport:
    """Quiesce ``cluster`` and check the conservation identity.

    Returns the report; with ``strict`` (the default) raises
    :class:`ConservationError` when any tuple is unaccounted for.
    """
    quiesce(cluster, settle)
    report = conservation_report(cluster)
    if strict and not report.ok:
        raise ConservationError(report)
    return report

"""The dynamic topology manager (Fig. 3, §3.2).

The user-facing entry point for runtime reconfiguration of an active
stream application:

* **per-node parallelism** — change the number of concurrent workers;
* **computation logic** — hot-swap a node's processing code;
* **routing policy** — change grouping type or its parameters.

Requests update the logical topology in the coordinator and drive the
stable-update procedures of :mod:`repro.core.update` as engine
processes. Requests against the same topology are serialized — two
overlapping reconfigurations of one pipeline would race on routing
state — while different topologies reconfigure concurrently.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ..sim.engine import Process
from ..streaming.topology import Grouping
from . import update
from .update import ReconfigurationError


class DynamicTopologyManager:
    """Schedules reconfiguration procedures against a TyphoonCluster."""

    def __init__(self, cluster):
        self.cluster = cluster
        self._last: Dict[str, Process] = {}
        self.completed_requests = 0

    # -- public request API ---------------------------------------------------

    def set_parallelism(self, topology_id: str, component: str,
                        parallelism: int) -> Process:
        """Scale a node up or down to ``parallelism`` workers."""
        if parallelism < 1:
            raise ReconfigurationError("parallelism must be >= 1")
        record = self._record(topology_id)
        current = record.logical.node(component).parallelism
        if parallelism == current:
            return self._enqueue(topology_id, self._noop())
        if parallelism > current:
            procedure = update.scale_up(self.cluster, topology_id, component,
                                        parallelism)
        else:
            procedure = update.scale_down(self.cluster, topology_id,
                                          component, parallelism)
        return self._enqueue(topology_id, procedure)

    def replace_computation(self, topology_id: str, component: str,
                            factory: Callable,
                            parallelism: Optional[int] = None) -> Process:
        """Hot-swap the computation logic of a running node."""
        self._record(topology_id).logical.node(component)  # validates
        procedure = update.replace_computation(
            self.cluster, topology_id, component, factory, parallelism)
        return self._enqueue(topology_id, procedure)

    def set_grouping(self, topology_id: str, src: str, dst: str,
                     grouping: Grouping) -> Process:
        """Change the routing policy on the src -> dst edge."""
        procedure = update.change_grouping(self.cluster, topology_id, src,
                                           dst, grouping)
        return self._enqueue(topology_id, procedure)

    def attach_component(self, topology_id: str, name: str, factory,
                         subscribe_to: str, grouping: Grouping,
                         parallelism: int = 1, stream: int = 0,
                         stateful: bool = False) -> Process:
        """Plug a new component into a running pipeline (interactive
        data mining, dynamic instrumentation)."""
        record = self._record(topology_id)
        if name in record.logical.nodes:
            raise ReconfigurationError("component %r already exists" % name)
        if subscribe_to not in record.logical.nodes:
            raise ReconfigurationError("no component %r to subscribe to"
                                       % subscribe_to)
        procedure = update.attach_component(
            self.cluster, topology_id, name, factory, subscribe_to,
            grouping, parallelism, stream, stateful)
        return self._enqueue(topology_id, procedure)

    def relocate_worker(self, topology_id: str, worker_id: int,
                        new_host: str) -> Process:
        """Pause-and-resume a worker onto another host (§8)."""
        record = self._record(topology_id)
        record.physical.worker(worker_id)  # validates existence
        procedure = update.relocate_worker(self.cluster, topology_id,
                                           worker_id, new_host)
        return self._enqueue(topology_id, procedure)

    def detach_component(self, topology_id: str, name: str) -> Process:
        """Unplug a dynamically attached component without data loss."""
        record = self._record(topology_id)
        record.logical.node(name)  # validates existence
        if record.logical.outgoing(name):
            raise ReconfigurationError(
                "cannot detach %r: downstream nodes depend on it" % name)
        procedure = update.detach_component(self.cluster, topology_id, name)
        return self._enqueue(topology_id, procedure)

    # -- internals ------------------------------------------------------------------

    def _record(self, topology_id: str):
        record = self.cluster.manager.topologies.get(topology_id)
        if record is None:
            raise ReconfigurationError("no active topology %r" % topology_id)
        return record

    def _noop(self):
        return
        yield  # pragma: no cover

    def _enqueue(self, topology_id: str, procedure) -> Process:
        previous = self._last.get(topology_id)

        def serialized():
            if previous is not None and previous.alive:
                yield previous
            result = yield from procedure
            self.completed_requests += 1
            return result

        process = self.cluster.engine.process(
            serialized(), name="reconfig:%s" % topology_id)
        self._last[topology_id] = process
        return process

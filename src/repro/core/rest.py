"""REST API for framework users (§5).

"Some of these applications interact with framework users via REST APIs,
so that the users can leverage a Typhoon-provided framework service
(e.g., topology reconfiguration and debugging services)."

This module provides that service surface as an in-process HTTP-style
dispatcher (the simulation has no sockets): ``handle(method, path, body)``
returns ``(status_code, json_like_dict)``. Routes:

====== =============================================== ==================
GET    /topologies                                      list topologies
GET    /topologies/{id}                                 status + workers
POST   /topologies/{id}/activate                        unthrottle spouts
POST   /topologies/{id}/deactivate                      throttle spouts
POST   /topologies/{id}/input-rate                      {"rate": R|null}
POST   /topologies/{id}/batch-size                      {"size": N}
POST   /topologies/{id}/components/{c}/parallelism      {"value": N}
POST   /topologies/{id}/components/{c}/grouping         {"src","kind","fields"}
POST   /topologies/{id}/components/{c}/debug            tap (live debugger)
DELETE /topologies/{id}/components/{c}/debug            untap
GET    /topologies/{id}/components/{c}/debug            captured window
GET    /cluster                                         data-plane summary
GET    /audit                                           delivery-conservation ledger
GET    /chaos                                           chaos-harness state
GET    /replication                                     replica-group state
GET    /ha                                              replicated control plane
GET    /trace                                           hop-by-hop trace report
GET    /bandwidth                                       allocator snapshot
GET    /slices                                          hypervisor slices
POST   /slices/{name}/flows                             install a FlowMod
POST   /slices/{name}/meters                            install a MeterMod
====== =============================================== ==================

Slice routes go through the attached
:class:`~repro.sdn.hypervisor.NetworkHypervisor`; a request the slice's
address space or bandwidth quota forbids surfaces as **403** with the
:class:`~repro.sdn.hypervisor.SliceViolation` message.

Computation-logic replacement needs code, which does not travel over
REST: factories are pre-registered with :meth:`RestApi.register_factory`
and referenced by name (mirroring the prototype, where binaries live in
the coordinator and requests carry identifiers).
"""

from __future__ import annotations

import re
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..net.addresses import WorkerAddress
from ..sdn.flow import Match, Output, SetDlDst
from ..sdn.hypervisor import SliceViolation
from ..streaming.topology import Grouping, TopologyError
from .audit import conservation_report
from .topology_manager import ReconfigurationError

Response = Tuple[int, Dict[str, Any]]


class RestApi:
    """The user-facing service endpoint of a Typhoon cluster."""

    def __init__(self, cluster):
        self.cluster = cluster
        self._factories: Dict[str, Callable] = {}
        self._debugger = None
        self.requests_served = 0
        self._routes: List[Tuple[str, re.Pattern, Callable]] = [
            ("GET", re.compile(r"^/topologies$"), self._list_topologies),
            ("GET", re.compile(r"^/topologies/(?P<tid>[\w-]+)$"),
             self._get_topology),
            ("POST", re.compile(r"^/topologies/(?P<tid>[\w-]+)/activate$"),
             self._activate),
            ("POST", re.compile(r"^/topologies/(?P<tid>[\w-]+)/deactivate$"),
             self._deactivate),
            ("POST", re.compile(r"^/topologies/(?P<tid>[\w-]+)/input-rate$"),
             self._input_rate),
            ("POST", re.compile(r"^/topologies/(?P<tid>[\w-]+)/batch-size$"),
             self._batch_size),
            ("POST", re.compile(
                r"^/topologies/(?P<tid>[\w-]+)/components/(?P<comp>[\w-]+)"
                r"/parallelism$"), self._set_parallelism),
            ("POST", re.compile(
                r"^/topologies/(?P<tid>[\w-]+)/components/(?P<comp>[\w-]+)"
                r"/logic$"), self._replace_logic),
            ("POST", re.compile(
                r"^/topologies/(?P<tid>[\w-]+)/components/(?P<comp>[\w-]+)"
                r"/grouping$"), self._set_grouping),
            ("POST", re.compile(
                r"^/topologies/(?P<tid>[\w-]+)/components/(?P<comp>[\w-]+)"
                r"/debug$"), self._tap),
            ("DELETE", re.compile(
                r"^/topologies/(?P<tid>[\w-]+)/components/(?P<comp>[\w-]+)"
                r"/debug$"), self._untap),
            ("GET", re.compile(
                r"^/topologies/(?P<tid>[\w-]+)/components/(?P<comp>[\w-]+)"
                r"/debug$"), self._debug_window),
            ("GET", re.compile(r"^/cluster$"), self._cluster_summary),
            ("GET", re.compile(r"^/audit$"), self._audit),
            ("GET", re.compile(r"^/chaos$"), self._chaos),
            ("GET", re.compile(r"^/replication$"), self._replication),
            ("GET", re.compile(r"^/ha$"), self._ha),
            ("GET", re.compile(r"^/trace$"), self._trace),
            ("GET", re.compile(r"^/bandwidth$"), self._bandwidth),
            ("GET", re.compile(r"^/slices$"), self._list_slices),
            ("POST", re.compile(r"^/slices/(?P<name>[\w-]+)/flows$"),
             self._slice_flow),
            ("POST", re.compile(r"^/slices/(?P<name>[\w-]+)/meters$"),
             self._slice_meter),
        ]
        self._hypervisor = None

    # -- plumbing ----------------------------------------------------------

    def register_factory(self, name: str, factory: Callable) -> None:
        """Make a computation factory addressable by REST requests."""
        self._factories[name] = factory

    def attach_debugger(self, debugger) -> None:
        """Wire the live-debugger control plane app into /debug routes."""
        self._debugger = debugger

    def attach_hypervisor(self, hypervisor) -> None:
        """Wire a network hypervisor into the /slices routes."""
        self._hypervisor = hypervisor

    def handle(self, method: str, path: str,
               body: Optional[Dict[str, Any]] = None) -> Response:
        """Dispatch one request; returns (status, payload)."""
        self.requests_served += 1
        body = body or {}
        for route_method, pattern, handler in self._routes:
            if route_method != method:
                continue
            match = pattern.match(path)
            if match is None:
                continue
            try:
                return handler(body=body, **match.groupdict())
            except KeyError as error:
                return 404, {"error": "not found: %s" % error}
            except SliceViolation as error:
                return 403, {"error": str(error)}
            except (ReconfigurationError, TopologyError) as error:
                return 409, {"error": str(error)}
            except (TypeError, ValueError) as error:
                return 400, {"error": str(error)}
        return 404, {"error": "no route %s %s" % (method, path)}

    def _record(self, tid: str):
        record = self.cluster.manager.topologies.get(tid)
        if record is None:
            raise KeyError(tid)
        return record

    # -- handlers -------------------------------------------------------------

    def _list_topologies(self, body) -> Response:
        return 200, {"topologies": sorted(self.cluster.manager.topologies)}

    def _get_topology(self, body, tid: str) -> Response:
        record = self._record(tid)
        workers = []
        for assignment in sorted(record.physical.assignments.values(),
                                 key=lambda a: a.worker_id):
            executor = self.cluster.executor(assignment.worker_id)
            workers.append({
                "worker_id": assignment.worker_id,
                "component": assignment.component,
                "host": assignment.hostname,
                "alive": executor is not None,
                "processed": executor.stats.processed if executor else 0,
            })
        components = {
            name: {"parallelism": node.parallelism,
                   "kind": node.kind, "stateful": node.stateful}
            for name, node in record.logical.nodes.items()
        }
        return 200, {
            "id": tid,
            "version": record.logical.version,
            "components": components,
            "workers": workers,
        }

    def _activate(self, body, tid: str) -> Response:
        self._record(tid)
        self.cluster.activate(tid)
        return 202, {"status": "activating"}

    def _deactivate(self, body, tid: str) -> Response:
        self._record(tid)
        self.cluster.deactivate(tid)
        return 202, {"status": "deactivating"}

    def _input_rate(self, body, tid: str) -> Response:
        self._record(tid)
        if "rate" not in body:
            raise ValueError("body needs 'rate' (number or null)")
        rate = body["rate"]
        self.cluster.set_input_rate(tid, None if rate is None
                                    else float(rate))
        return 202, {"status": "rate update sent"}

    def _batch_size(self, body, tid: str) -> Response:
        self._record(tid)
        size = int(body["size"])
        if size < 1:
            raise ValueError("size must be >= 1")
        self.cluster.set_batch_size(tid, size)
        return 202, {"status": "batch size update sent"}

    def _set_parallelism(self, body, tid: str, comp: str) -> Response:
        self._record(tid).logical.node(comp)
        value = int(body["value"])
        self.cluster.set_parallelism(tid, comp, value)
        return 202, {"status": "reconfiguration started",
                     "component": comp, "parallelism": value}

    def _replace_logic(self, body, tid: str, comp: str) -> Response:
        self._record(tid).logical.node(comp)
        factory_name = body.get("factory")
        factory = self._factories.get(factory_name)
        if factory is None:
            raise ValueError("unknown factory %r (register it first)"
                             % factory_name)
        parallelism = body.get("parallelism")
        self.cluster.replace_computation(tid, comp, factory, parallelism)
        return 202, {"status": "logic replacement started",
                     "component": comp, "factory": factory_name}

    def _set_grouping(self, body, tid: str, comp: str) -> Response:
        self._record(tid)
        src = body["src"]
        grouping = Grouping(body["kind"],
                            tuple(body.get("fields", ())))
        self.cluster.set_grouping(tid, src, comp, grouping)
        return 202, {"status": "grouping change started",
                     "edge": "%s->%s" % (src, comp)}

    def _require_debugger(self):
        if self._debugger is None:
            raise ValueError("no live debugger attached to the REST API")
        return self._debugger

    def _tap(self, body, tid: str, comp: str) -> Response:
        debugger = self._require_debugger()
        self._record(tid).logical.node(comp)
        debugger.tap(tid, comp)
        return 202, {"status": "debug tap deploying", "component": comp}

    def _untap(self, body, tid: str, comp: str) -> Response:
        debugger = self._require_debugger()
        debugger.untap(tid, comp)
        return 200, {"status": "debug tap removed", "component": comp}

    def _debug_window(self, body, tid: str, comp: str) -> Response:
        debugger = self._require_debugger()
        executor = debugger.debug_executor(tid, comp)
        if executor is None:
            raise KeyError("no active tap on %r" % comp)
        bolt = executor.component
        return 200, {
            "component": comp,
            "seen": getattr(bolt, "seen", None),
            "matched": getattr(bolt, "matched", None),
            "window": [list(values) for values in
                       getattr(bolt, "window", [])],
        }

    def _cluster_summary(self, body) -> Response:
        switches = {}
        for fabric in self.cluster.fabric.hosts.values():
            switch = fabric.switch
            switches[switch.dpid] = {
                "rules": len(switch.flows),
                "ports": len(switch.ports),
                "forwarded": switch.packets_forwarded,
                "dropped": switch.packets_dropped,
            }
        return 200, {
            "hosts": sorted(self.cluster.manager.agents),
            "topologies": sorted(self.cluster.manager.topologies),
            "switches": switches,
            "controller": {
                "apps": [app.name for app in self.cluster.sdn.apps],
                "rules_installed": self.cluster.app.rules_installed,
            },
        }

    def _audit(self, body) -> Response:
        """Live view of the delivery-accounting ledger. In-flight tuples
        make ``unattributed`` non-zero on a running cluster; quiesce (or
        use ``verify_conservation``) for a strict check."""
        return 200, conservation_report(self.cluster).to_dict()

    def _chaos(self, body) -> Response:
        """Live chaos-harness state: controller/switch health, dedup
        counters, armed fault plan. Non-quiescing, like ``/audit``."""
        from .chaos import chaos_snapshot

        return 200, chaos_snapshot(self.cluster)

    def _replication(self, body) -> Response:
        """Live replica-group state: membership, leaders, epochs, the
        sequencer/apply/admit/commit counters. 404 when no topology in
        the cluster runs with active replication."""
        service = getattr(self.cluster, "replication", None)
        if service is None or not service.active():
            return 404, {"error": "no replication groups"}
        return 200, {"totals": service.totals(),
                     "groups": service.snapshot()}

    def _ha(self, body) -> Response:
        """Live replicated-control-plane state: leader, generation,
        per-replica roles, failover records (blackout windows), rule
        divergence, fencing counters and coordination-store stats. 404
        when the cluster runs a single controller."""
        plane = getattr(self.cluster, "ha", None)
        if plane is None:
            return 404, {"error": "no replicated control plane"}
        return 200, plane.snapshot()

    def _trace(self, body) -> Response:
        """Live hop-by-hop tracing state: per-hop latency breakdown,
        critical path and drop terminations over the sampled tuples.
        Non-quiescing — in-flight traces show up under ``open``."""
        from .tracing import trace_snapshot

        return 200, trace_snapshot(self.cluster)

    # -- bandwidth allocation + network slices -----------------------------

    def _bandwidth(self, body) -> Response:
        """Live bandwidth-allocator state: meters, guarantees, observed
        rates and the reallocation telemetry (rounds, settle state)."""
        allocator = getattr(self.cluster, "bandwidth_allocator", None)
        if allocator is None:
            return 404, {"error": "no bandwidth allocator running"}
        return 200, allocator.snapshot()

    def _require_hypervisor(self):
        if self._hypervisor is None:
            raise ValueError("no network hypervisor attached to the REST API")
        return self._hypervisor

    def _slice(self, name: str):
        hypervisor = self._require_hypervisor()
        slice_controller = hypervisor.slices.get(name)
        if slice_controller is None:
            raise KeyError("slice %r" % name)
        return slice_controller

    def _list_slices(self, body) -> Response:
        hypervisor = self._require_hypervisor()
        slices = {}
        for name in sorted(hypervisor.slices):
            slice_controller = hypervisor.slices[name]
            slices[name] = {
                "app_ids": sorted(slice_controller.app_ids),
                "bandwidth_quota": slice_controller.bandwidth_quota,
                "committed_bandwidth":
                    slice_controller.committed_bandwidth(),
                "violations": slice_controller.violations,
            }
        return 200, {"slices": slices}

    @staticmethod
    def _address(value) -> WorkerAddress:
        app_id, worker_id = value
        return WorkerAddress(int(app_id), int(worker_id))

    def _slice_flow(self, body, name: str) -> Response:
        """Install a flow rule through a slice's policed controller.

        Body: ``{"dpid", "match": {"in_port"?, "dl_src"?, "dl_dst"?},
        "actions": [{"type": "output", "port"} |
        {"type": "set_dl_dst", "address"}], "priority"?}`` where
        addresses are ``[app_id, worker_id]`` pairs.
        """
        slice_controller = self._slice(name)
        dpid = body["dpid"]
        spec = body.get("match", {})
        match = Match(
            in_port=spec.get("in_port"),
            dl_src=(self._address(spec["dl_src"])
                    if "dl_src" in spec else None),
            dl_dst=(self._address(spec["dl_dst"])
                    if "dl_dst" in spec else None),
        )
        actions = []
        for entry in body.get("actions", ()):
            kind = entry.get("type")
            if kind == "output":
                actions.append(Output(int(entry["port"])))
            elif kind == "set_dl_dst":
                actions.append(SetDlDst(self._address(entry["address"])))
            else:
                raise ValueError("unknown action type %r" % kind)
        slice_controller.install_flow(dpid, match, actions,
                                      priority=int(body.get("priority", 100)))
        return 202, {"status": "flow installed", "slice": name}

    def _slice_meter(self, body, name: str) -> Response:
        """Install/modify a rate meter through a slice (quota-policed).

        Body: ``{"dpid", "meter_id", "rate_bytes_per_sec",
        "burst_bytes"?, "max_queue_seconds"?, "modify"?}``.
        """
        slice_controller = self._slice(name)
        slice_controller.install_meter(
            body["dpid"], int(body["meter_id"]),
            float(body["rate_bytes_per_sec"]),
            burst_bytes=float(body.get("burst_bytes", 0.0)),
            max_queue_seconds=float(body.get("max_queue_seconds", 0.05)),
            modify=bool(body.get("modify", False)))
        return 202, {
            "status": "meter installed",
            "slice": name,
            "committed_bandwidth": slice_controller.committed_bandwidth(),
        }

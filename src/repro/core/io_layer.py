"""The Typhoon I/O layer and data-plane fabric (§3.3.1, Fig. 7).

Two halves:

* :class:`HostFabric` / :class:`TyphoonFabric` — per-host software SDN
  switches interconnected by a full mesh of host-level TCP tunnels, with
  one designated *tunnelling port* per switch (Table 3's remote rows
  select the peer via ``set_tun_dst``).
* :class:`TyphoonTransport` — the per-worker custom transport library
  that replaces worker-level TCP. The northbound side receives tuple
  objects from the framework layer and serializes them **once**; the
  southbound side multiplexes/segments them into custom Ethernet frames
  (see :mod:`repro.core.packets`) and exchanges them with the host switch
  through shared-memory rings, paying JNI/ring/packetization costs per
  batch and per packet.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..net.addresses import BROADCAST, CONTROLLER_ADDRESS, TYPHOON_ETHERTYPE, WorkerAddress
from ..net.ethernet import DEFAULT_MTU, EthernetFrame
from ..net.hosts import Cluster
from ..net.tcp import TcpTunnel
from ..sdn.switch import SoftwareSwitch, SwitchPort
from ..sim.audit import (
    LAYER_FABRIC,
    LAYER_REASSEMBLY,
    LAYER_TRANSPORT,
    R_AFTER_CLOSE,
    R_CLOSED_PORT,
    R_DELIVER_REJECTED,
    R_TUNNEL_UNROUTABLE,
    DeliveryLedger,
)
from ..sim.costs import CostModel
from ..sim.engine import Engine
from ..sim.trace import (
    H_BATCH,
    H_DESERIALIZE,
    H_REASSEMBLY,
    H_SERIALIZE,
    H_TUNNEL_RX,
    H_TUNNEL_TX,
    H_WIRE,
    Tracer,
    address_branch,
)
from ..streaming.serialize import (
    decode_tuple,
    deserialize_cost,
    SCALAR_TYPES,
    encode_tuple,
    encode_tuple_scalar,
    peek_trace_id,
    serialize_cost,
)
from ..streaming.transport import Delivery, Transport
from ..streaming.tuples import StreamTuple
from .packets import Fragment, Reassembler, pack_tuples_spans, unpack_payload


class HostFabric:
    """One host's data plane: its software switch plus tunnel endpoints."""

    def __init__(self, engine: Engine, costs: CostModel, hostname: str,
                 ledger: Optional[DeliveryLedger] = None,
                 tracer: Optional[Tracer] = None):
        self.engine = engine
        self.costs = costs
        self.hostname = hostname
        self.ledger = ledger
        self.tracer = tracer
        self.switch = SoftwareSwitch(engine, costs, dpid=hostname,
                                     ledger=ledger, tracer=tracer)
        self.tunnels: Dict[str, TcpTunnel] = {}
        self.tunnel_drops = 0
        self.tunnel_port = self.switch.add_port(
            "tunnel", self._tunnel_sink, kind=SwitchPort.TUNNEL
        )

    def _live_tracer(self) -> Optional[Tracer]:
        tracer = self.tracer
        if tracer is not None and tracer.has_active():
            return tracer
        return None

    def _tunnel_sink(self, frame: EthernetFrame, tun_dst: Optional[str]) -> None:
        tunnel = self.tunnels.get(tun_dst) if tun_dst else None
        tracer = self._live_tracer()
        if tunnel is None:
            self.tunnel_drops += 1
            if self.ledger is not None:
                self.ledger.record_frame_drop(LAYER_FABRIC,
                                              R_TUNNEL_UNROUTABLE, frame)
            if tracer is not None:
                tracer.frame_drop(frame, LAYER_FABRIC, R_TUNNEL_UNROUTABLE)
            return
        if tracer is not None:
            tracer.frame_event(frame, H_TUNNEL_TX, src=self.hostname,
                               peer=tun_dst)
        tunnel.send_from(self.hostname, frame.pack())

    def receive_from_tunnel(self, data: bytes) -> None:
        frame = EthernetFrame.unpack(data)
        tracer = self._live_tracer()
        if tracer is not None:
            tracer.frame_event(frame, H_TUNNEL_RX, host=self.hostname)
        self.switch.inject(self.tunnel_port, frame)


class TyphoonFabric:
    """Cluster-wide data plane: one fabric per host, full tunnel mesh."""

    def __init__(self, engine: Engine, costs: CostModel, cluster: Cluster,
                 ledger: Optional[DeliveryLedger] = None,
                 tracer: Optional[Tracer] = None):
        self.engine = engine
        self.costs = costs
        self.ledger = ledger
        self.tracer = tracer
        self.hosts: Dict[str, HostFabric] = {
            host.name: HostFabric(engine, costs, host.name, ledger=ledger,
                                  tracer=tracer)
            for host in cluster
        }
        names = sorted(self.hosts)
        for i, name_a in enumerate(names):
            for name_b in names[i + 1:]:
                fabric_a = self.hosts[name_a]
                fabric_b = self.hosts[name_b]
                tunnel = TcpTunnel(
                    engine, costs, name_a, name_b,
                    deliver_to_a=fabric_a.receive_from_tunnel,
                    deliver_to_b=fabric_b.receive_from_tunnel,
                    ledger=ledger, tracer=tracer,
                )
                fabric_a.tunnels[name_b] = tunnel
                fabric_b.tunnels[name_a] = tunnel

    def host(self, hostname: str) -> HostFabric:
        if hostname not in self.hosts:
            raise KeyError("no fabric for host %r" % hostname)
        return self.hosts[hostname]

    def switches(self) -> List[SoftwareSwitch]:
        return [fabric.switch for fabric in self.hosts.values()]


#: Destination key on the outbound buffers: a concrete worker id or a
#: special Ethernet address (broadcast, controller, select-group virtual).
_DstKey = Union[int, WorkerAddress]

#: Value types whose decoded form is indistinguishable from the sender's
#: object (immutable scalars that round-trip the codec exactly). Tuples
#: made only of these ride the same-process fast lane: the frame carries
#: the object alongside the authoritative bytes and the receiver skips
#: the decode walk. Containers are excluded — decode materializes fresh
#: mutable lists/dicts (and turns tuples into lists), so aliasing the
#: sender's objects would be observable.
#: (Single source of truth lives in the codec module so the fused
#: serialize+classify fast path can never drift from this set.)
_FASTLANE_TYPES = SCALAR_TYPES


class TyphoonTransport(Transport):
    """Per-worker northbound + southbound transport libraries."""

    def __init__(
        self,
        engine: Engine,
        costs: CostModel,
        worker_id: int,
        app_id: int,
        host_fabric: HostFabric,
        batch_size: int = 100,
        mtu: int = DEFAULT_MTU,
        ledger: Optional[DeliveryLedger] = None,
        tracer: Optional[Tracer] = None,
    ):
        self.engine = engine
        self.costs = costs
        self.worker_id = worker_id
        self.app_id = app_id
        self.fabric = host_fabric
        self.batch_size = max(1, batch_size)
        self.mtu = mtu
        self.ledger = ledger if ledger is not None else host_fabric.ledger
        self.tracer = tracer if tracer is not None else host_fabric.tracer
        self.address = WorkerAddress(app_id, worker_id)
        self.port_no: Optional[int] = None
        self.deliver: Optional[Callable[[Delivery], bool]] = None
        self.select_addresses: Dict[Tuple[str, int], WorkerAddress] = {}
        # Buffer entries are (encoded, obj) pairs; obj is the original
        # StreamTuple when it qualifies for fast-lane delivery, else None.
        self._buffers: Dict[WorkerAddress,
                            List[Tuple[bytes, Optional[StreamTuple]]]] = {}
        self._frag_id = 0
        # Round-robin fallback state for offloaded edges, per edge key —
        # a shared counter would skew the distribution whenever one
        # worker feeds several offloaded edges.
        self._rr_counters: Dict[Tuple, int] = {}
        # Worker ids are a small dense set; interning their WorkerAddress
        # saves a namedtuple construction per (tuple, destination) on the
        # Fig. 8 hot path. Addresses compare by value, so reuse is safe.
        self._addr_cache: Dict[int, WorkerAddress] = {}
        self._enqueue_cost = costs.typhoon_enqueue_per_tuple
        self._pending_recv_cost = 0.0
        self._reassembler = Reassembler(
            on_drop=self._on_reassembly_drop,
            on_discard_data=self._on_reassembly_discard,
        )
        self.closed = False
        self.tuples_sent = 0
        self.serializations = 0
        self.frames_sent = 0
        self.frames_received = 0
        self.dropped_after_close = 0

    # -- attachment --------------------------------------------------------

    @property
    def switch(self) -> SoftwareSwitch:
        return self.fabric.switch

    def attach(self) -> int:
        """Create this worker's switch port (PortStatus ADD fires to the
        controller, which installs the Table 3 rules for it)."""
        if self.port_no is not None:
            raise RuntimeError("transport already attached")
        self.port_no = self.switch.add_port(
            "w%d" % self.worker_id, self._on_frame, kind=SwitchPort.WORKER
        )
        return self.port_no

    def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        if self.port_no is not None:
            self.switch.remove_port(self.port_no)
            self.port_no = None
        # Drain outbound buffers and partial reassembly so a retired
        # transport leaves no unaccounted residue behind.
        for buffer in self._buffers.values():
            if buffer:
                self.dropped_after_close += len(buffer)
                if self.ledger is not None:
                    self.ledger.record_drop(self.app_id, LAYER_TRANSPORT,
                                            R_AFTER_CLOSE, len(buffer))
                self._drop_buffered_traces(buffer, R_AFTER_CLOSE)
        self._buffers.clear()
        self._reassembler.drain()

    def _live_tracer(self) -> Optional[Tracer]:
        tracer = self.tracer
        if tracer is not None and tracer.has_active():
            return tracer
        return None

    def _drop_buffered_traces(self, buffer: Sequence[Tuple[bytes, object]],
                              reason: str) -> None:
        """Close spans of sampled tuples dying in an outbound buffer."""
        tracer = self._live_tracer()
        if tracer is None:
            return
        for encoded, _obj in buffer:
            trace_id = peek_trace_id(encoded)
            if trace_id is not None:
                tracer.finish_drop(trace_id, LAYER_TRANSPORT, reason)

    def _on_reassembly_drop(self, key, reason: str) -> None:
        if self.ledger is None:
            return
        # Keys are ((src_app_id, src_worker_id), frag_id); attribute the
        # lost tuple to the sending application.
        source = key[0]
        scope = source[0] if isinstance(source, tuple) else self.app_id
        self.ledger.record_drop(scope, LAYER_REASSEMBLY, reason)

    def _on_reassembly_discard(self, key, reason: str, data: bytes) -> None:
        # The partial buffer starts at offset 0, so the tuple's fixed
        # header — and with it any embedded trace id — is intact.
        tracer = self._live_tracer()
        if tracer is None:
            return
        trace_id = peek_trace_id(data)
        if trace_id is not None:
            tracer.finish_drop(trace_id, LAYER_REASSEMBLY, reason,
                               branch=self.worker_id)

    def pending_tuples(self) -> int:
        """Tuples sitting in outbound batch buffers (conservation term)."""
        return sum(len(buffer) for buffer in self._buffers.values())

    @property
    def pending_reassembly(self) -> int:
        """Partially reassembled inbound tuples (conservation term)."""
        return self._reassembler.pending_count

    # -- outbound (northbound -> southbound -> switch) -----------------------

    def _dst_address(self, dst: _DstKey) -> WorkerAddress:
        address = self._addr_cache.get(dst)
        if address is None:
            if isinstance(dst, WorkerAddress):
                return dst
            address = self._addr_cache[dst] = WorkerAddress(self.app_id, dst)
        return address

    def _enqueue(self, address: WorkerAddress, encoded: bytes,
                 obj: Optional[StreamTuple] = None) -> float:
        buffer = self._buffers.get(address)
        if buffer is None:
            buffer = self._buffers[address] = []
        buffer.append((encoded, obj))
        self.tuples_sent += 1
        ledger = self.ledger
        if ledger is not None:
            ledger.record_sent(self.app_id)
        cost = self._enqueue_cost
        if len(buffer) >= self.batch_size:
            cost += self._flush_address(address)
        return cost

    def _trace_serialized(self, stream_tuple: StreamTuple,
                          nbytes: int, cost: float) -> None:
        if stream_tuple.trace_id is None:
            return
        tracer = self.tracer
        if tracer is not None:
            tracer.event(stream_tuple.trace_id, H_SERIALIZE, cost=cost,
                         nbytes=nbytes)

    def _fastlane_obj(self,
                      stream_tuple: StreamTuple) -> Optional[StreamTuple]:
        for value in stream_tuple.values:
            if type(value) not in _FASTLANE_TYPES:
                return None
        return stream_tuple

    def send(self, stream_tuple: StreamTuple,
             dst_worker_ids: Sequence[int]) -> float:
        # Hottest method in the data plane (once per tuple emitted):
        # _dst_address / _fastlane_obj / _enqueue / serialize_cost are
        # inlined here. Cost arithmetic mirrors the helper structure
        # exactly (per-destination enqueue+flush summed first, then
        # added) so schedules stay bit-identical.
        if self.closed or not dst_worker_ids:
            return 0.0
        encoded, all_scalar = encode_tuple_scalar(stream_tuple)
        # Serialized once, no matter how many destinations.
        costs = self.costs
        cost = costs.serialize_per_tuple + len(encoded) * costs.serialize_per_byte
        self.serializations += 1
        if stream_tuple.trace_id is not None:
            self._trace_serialized(stream_tuple, len(encoded), cost)
        item = (encoded, stream_tuple if all_scalar else None)
        addr_cache = self._addr_cache
        buffers = self._buffers
        ledger = self.ledger
        app_id = self.app_id
        enqueue_cost = self._enqueue_cost
        batch_size = self.batch_size
        for dst in dst_worker_ids:
            address = addr_cache.get(dst)
            if address is None:
                if isinstance(dst, WorkerAddress):
                    address = addr_cache[dst] = dst
                else:
                    address = addr_cache[dst] = WorkerAddress(app_id, dst)
            buffer = buffers.get(address)
            if buffer is None:
                buffer = buffers[address] = []
            buffer.append(item)
            self.tuples_sent += 1
            if ledger is not None:
                ledger.record_sent(app_id)
            dcost = enqueue_cost
            if len(buffer) >= batch_size:
                dcost += self._flush_address(address)
            cost += dcost
        return cost

    def send_many(self, stream_tuples: Sequence[StreamTuple],
                  dst: _DstKey) -> float:
        """Batched :meth:`send`: every tuple goes to the same single
        destination. Exactly equivalent to calling ``send(t, [dst])``
        per tuple and summing the costs — same serialization, same
        per-tuple cost terms in the same accumulation order, same flush
        points — with the per-call setup (address/buffer resolution,
        cost-model reads) hoisted out of the loop. The executor uses it
        when a whole emission batch rides one single-hop edge."""
        if self.closed or not stream_tuples:
            return 0.0
        costs = self.costs
        ser_per_tuple = costs.serialize_per_tuple
        ser_per_byte = costs.serialize_per_byte
        address = self._addr_cache.get(dst)
        if address is None:
            if isinstance(dst, WorkerAddress):
                address = self._addr_cache[dst] = dst
            else:
                address = self._addr_cache[dst] = WorkerAddress(self.app_id,
                                                                dst)
        buffers = self._buffers
        buffer = buffers.get(address)
        if buffer is None:
            buffer = buffers[address] = []
        # _flush_address clears the list in place (the object is reused
        # across batch windows), so the local alias stays valid.
        append = buffer.append
        enqueue_cost = self._enqueue_cost
        batch_size = self.batch_size
        cost = 0.0
        blen = len(buffer)
        for stream_tuple in stream_tuples:
            encoded, all_scalar = encode_tuple_scalar(stream_tuple)
            tcost = ser_per_tuple + len(encoded) * ser_per_byte
            if stream_tuple.trace_id is not None:
                self._trace_serialized(stream_tuple, len(encoded), tcost)
            append((encoded, stream_tuple if all_scalar else None))
            blen += 1
            dcost = enqueue_cost
            if blen >= batch_size:
                dcost += self._flush_address(address)
                blen = 0
            tcost += dcost
            cost += tcost
        sent = len(stream_tuples)
        # Counter/ledger bumps are coalesced: nothing outside this call
        # can observe them before it returns (frame forwarding is
        # event-scheduled, never inline).
        self.tuples_sent += sent
        self.serializations += sent
        if self.ledger is not None:
            self.ledger.record_sent(self.app_id, sent)
        return cost

    def send_interleaved(self, stream_tuples: Sequence[StreamTuple],
                         dst: _DstKey, pre_cost: float,
                         cost: float) -> float:
        """Batched replay of the executor's per-tuple spout dispatch:
        ``for t: cost += pre_cost; cost += send(t, [dst])`` with the
        identical float-addition sequence on the running ``cost`` (the
        per-tuple send total is assembled serialize-then-enqueue exactly
        as :meth:`send` does). One call frame per emission batch instead
        of two per tuple."""
        if not stream_tuples:
            return cost
        if self.closed:
            # send() would return 0.0 per tuple; += 0.0 is a bit-exact
            # no-op on a finite cost, so only pre_cost remains.
            for _ in stream_tuples:
                cost += pre_cost
            return cost
        costs = self.costs
        ser_per_tuple = costs.serialize_per_tuple
        ser_per_byte = costs.serialize_per_byte
        address = self._addr_cache.get(dst)
        if address is None:
            if isinstance(dst, WorkerAddress):
                address = self._addr_cache[dst] = dst
            else:
                address = self._addr_cache[dst] = WorkerAddress(self.app_id,
                                                                dst)
        buffers = self._buffers
        buffer = buffers.get(address)
        if buffer is None:
            buffer = buffers[address] = []
        # _flush_address clears the list in place, so the alias holds
        # and the tracked length resets to zero at each flush point.
        append = buffer.append
        enqueue_cost = self._enqueue_cost
        batch_size = self.batch_size
        blen = len(buffer)
        for stream_tuple in stream_tuples:
            cost += pre_cost
            encoded, all_scalar = encode_tuple_scalar(stream_tuple)
            tcost = ser_per_tuple + len(encoded) * ser_per_byte
            if stream_tuple.trace_id is not None:
                self._trace_serialized(stream_tuple, len(encoded), tcost)
            append((encoded, stream_tuple if all_scalar else None))
            blen += 1
            dcost = enqueue_cost
            if blen >= batch_size:
                dcost += self._flush_address(address)
                blen = 0
            tcost += dcost
            cost += tcost
        sent = len(stream_tuples)
        self.tuples_sent += sent
        self.serializations += sent
        if self.ledger is not None:
            self.ledger.record_sent(self.app_id, sent)
        return cost

    def send_broadcast(self, stream_tuple: StreamTuple,
                       dst_worker_ids: Sequence[int]) -> float:
        """One packet with the broadcast destination; the switch replicates
        to as many destinations as the one-to-many rule lists (§3.3.1)."""
        if self.closed:
            return 0.0
        encoded = encode_tuple(stream_tuple)
        cost = serialize_cost(self.costs, len(encoded))
        self.serializations += 1
        self._trace_serialized(stream_tuple, len(encoded), cost)
        cost += self._enqueue(BROADCAST, encoded,
                              self._fastlane_obj(stream_tuple))
        return cost

    def send_offloaded(self, stream_tuple: StreamTuple, edge_key,
                       dst_worker_ids: Sequence[int]) -> float:
        """SDN load balancing: emit to the edge's virtual select address;
        the switch's select group rewrites the destination (§4)."""
        if self.closed:
            return 0.0
        address = self.select_addresses.get(edge_key)
        if address is None:
            if not dst_worker_ids:
                return 0.0
            counter = self._rr_counters.get(edge_key, 0)
            self._rr_counters[edge_key] = counter + 1
            index = counter % len(dst_worker_ids)
            return self.send(stream_tuple, [dst_worker_ids[index]])
        encoded = encode_tuple(stream_tuple)
        cost = serialize_cost(self.costs, len(encoded))
        self.serializations += 1
        self._trace_serialized(stream_tuple, len(encoded), cost)
        cost += self._enqueue(address, encoded,
                              self._fastlane_obj(stream_tuple))
        return cost

    def send_to_controller(self, stream_tuple: StreamTuple) -> float:
        """Framework-layer reply path (METRIC_RESP): flushed immediately."""
        if self.closed:
            return 0.0
        encoded = encode_tuple(stream_tuple)
        cost = serialize_cost(self.costs, len(encoded))
        self.serializations += 1
        self._trace_serialized(stream_tuple, len(encoded), cost)
        cost += self._enqueue(CONTROLLER_ADDRESS, encoded)
        cost += self._flush_address(CONTROLLER_ADDRESS)
        return cost

    def flush(self) -> float:
        """Flush every non-empty destination buffer in one coalesced
        pass: the closed/unattached checks run once per batch window
        (not once per destination), empty buffers are skipped without a
        dict re-walk, and each batch does a single envelope pass in
        :meth:`_emit_batch`. Frame emission order (dict insertion order
        of the destinations) is unchanged, so schedules stay identical.
        """
        if self.closed:
            cost = 0.0
            for address in list(self._buffers):
                cost += self._flush_address(address)
            return cost
        if self.port_no is None:
            # Live but not (yet) attached to a switch port: hold the
            # batches — the periodic flusher retries after attach. Only
            # a closed transport may discard.
            return 0.0
        cost = 0.0
        for address, buffer in self._buffers.items():
            if buffer:
                cost += self._emit_batch(address, buffer)
                buffer.clear()
        return cost

    def _flush_address(self, address: WorkerAddress) -> float:
        buffer = self._buffers.get(address)
        if not buffer:
            return 0.0
        if self.closed:
            self._buffers[address] = []
            self.dropped_after_close += len(buffer)
            if self.ledger is not None:
                self.ledger.record_drop(self.app_id, LAYER_TRANSPORT,
                                        R_AFTER_CLOSE, len(buffer))
            self._drop_buffered_traces(buffer, R_AFTER_CLOSE)
            return 0.0
        if self.port_no is None:
            # Hold the batch until attach (see :meth:`flush`).
            return 0.0
        cost = self._emit_batch(address, buffer)
        buffer.clear()
        return cost

    def _emit_batch(self, address: WorkerAddress,
                    buffer: List[Tuple[bytes, Optional[StreamTuple]]]) -> float:
        """One envelope pass for one destination's batch: trace
        checkpoints, multiplex/segment into payloads, frame and inject.
        The caller clears the buffer afterwards (the list object is
        reused across batch windows — no per-flush reallocation)."""
        tracer = self._live_tracer()
        if tracer is not None:
            # The segment since each tuple's serialize checkpoint is the
            # time it sat in this batch buffer waiting for the flush.
            branch = address_branch(address)
            for encoded, _obj in buffer:
                trace_id = peek_trace_id(encoded)
                if trace_id is not None:
                    tracer.event(trace_id, H_BATCH, branch=branch,
                                 batch=len(buffer))
        records = [item[0] for item in buffer]
        payloads, self._frag_id, spans = pack_tuples_spans(
            records, self.mtu, self._frag_id)
        # One JNI crossing per batch handed to the southbound library.
        costs = self.costs
        cost = costs.jni_call_overhead
        per_packet = costs.packetize_per_packet
        per_byte = costs.packetize_per_byte
        ring_op = costs.ring_op_per_packet
        switch_inject = self.switch.inject
        port_no = self.port_no
        for payload, span in zip(payloads, spans):
            cost += per_packet + len(payload) * per_byte + ring_op
            annotation = None
            if span is not None:
                start, end = span
                annotation = []
                for j in range(start, end):
                    obj = buffer[j][1]
                    if obj is None:
                        annotation = None
                        break
                    annotation.append((obj, len(records[j])))
                if annotation is not None:
                    annotation = tuple(annotation)
            frame = EthernetFrame(dst=address, src=self.address,
                                  ethertype=TYPHOON_ETHERTYPE, payload=payload,
                                  tuples=annotation)
            self.frames_sent += 1
            switch_inject(port_no, frame)
        return cost

    def set_batch_size(self, batch_size: int) -> None:
        self.batch_size = max(1, int(batch_size))

    # -- inbound (switch -> southbound -> northbound) ---------------------------

    def _frame_scope(self, frame: EthernetFrame) -> int:
        """Application a frame's tuples belong to. Control frames carry
        the controller/broadcast pseudo-app in ``src``; attribute those
        to the destination's application instead."""
        if frame.src.is_controller or frame.src.is_broadcast:
            return frame.dst.app_id
        return frame.src.app_id

    def _on_frame(self, frame: EthernetFrame, _tun_dst: Optional[str]) -> None:
        if self.closed or self.deliver is None:
            if self.ledger is not None:
                self.ledger.record_frame_drop(LAYER_TRANSPORT,
                                              R_CLOSED_PORT, frame)
            tracer = self._live_tracer()
            if tracer is not None:
                tracer.frame_drop(frame, LAYER_TRANSPORT, R_CLOSED_PORT)
            return
        self.frames_received += 1
        costs = self.costs
        cost = (costs.ring_op_per_packet
                + costs.depacketize_per_packet
                + len(frame) * costs.depacketize_per_byte
                + costs.jni_call_overhead)
        annotated = frame.tuples
        if annotated is not None and self._live_tracer() is None:
            # Same-process fast lane: the sender attached the original
            # tuples (all-scalar values, so a decode would reproduce them
            # exactly); reconstruct deliveries without walking the bytes.
            # Costs are charged from the authoritative encoded lengths,
            # term for term as the decode path would.
            per_tuple = costs.deserialize_per_tuple
            per_byte = costs.deserialize_per_byte
            tuples = []
            append = tuples.append
            new = StreamTuple.__new__
            # The store's OOM sizer (delivery_bytes) is prepaid here:
            # fast-lane values are guaranteed *exact* scalar types, so
            # the exact-type size checks below reproduce the sizer's
            # isinstance-based estimate identically, and the walk rides
            # the clone loop instead of a second pass per store op.
            est = 0
            for src_tuple, nbytes in annotated:
                cost += per_tuple + nbytes * per_byte
                # Field-by-field clone via __new__ (hot path): matches
                # what decode_tuple would build — source_component is
                # reset to "", everything else carried over.
                out = new(StreamTuple)
                values = src_tuple.values
                out.values = values
                out.stream = src_tuple.stream
                out.source_component = ""
                out.source_worker = src_tuple.source_worker
                out.anchor = src_tuple.anchor
                out.trace_id = src_tuple.trace_id
                out.seq = src_tuple.seq
                append(out)
                est += 80
                for value in values:
                    kind = type(value)
                    if kind is str or kind is bytes:
                        est += len(value)
                    else:
                        est += 8
            cost += self._pending_recv_cost
            self._pending_recv_cost = 0.0
            accepted = self.deliver(Delivery(tuples=tuples, cost=cost,
                                             nbytes=est))
            if self.ledger is not None:
                scope = self._frame_scope(frame)
                if accepted:
                    self.ledger.record_delivered(scope, len(tuples))
                else:
                    self.ledger.record_drop(scope, LAYER_TRANSPORT,
                                            R_DELIVER_REJECTED, len(tuples))
            return
        decoded = unpack_payload(frame.payload)
        records: List[bytes]
        reassembled = False
        if isinstance(decoded, Fragment):
            # Key by (app, worker): same-numbered workers of different
            # applications must never share a reassembly stream.
            source = (frame.src.app_id, frame.src.worker_id)
            complete = self._reassembler.feed(source, decoded)
            if complete is None:
                # Partial tuple: bank the cost against the next delivery.
                self._pending_recv_cost += cost
                return
            records = [complete]
            reassembled = True
        else:
            records = decoded
        tuples = []
        tracer = self._live_tracer()
        for data in records:
            stream_tuple = decode_tuple(data)
            tuple_cost = deserialize_cost(self.costs, len(data))
            cost += tuple_cost
            if tracer is not None and stream_tuple.trace_id is not None:
                tracer.event(stream_tuple.trace_id, H_WIRE,
                             branch=self.worker_id)
                if reassembled:
                    tracer.event(stream_tuple.trace_id, H_REASSEMBLY,
                                 branch=self.worker_id)
                tracer.event(stream_tuple.trace_id, H_DESERIALIZE,
                             branch=self.worker_id, cost=tuple_cost,
                             nbytes=len(data))
            tuples.append(stream_tuple)
        cost += self._pending_recv_cost
        self._pending_recv_cost = 0.0
        accepted = self.deliver(Delivery(tuples=tuples, cost=cost))
        if self.ledger is not None:
            scope = self._frame_scope(frame)
            if accepted:
                self.ledger.record_delivered(scope, len(tuples))
            else:
                self.ledger.record_drop(scope, LAYER_TRANSPORT,
                                        R_DELIVER_REJECTED, len(tuples))
        if not accepted and tracer is not None:
            for stream_tuple in tuples:
                if stream_tuple.trace_id is not None:
                    tracer.finish_drop(stream_tuple.trace_id, LAYER_TRANSPORT,
                                       R_DELIVER_REJECTED,
                                       branch=self.worker_id)

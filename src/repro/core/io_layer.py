"""The Typhoon I/O layer and data-plane fabric (§3.3.1, Fig. 7).

Two halves:

* :class:`HostFabric` / :class:`TyphoonFabric` — per-host software SDN
  switches interconnected by a full mesh of host-level TCP tunnels, with
  one designated *tunnelling port* per switch (Table 3's remote rows
  select the peer via ``set_tun_dst``).
* :class:`TyphoonTransport` — the per-worker custom transport library
  that replaces worker-level TCP. The northbound side receives tuple
  objects from the framework layer and serializes them **once**; the
  southbound side multiplexes/segments them into custom Ethernet frames
  (see :mod:`repro.core.packets`) and exchanges them with the host switch
  through shared-memory rings, paying JNI/ring/packetization costs per
  batch and per packet.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..net.addresses import BROADCAST, CONTROLLER_ADDRESS, TYPHOON_ETHERTYPE, WorkerAddress
from ..net.ethernet import DEFAULT_MTU, EthernetFrame
from ..net.hosts import Cluster
from ..net.tcp import TcpTunnel
from ..sdn.switch import SoftwareSwitch, SwitchPort
from ..sim.audit import (
    LAYER_FABRIC,
    LAYER_REASSEMBLY,
    LAYER_TRANSPORT,
    R_AFTER_CLOSE,
    R_CLOSED_PORT,
    R_DELIVER_REJECTED,
    R_TUNNEL_UNROUTABLE,
    DeliveryLedger,
)
from ..sim.costs import CostModel
from ..sim.engine import Engine
from ..sim.trace import (
    H_BATCH,
    H_DESERIALIZE,
    H_REASSEMBLY,
    H_SERIALIZE,
    H_TUNNEL_RX,
    H_TUNNEL_TX,
    H_WIRE,
    Tracer,
    address_branch,
)
from ..streaming.serialize import (
    decode_tuple,
    deserialize_cost,
    SCALAR_TYPES,
    encode_train,
    encode_train_uniform,
    encode_tuple,
    encode_tuple_scalar,
    peek_trace_id,
    serialize_cost,
)
from ..streaming.transport import Delivery, Transport
from ..streaming.tuples import StreamTuple
from .packets import (
    KIND_MULTI,
    _MULTI_HEAD,
    Fragment,
    Reassembler,
    pack_tuples_spans,
    unpack_payload,
)


class HostFabric:
    """One host's data plane: its software switch plus tunnel endpoints."""

    def __init__(self, engine: Engine, costs: CostModel, hostname: str,
                 ledger: Optional[DeliveryLedger] = None,
                 tracer: Optional[Tracer] = None):
        self.engine = engine
        self.costs = costs
        self.hostname = hostname
        self.ledger = ledger
        self.tracer = tracer
        self.switch = SoftwareSwitch(engine, costs, dpid=hostname,
                                     ledger=ledger, tracer=tracer)
        self.tunnels: Dict[str, TcpTunnel] = {}
        self.tunnel_drops = 0
        self.tunnel_port = self.switch.add_port(
            "tunnel", self._tunnel_sink, kind=SwitchPort.TUNNEL
        )

    def _live_tracer(self) -> Optional[Tracer]:
        tracer = self.tracer
        if tracer is not None and tracer.has_active():
            return tracer
        return None

    def _tunnel_sink(self, frame: EthernetFrame, tun_dst: Optional[str]) -> None:
        tunnel = self.tunnels.get(tun_dst) if tun_dst else None
        tracer = self._live_tracer()
        if tunnel is None:
            self.tunnel_drops += 1
            if self.ledger is not None:
                self.ledger.record_frame_drop(LAYER_FABRIC,
                                              R_TUNNEL_UNROUTABLE, frame)
            if tracer is not None:
                tracer.frame_drop(frame, LAYER_FABRIC, R_TUNNEL_UNROUTABLE)
            return
        if tracer is not None:
            tracer.frame_event(frame, H_TUNNEL_TX, src=self.hostname,
                               peer=tun_dst)
        tunnel.send_from(self.hostname, frame.pack())

    def receive_from_tunnel(self, data: bytes) -> None:
        frame = EthernetFrame.unpack(data)
        tracer = self._live_tracer()
        if tracer is not None:
            tracer.frame_event(frame, H_TUNNEL_RX, host=self.hostname)
        self.switch.inject(self.tunnel_port, frame)


class TyphoonFabric:
    """Cluster-wide data plane: one fabric per host, full tunnel mesh."""

    def __init__(self, engine: Engine, costs: CostModel, cluster: Cluster,
                 ledger: Optional[DeliveryLedger] = None,
                 tracer: Optional[Tracer] = None):
        self.engine = engine
        self.costs = costs
        self.ledger = ledger
        self.tracer = tracer
        self.hosts: Dict[str, HostFabric] = {
            host.name: HostFabric(engine, costs, host.name, ledger=ledger,
                                  tracer=tracer)
            for host in cluster
        }
        names = sorted(self.hosts)
        for i, name_a in enumerate(names):
            for name_b in names[i + 1:]:
                fabric_a = self.hosts[name_a]
                fabric_b = self.hosts[name_b]
                tunnel = TcpTunnel(
                    engine, costs, name_a, name_b,
                    deliver_to_a=fabric_a.receive_from_tunnel,
                    deliver_to_b=fabric_b.receive_from_tunnel,
                    ledger=ledger, tracer=tracer,
                )
                fabric_a.tunnels[name_b] = tunnel
                fabric_b.tunnels[name_a] = tunnel

    def host(self, hostname: str) -> HostFabric:
        if hostname not in self.hosts:
            raise KeyError("no fabric for host %r" % hostname)
        return self.hosts[hostname]

    def switches(self) -> List[SoftwareSwitch]:
        return [fabric.switch for fabric in self.hosts.values()]


#: Destination key on the outbound buffers: a concrete worker id or a
#: special Ethernet address (broadcast, controller, select-group virtual).
_DstKey = Union[int, WorkerAddress]

#: Value types whose decoded form is indistinguishable from the sender's
#: object (immutable scalars that round-trip the codec exactly). Tuples
#: made only of these ride the same-process fast lane: the frame carries
#: the object alongside the authoritative bytes and the receiver skips
#: the decode walk. Containers are excluded — decode materializes fresh
#: mutable lists/dicts (and turns tuples into lists), so aliasing the
#: sender's objects would be observable.
#: (Single source of truth lives in the codec module so the fused
#: serialize+classify fast path can never drift from this set.)
_FASTLANE_TYPES = SCALAR_TYPES


class _TrainAnnotation(list):
    """Frame annotation for a tuple train whose objects the sender's
    batched send path has released: every item is an ``(obj, nbytes)``
    pair whose ``obj`` the transport owns outright (its
    ``source_component`` was blanked at buffering time), so the *first*
    local delivery may adopt the objects by reference instead of
    cloning. ``claimed`` arms after that first delivery — replicated
    frames (broadcast rules, debug mirrors) share one annotation object
    through ``EthernetFrame.with_dst``, and each extra delivery must
    get its own clones exactly as the legacy annotation path does."""

    __slots__ = ("claimed",)

    def __init__(self):
        super().__init__()
        self.claimed = False


class _TrainChunk:
    """A contiguous run of records from one encoded train.

    :func:`repro.streaming.serialize.encode_train` returns one
    length-prefixed buffer for the whole batch; the transport queues
    records ``start..end`` of it as a *single* buffer item instead of
    ``end - start`` per-record slices. A flush whose window is exactly
    one chunk lifts the MULTI payload body straight out of ``data``
    with one slice (see :meth:`TyphoonTransport._emit_batch`); any
    other window expands the chunk back into ``(encoded, obj)`` pairs
    and takes the generic path, byte-identically.

    The parallel arrays (``bounds``/``rlens``/``ests``/``objs``) are
    the whole train's, shared by reference across the train's chunks;
    ``start``/``end`` select this chunk's records. Record ``i`` spans
    ``data[bounds[i] + 4 : bounds[i + 1]]`` (the 4 bytes are its
    ``u32`` length prefix, already in the packets layer's MULTI record
    framing). Chunks never carry trace ids — a stamped batch refuses
    train encoding before any chunk exists."""

    __slots__ = ("data", "bounds", "rlens", "ests", "objs", "all_fast",
                 "stream", "start", "end")

    def __init__(self, data: bytes, bounds: List[int], rlens: List[int],
                 ests: List[int], objs: List[Optional[StreamTuple]],
                 all_fast: bool, stream: Optional[int], start: int,
                 end: int):
        self.data = data
        self.bounds = bounds
        self.rlens = rlens
        self.ests = ests
        self.objs = objs
        self.all_fast = all_fast
        self.stream = stream
        self.start = start
        self.end = end


class _ChunkAnnotation:
    """Frame annotation for a fused single-chunk flush whose records
    are all fast-lane eligible: shares the train's parallel arrays
    instead of materializing per-tuple pairs, so the first local
    delivery adopts the whole window with one list slice. ``est`` is
    the window's precomputed store-sizer charge (an exact integer —
    see ``ests`` in :func:`repro.streaming.serialize.encode_train`).
    ``claimed`` has :class:`_TrainAnnotation` semantics: replicated
    frames share this object, and every delivery after the first
    clones."""

    __slots__ = ("objs", "rlens", "stream", "start", "end", "est",
                 "claimed")

    def __init__(self, objs: List[StreamTuple], rlens: List[int],
                 stream: Optional[int], start: int, end: int, est: int):
        self.objs = objs
        self.rlens = rlens
        self.stream = stream
        self.start = start
        self.end = end
        self.est = est
        self.claimed = False


class _SendBuffer(list):
    """Per-destination outbound batch buffer.

    Items are either one ``(encoded, obj)`` record or a
    :class:`_TrainChunk` covering many, so ``len()`` no longer equals
    the queued tuple count once a chunk is queued. ``tuples`` tracks
    the true count — it drives the batch-size flush trigger, the
    conservation term (:meth:`TyphoonTransport.pending_tuples`) and
    the after-close drop accounting, keeping all three identical to
    the per-record representation."""

    __slots__ = ("tuples",)

    def __init__(self):
        super().__init__()
        self.tuples = 0

    def clear(self) -> None:
        super().clear()
        self.tuples = 0


class TyphoonTransport(Transport):
    """Per-worker northbound + southbound transport libraries."""

    def __init__(
        self,
        engine: Engine,
        costs: CostModel,
        worker_id: int,
        app_id: int,
        host_fabric: HostFabric,
        batch_size: int = 100,
        mtu: int = DEFAULT_MTU,
        ledger: Optional[DeliveryLedger] = None,
        tracer: Optional[Tracer] = None,
    ):
        self.engine = engine
        self.costs = costs
        self.worker_id = worker_id
        self.app_id = app_id
        self.fabric = host_fabric
        self.batch_size = max(1, batch_size)
        self.mtu = mtu
        self.ledger = ledger if ledger is not None else host_fabric.ledger
        self.tracer = tracer if tracer is not None else host_fabric.tracer
        self.address = WorkerAddress(app_id, worker_id)
        self.port_no: Optional[int] = None
        self.deliver: Optional[Callable[[Delivery], bool]] = None
        self.select_addresses: Dict[Tuple[str, int], WorkerAddress] = {}
        # Buffer entries are (encoded, obj) pairs — obj is the original
        # StreamTuple when it qualifies for fast-lane delivery, else
        # None — or whole _TrainChunk runs from the batched senders.
        self._buffers: Dict[WorkerAddress, _SendBuffer] = {}
        self._frag_id = 0
        # Round-robin fallback state for offloaded edges, per edge key —
        # a shared counter would skew the distribution whenever one
        # worker feeds several offloaded edges.
        self._rr_counters: Dict[Tuple, int] = {}
        # Worker ids are a small dense set; interning their WorkerAddress
        # saves a namedtuple construction per (tuple, destination) on the
        # Fig. 8 hot path. Addresses compare by value, so reuse is safe.
        self._addr_cache: Dict[int, WorkerAddress] = {}
        self._enqueue_cost = costs.typhoon_enqueue_per_tuple
        self._pending_recv_cost = 0.0
        self._reassembler = Reassembler(
            on_drop=self._on_reassembly_drop,
            on_discard_data=self._on_reassembly_discard,
        )
        self.closed = False
        self.tuples_sent = 0
        self.serializations = 0
        self.frames_sent = 0
        self.frames_received = 0
        self.dropped_after_close = 0
        # Train telemetry: flushes that took the fused single-slice
        # MULTI path in _emit_batch, and the tuples they carried. The
        # perf bench derives its fast-path fraction and average train
        # length from these.
        self.fused_flushes = 0
        self.fused_tuples = 0
        # Memoized per-record-length cost terms. Record lengths repeat
        # heavily (fixed-shape workload tuples), and each term is the
        # exact float the per-tuple expression would produce — same
        # operations in the same order, so replay is bit-identical.
        # _train_terms: (serialize_per_tuple + rlen * serialize_per_byte)
        #               + typhoon_enqueue_per_tuple   (send, no flush)
        # _recv_terms:  deserialize_per_tuple + rlen * deserialize_per_byte
        self._train_terms: Dict[int, float] = {}
        self._recv_terms: Dict[int, float] = {}

    # -- attachment --------------------------------------------------------

    @property
    def switch(self) -> SoftwareSwitch:
        return self.fabric.switch

    def attach(self) -> int:
        """Create this worker's switch port (PortStatus ADD fires to the
        controller, which installs the Table 3 rules for it)."""
        if self.port_no is not None:
            raise RuntimeError("transport already attached")
        self.port_no = self.switch.add_port(
            "w%d" % self.worker_id, self._on_frame, kind=SwitchPort.WORKER
        )
        return self.port_no

    def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        if self.port_no is not None:
            self.switch.remove_port(self.port_no)
            self.port_no = None
        # Drain outbound buffers and partial reassembly so a retired
        # transport leaves no unaccounted residue behind.
        for buffer in self._buffers.values():
            if buffer:
                self.dropped_after_close += buffer.tuples
                if self.ledger is not None:
                    self.ledger.record_drop(self.app_id, LAYER_TRANSPORT,
                                            R_AFTER_CLOSE, buffer.tuples)
                self._drop_buffered_traces(buffer, R_AFTER_CLOSE)
        self._buffers.clear()
        self._reassembler.drain()

    def _live_tracer(self) -> Optional[Tracer]:
        tracer = self.tracer
        if tracer is not None and tracer.has_active():
            return tracer
        return None

    def _drop_buffered_traces(self, buffer: Sequence,
                              reason: str) -> None:
        """Close spans of sampled tuples dying in an outbound buffer."""
        tracer = self._live_tracer()
        if tracer is None:
            return
        for item in buffer:
            if type(item) is _TrainChunk:
                # Trains never carry trace ids: a stamped batch refuses
                # train encoding before any chunk exists.
                continue
            trace_id = peek_trace_id(item[0])
            if trace_id is not None:
                tracer.finish_drop(trace_id, LAYER_TRANSPORT, reason)

    def _on_reassembly_drop(self, key, reason: str) -> None:
        if self.ledger is None:
            return
        # Keys are ((src_app_id, src_worker_id), frag_id); attribute the
        # lost tuple to the sending application.
        source = key[0]
        scope = source[0] if isinstance(source, tuple) else self.app_id
        self.ledger.record_drop(scope, LAYER_REASSEMBLY, reason)

    def _on_reassembly_discard(self, key, reason: str, data: bytes) -> None:
        # The partial buffer starts at offset 0, so the tuple's fixed
        # header — and with it any embedded trace id — is intact.
        tracer = self._live_tracer()
        if tracer is None:
            return
        trace_id = peek_trace_id(data)
        if trace_id is not None:
            tracer.finish_drop(trace_id, LAYER_REASSEMBLY, reason,
                               branch=self.worker_id)

    def pending_tuples(self) -> int:
        """Tuples sitting in outbound batch buffers (conservation term)."""
        return sum(buffer.tuples for buffer in self._buffers.values())

    @property
    def pending_reassembly(self) -> int:
        """Partially reassembled inbound tuples (conservation term)."""
        return self._reassembler.pending_count

    # -- outbound (northbound -> southbound -> switch) -----------------------

    def _dst_address(self, dst: _DstKey) -> WorkerAddress:
        address = self._addr_cache.get(dst)
        if address is None:
            if isinstance(dst, WorkerAddress):
                return dst
            address = self._addr_cache[dst] = WorkerAddress(self.app_id, dst)
        return address

    def _enqueue(self, address: WorkerAddress, encoded: bytes,
                 obj: Optional[StreamTuple] = None) -> float:
        buffer = self._buffers.get(address)
        if buffer is None:
            buffer = self._buffers[address] = _SendBuffer()
        buffer.append((encoded, obj))
        buffer.tuples += 1
        self.tuples_sent += 1
        ledger = self.ledger
        if ledger is not None:
            ledger.record_sent(self.app_id)
        cost = self._enqueue_cost
        if buffer.tuples >= self.batch_size:
            cost += self._flush_address(address)
        return cost

    def _trace_serialized(self, stream_tuple: StreamTuple,
                          nbytes: int, cost: float) -> None:
        if stream_tuple.trace_id is None:
            return
        tracer = self.tracer
        if tracer is not None:
            tracer.event(stream_tuple.trace_id, H_SERIALIZE, cost=cost,
                         nbytes=nbytes)

    def _fastlane_obj(self,
                      stream_tuple: StreamTuple) -> Optional[StreamTuple]:
        for value in stream_tuple.values:
            if type(value) not in _FASTLANE_TYPES:
                return None
        return stream_tuple

    def send(self, stream_tuple: StreamTuple,
             dst_worker_ids: Sequence[int]) -> float:
        # Hottest method in the data plane (once per tuple emitted):
        # _dst_address / _fastlane_obj / _enqueue / serialize_cost are
        # inlined here. Cost arithmetic mirrors the helper structure
        # exactly (per-destination enqueue+flush summed first, then
        # added) so schedules stay bit-identical.
        if self.closed or not dst_worker_ids:
            return 0.0
        encoded, all_scalar = encode_tuple_scalar(stream_tuple)
        # Serialized once, no matter how many destinations.
        costs = self.costs
        cost = costs.serialize_per_tuple + len(encoded) * costs.serialize_per_byte
        self.serializations += 1
        if stream_tuple.trace_id is not None:
            self._trace_serialized(stream_tuple, len(encoded), cost)
        item = (encoded, stream_tuple if all_scalar else None)
        addr_cache = self._addr_cache
        buffers = self._buffers
        ledger = self.ledger
        app_id = self.app_id
        enqueue_cost = self._enqueue_cost
        batch_size = self.batch_size
        for dst in dst_worker_ids:
            address = addr_cache.get(dst)
            if address is None:
                if isinstance(dst, WorkerAddress):
                    address = addr_cache[dst] = dst
                else:
                    address = addr_cache[dst] = WorkerAddress(app_id, dst)
            buffer = buffers.get(address)
            if buffer is None:
                buffer = buffers[address] = _SendBuffer()
            buffer.append(item)
            buffer.tuples += 1
            self.tuples_sent += 1
            if ledger is not None:
                ledger.record_sent(app_id)
            dcost = enqueue_cost
            if buffer.tuples >= batch_size:
                dcost += self._flush_address(address)
            cost += dcost
        return cost

    def send_many(self, stream_tuples: Sequence[StreamTuple],
                  dst: _DstKey) -> float:
        """Batched :meth:`send`: every tuple goes to the same single
        destination. Exactly equivalent to calling ``send(t, [dst])``
        per tuple and summing the costs — same serialization, same
        per-tuple cost terms in the same accumulation order, same flush
        points — with the per-call setup (address/buffer resolution,
        cost-model reads) hoisted out of the loop. The executor uses it
        when a whole emission batch rides one single-hop edge."""
        if self.closed or not stream_tuples:
            return 0.0
        costs = self.costs
        ser_per_tuple = costs.serialize_per_tuple
        ser_per_byte = costs.serialize_per_byte
        address = self._addr_cache.get(dst)
        if address is None:
            if isinstance(dst, WorkerAddress):
                address = self._addr_cache[dst] = dst
            else:
                address = self._addr_cache[dst] = WorkerAddress(self.app_id,
                                                                dst)
        buffers = self._buffers
        buffer = buffers.get(address)
        if buffer is None:
            buffer = buffers[address] = _SendBuffer()
        # _flush_address clears the list in place (the object is reused
        # across batch windows), so the local alias stays valid.
        append = buffer.append
        enqueue_cost = self._enqueue_cost
        batch_size = self.batch_size
        cost = 0.0
        blen = buffer.tuples
        # Train fast path: encode the whole batch into one contiguous
        # length-prefixed buffer, queued chunk-per-flush-window instead
        # of record-per-tuple. A train encodes only when no tuple is
        # anchored/traced/sequenced (the unadorned hot path), and the
        # per-tuple cost terms below are accumulated in exactly the
        # per-tuple loop's order. Fast-lane objects are released to the
        # transport here — blanking source_component marks them
        # adoptable by the first local receiver (see
        # :class:`_TrainAnnotation`).
        train = encode_train(stream_tuples)
        if train is not None:
            data, bounds, rlens, ests, objs, tstream = train
            all_fast = objs is None
            # Blanking is hoisted out of the cost loop: nothing observes
            # the tuples between per-tuple iterations (frame forwarding
            # is event-scheduled, never inline), so the store order is
            # unobservable. objs None means "all fast — the input run
            # itself"; chunks need their own list because the executor
            # reuses (clears in place) the pending list it passed in.
            if all_fast:
                for obj in stream_tuples:
                    obj.source_component = ""
                objs = list(stream_tuples)
            else:
                for obj in objs:
                    if obj is not None:
                        obj.source_component = ""
            terms = self._train_terms
            term_get = terms.get
            n = len(objs)
            seg = 0
            prev_rlen = -1
            term = 0.0
            # Flush-delimited runs (see send_interleaved): no per-tuple
            # batch-counter bookkeeping, memoized (serialize + enqueue)
            # term refreshed only when the record length changes —
            # identical float expression, same operation order.
            i = 0
            while i < n:
                fi = i + (batch_size - 1 - blen)
                if fi < i:
                    fi = i
                stop = fi if fi < n else n
                for rlen in rlens[i:stop]:
                    if rlen != prev_rlen:
                        term = term_get(rlen)
                        if term is None:
                            term = terms[rlen] = (
                                ser_per_tuple + rlen * ser_per_byte
                                + enqueue_cost)
                        prev_rlen = rlen
                    cost += term
                if fi >= n:
                    blen += n - i
                    break
                tcost = ser_per_tuple + rlens[fi] * ser_per_byte
                end = fi + 1
                append(_TrainChunk(data, bounds, rlens, ests, objs,
                                   all_fast, tstream, seg, end))
                buffer.tuples += end - seg
                seg = end
                dcost = enqueue_cost
                dcost += self._flush_address(address)
                blen = 0
                tcost += dcost
                cost += tcost
                i = end
            if seg < n:
                append(_TrainChunk(data, bounds, rlens, ests, objs,
                                   all_fast, tstream, seg, n))
                buffer.tuples += n - seg
        else:
            for stream_tuple in stream_tuples:
                encoded, all_scalar = encode_tuple_scalar(stream_tuple)
                tcost = ser_per_tuple + len(encoded) * ser_per_byte
                if stream_tuple.trace_id is not None:
                    self._trace_serialized(stream_tuple, len(encoded), tcost)
                append((encoded, stream_tuple if all_scalar else None))
                buffer.tuples += 1
                blen += 1
                dcost = enqueue_cost
                if blen >= batch_size:
                    dcost += self._flush_address(address)
                    blen = 0
                tcost += dcost
                cost += tcost
        sent = len(stream_tuples)
        # Counter/ledger bumps are coalesced: nothing outside this call
        # can observe them before it returns (frame forwarding is
        # event-scheduled, never inline).
        self.tuples_sent += sent
        self.serializations += sent
        if self.ledger is not None:
            self.ledger.record_sent(self.app_id, sent)
        return cost

    def send_interleaved(self, stream_tuples: Sequence[StreamTuple],
                         dst: _DstKey, pre_cost: float,
                         cost: float, uniform: bool = False) -> float:
        """Batched replay of the executor's per-tuple spout dispatch:
        ``for t: cost += pre_cost; cost += send(t, [dst])`` with the
        identical float-addition sequence on the running ``cost`` (the
        per-tuple send total is assembled serialize-then-enqueue exactly
        as :meth:`send` does). One call frame per emission batch instead
        of two per tuple.

        ``uniform=True`` is the caller's pledge that the whole batch
        came off one collector's fast-sink lane — one shared
        ``(stream, source_worker)`` envelope, no anchor/trace/seq
        stamps — unlocking :func:`encode_train_uniform`'s tightened
        single-pass encode. Bytes and costs are unchanged either way."""
        if not stream_tuples:
            return cost
        if self.closed:
            # send() would return 0.0 per tuple; += 0.0 is a bit-exact
            # no-op on a finite cost, so only pre_cost remains.
            for _ in stream_tuples:
                cost += pre_cost
            return cost
        costs = self.costs
        ser_per_tuple = costs.serialize_per_tuple
        ser_per_byte = costs.serialize_per_byte
        address = self._addr_cache.get(dst)
        if address is None:
            if isinstance(dst, WorkerAddress):
                address = self._addr_cache[dst] = dst
            else:
                address = self._addr_cache[dst] = WorkerAddress(self.app_id,
                                                                dst)
        buffers = self._buffers
        buffer = buffers.get(address)
        if buffer is None:
            buffer = buffers[address] = _SendBuffer()
        # _flush_address clears the list in place, so the alias holds
        # and the tracked length resets to zero at each flush point.
        append = buffer.append
        enqueue_cost = self._enqueue_cost
        batch_size = self.batch_size
        blen = buffer.tuples
        # Train fast path (see :meth:`send_many`): one contiguous
        # whole-batch encode queued chunk-per-flush-window, identical
        # per-tuple cost accumulation, fast-lane objects released to
        # the transport.
        if uniform:
            first = stream_tuples[0]
            train = encode_train_uniform(stream_tuples, first.stream,
                                         first.source_worker)
        else:
            train = encode_train(stream_tuples)
        if train is not None:
            data, bounds, rlens, ests, objs, tstream = train
            all_fast = objs is None
            # Blanking hoisted out of the cost loop (see send_many);
            # chunks get their own objs list because the executor
            # clears the pending list it passed in.
            if all_fast:
                for obj in stream_tuples:
                    obj.source_component = ""
                objs = list(stream_tuples)
            else:
                for obj in objs:
                    if obj is not None:
                        obj.source_component = ""
            terms = self._train_terms
            term_get = terms.get
            n = len(objs)
            seg = 0
            prev_rlen = -1
            term = 0.0
            # Flush positions are arithmetic (every batch_size-th
            # tuple), so the per-tuple loop splits into flush-delimited
            # runs: inside a run there is no batch-counter bookkeeping
            # and no branch — just the replayed cost additions, with
            # the memoized (serialize + enqueue) term refreshed only
            # when the record length changes (identical float
            # expression, same operation order as the per-tuple walk).
            i = 0
            while i < n:
                # A shrunken batch_size (control tuple) can leave the
                # buffer over-full; the first tuple then flushes at
                # once, as in the per-tuple walk.
                fi = i + (batch_size - 1 - blen)
                if fi < i:
                    fi = i
                stop = fi if fi < n else n
                for rlen in rlens[i:stop]:
                    cost += pre_cost
                    if rlen != prev_rlen:
                        term = term_get(rlen)
                        if term is None:
                            term = terms[rlen] = (
                                ser_per_tuple + rlen * ser_per_byte
                                + enqueue_cost)
                        prev_rlen = rlen
                    cost += term
                if fi >= n:
                    blen += n - i
                    break
                # Tuple fi fills the batch window: queue the chunk so
                # far and flush, exactly as the per-tuple walk does.
                cost += pre_cost
                tcost = ser_per_tuple + rlens[fi] * ser_per_byte
                end = fi + 1
                append(_TrainChunk(data, bounds, rlens, ests, objs,
                                   all_fast, tstream, seg, end))
                buffer.tuples += end - seg
                seg = end
                dcost = enqueue_cost
                dcost += self._flush_address(address)
                blen = 0
                tcost += dcost
                cost += tcost
                i = end
            if seg < n:
                append(_TrainChunk(data, bounds, rlens, ests, objs,
                                   all_fast, tstream, seg, n))
                buffer.tuples += n - seg
        else:
            for stream_tuple in stream_tuples:
                cost += pre_cost
                encoded, all_scalar = encode_tuple_scalar(stream_tuple)
                tcost = ser_per_tuple + len(encoded) * ser_per_byte
                if stream_tuple.trace_id is not None:
                    self._trace_serialized(stream_tuple, len(encoded), tcost)
                append((encoded, stream_tuple if all_scalar else None))
                buffer.tuples += 1
                blen += 1
                dcost = enqueue_cost
                if blen >= batch_size:
                    dcost += self._flush_address(address)
                    blen = 0
                tcost += dcost
                cost += tcost
        sent = len(stream_tuples)
        self.tuples_sent += sent
        self.serializations += sent
        if self.ledger is not None:
            self.ledger.record_sent(self.app_id, sent)
        return cost

    def send_broadcast(self, stream_tuple: StreamTuple,
                       dst_worker_ids: Sequence[int]) -> float:
        """One packet with the broadcast destination; the switch replicates
        to as many destinations as the one-to-many rule lists (§3.3.1)."""
        if self.closed:
            return 0.0
        encoded, all_scalar = encode_tuple_scalar(stream_tuple)
        cost = serialize_cost(self.costs, len(encoded))
        self.serializations += 1
        self._trace_serialized(stream_tuple, len(encoded), cost)
        cost += self._enqueue(BROADCAST, encoded,
                              stream_tuple if all_scalar else None)
        return cost

    def send_broadcast_interleaved(self, stream_tuples: Sequence[StreamTuple],
                                   dst_worker_ids: Sequence[int],
                                   pre_cost: float, cost: float,
                                   uniform: bool = False) -> float:
        """Batched :meth:`send_broadcast` with the executor's per-tuple
        ``cost += pre_cost`` interleaving replayed bit-exactly (the
        per-tuple broadcast total is assembled serialize-then-enqueue
        exactly as :meth:`send_broadcast` does). Each tuple is still one
        broadcast record — the switch's one-to-many rule replicates the
        frames — but the whole train is encoded in a single pass.
        ``uniform=True`` carries the same fast-sink pledge as in
        :meth:`send_interleaved`."""
        if not stream_tuples:
            return cost
        if self.closed:
            # send_broadcast() would return 0.0 per tuple; += 0.0 is a
            # bit-exact no-op on a finite cost, so only pre_cost remains.
            for _ in stream_tuples:
                cost += pre_cost
            return cost
        if uniform:
            first = stream_tuples[0]
            train = encode_train_uniform(stream_tuples, first.stream,
                                         first.source_worker)
        else:
            train = encode_train(stream_tuples)
        if train is None:
            # Anchored/traced/sequenced batch: replay per tuple.
            for stream_tuple in stream_tuples:
                cost += pre_cost
                cost += self.send_broadcast(stream_tuple, dst_worker_ids)
            return cost
        costs = self.costs
        ser_per_tuple = costs.serialize_per_tuple
        ser_per_byte = costs.serialize_per_byte
        buffers = self._buffers
        buffer = buffers.get(BROADCAST)
        if buffer is None:
            buffer = buffers[BROADCAST] = _SendBuffer()
        append = buffer.append
        enqueue_cost = self._enqueue_cost
        batch_size = self.batch_size
        blen = buffer.tuples
        data, bounds, rlens, ests, objs, tstream = train
        all_fast = objs is None
        # Blanking hoisted out of the cost loop (see send_many); chunks
        # get their own objs list because the executor clears the
        # pending list it passed in.
        if all_fast:
            for obj in stream_tuples:
                obj.source_component = ""
            objs = list(stream_tuples)
        else:
            for obj in objs:
                if obj is not None:
                    obj.source_component = ""
        terms = self._train_terms
        term_get = terms.get
        n = len(objs)
        seg = 0
        prev_rlen = -1
        term = 0.0
        # Flush-delimited runs (see send_interleaved): no per-tuple
        # batch-counter bookkeeping, memoized (serialize + enqueue)
        # term refreshed only when the record length changes —
        # identical float expression, same operation order.
        i = 0
        while i < n:
            fi = i + (batch_size - 1 - blen)
            if fi < i:
                fi = i
            stop = fi if fi < n else n
            for rlen in rlens[i:stop]:
                cost += pre_cost
                if rlen != prev_rlen:
                    term = term_get(rlen)
                    if term is None:
                        term = terms[rlen] = (
                            ser_per_tuple + rlen * ser_per_byte
                            + enqueue_cost)
                    prev_rlen = rlen
                cost += term
            if fi >= n:
                blen += n - i
                break
            cost += pre_cost
            tcost = ser_per_tuple + rlens[fi] * ser_per_byte
            end = fi + 1
            append(_TrainChunk(data, bounds, rlens, ests, objs,
                               all_fast, tstream, seg, end))
            buffer.tuples += end - seg
            seg = end
            dcost = enqueue_cost
            dcost += self._flush_address(BROADCAST)
            blen = 0
            tcost += dcost
            cost += tcost
            i = end
        if seg < n:
            append(_TrainChunk(data, bounds, rlens, ests, objs,
                               all_fast, tstream, seg, n))
            buffer.tuples += n - seg
        sent = n
        self.tuples_sent += sent
        self.serializations += sent
        if self.ledger is not None:
            self.ledger.record_sent(self.app_id, sent)
        return cost

    def send_offloaded(self, stream_tuple: StreamTuple, edge_key,
                       dst_worker_ids: Sequence[int]) -> float:
        """SDN load balancing: emit to the edge's virtual select address;
        the switch's select group rewrites the destination (§4)."""
        if self.closed:
            return 0.0
        address = self.select_addresses.get(edge_key)
        if address is None:
            if not dst_worker_ids:
                return 0.0
            counter = self._rr_counters.get(edge_key, 0)
            self._rr_counters[edge_key] = counter + 1
            index = counter % len(dst_worker_ids)
            return self.send(stream_tuple, [dst_worker_ids[index]])
        encoded = encode_tuple(stream_tuple)
        cost = serialize_cost(self.costs, len(encoded))
        self.serializations += 1
        self._trace_serialized(stream_tuple, len(encoded), cost)
        cost += self._enqueue(address, encoded,
                              self._fastlane_obj(stream_tuple))
        return cost

    def send_to_controller(self, stream_tuple: StreamTuple) -> float:
        """Framework-layer reply path (METRIC_RESP): flushed immediately."""
        if self.closed:
            return 0.0
        encoded = encode_tuple(stream_tuple)
        cost = serialize_cost(self.costs, len(encoded))
        self.serializations += 1
        self._trace_serialized(stream_tuple, len(encoded), cost)
        cost += self._enqueue(CONTROLLER_ADDRESS, encoded)
        cost += self._flush_address(CONTROLLER_ADDRESS)
        return cost

    def flush(self) -> float:
        """Flush every non-empty destination buffer in one coalesced
        pass: the closed/unattached checks run once per batch window
        (not once per destination), empty buffers are skipped without a
        dict re-walk, and each batch does a single envelope pass in
        :meth:`_emit_batch`. Frame emission order (dict insertion order
        of the destinations) is unchanged, so schedules stay identical.
        """
        if self.closed:
            cost = 0.0
            for address in list(self._buffers):
                cost += self._flush_address(address)
            return cost
        if self.port_no is None:
            # Live but not (yet) attached to a switch port: hold the
            # batches — the periodic flusher retries after attach. Only
            # a closed transport may discard.
            return 0.0
        cost = 0.0
        for address, buffer in self._buffers.items():
            if buffer:
                cost += self._emit_batch(address, buffer)
                buffer.clear()
        return cost

    def _flush_address(self, address: WorkerAddress) -> float:
        buffer = self._buffers.get(address)
        if not buffer:
            return 0.0
        if self.closed:
            self._buffers[address] = _SendBuffer()
            self.dropped_after_close += buffer.tuples
            if self.ledger is not None:
                self.ledger.record_drop(self.app_id, LAYER_TRANSPORT,
                                        R_AFTER_CLOSE, buffer.tuples)
            self._drop_buffered_traces(buffer, R_AFTER_CLOSE)
            return 0.0
        if self.port_no is None:
            # Hold the batch until attach (see :meth:`flush`).
            return 0.0
        cost = self._emit_batch(address, buffer)
        buffer.clear()
        return cost

    def _emit_batch(self, address: WorkerAddress,
                    buffer: "_SendBuffer") -> float:
        """One envelope pass for one destination's batch: trace
        checkpoints, multiplex/segment into payloads, frame and inject.
        The caller clears the buffer afterwards (the list object is
        reused across batch windows — no per-flush reallocation).

        Fused fast path: when the window is exactly one train chunk
        whose records fit a single MULTI payload — the steady state of
        a batched emitter — the payload body is one slice of the
        train's already-prefixed bytes (no per-record re-join),
        byte-identical to :func:`pack_tuples_spans` over the expanded
        records, and the frame is built and injected directly."""
        tracer = self._live_tracer()
        costs = self.costs
        per_packet = costs.packetize_per_packet
        per_byte = costs.packetize_per_byte
        ring_op = costs.ring_op_per_packet
        if tracer is None and len(buffer) == 1 \
                and type(buffer[0]) is _TrainChunk and buffer[0].all_fast:
            chunk = buffer[0]
            bounds = chunk.bounds
            start = chunk.start
            end = chunk.end
            lo = bounds[start]
            hi = bounds[end]
            if 3 + (hi - lo) <= self.mtu:   # MULTI head is 3 bytes
                self.fused_flushes += 1
                self.fused_tuples += end - start
                payload = _MULTI_HEAD.pack(KIND_MULTI, end - start) \
                    + chunk.data[lo:hi]
                cost = costs.jni_call_overhead
                cost += per_packet + len(payload) * per_byte + ring_op
                ests = chunk.ests
                annotation = _ChunkAnnotation(
                    chunk.objs, chunk.rlens, chunk.stream, start, end,
                    ests[end] - ests[start])
                self.frames_sent += 1
                self.switch.inject(self.port_no, EthernetFrame(
                    dst=address, src=self.address,
                    ethertype=TYPHOON_ETHERTYPE,
                    payload=payload, tuples=annotation))
                return cost
        # Generic path: expand any train chunks back into per-record
        # (encoded, obj) pairs — byte-identical slices of the train —
        # and run the full multiplex/segment machinery.
        items: List[Tuple[bytes, Optional[StreamTuple]]] = []
        for item in buffer:
            if type(item) is _TrainChunk:
                data = item.data
                bounds = item.bounds
                objs = item.objs
                for j in range(item.start, item.end):
                    items.append((data[bounds[j] + 4:bounds[j + 1]],
                                  objs[j]))
            else:
                items.append(item)
        if tracer is not None:
            # The segment since each tuple's serialize checkpoint is the
            # time it sat in this batch buffer waiting for the flush.
            branch = address_branch(address)
            for encoded, _obj in items:
                trace_id = peek_trace_id(encoded)
                if trace_id is not None:
                    tracer.event(trace_id, H_BATCH, branch=branch,
                                 batch=len(items))
        records = [item[0] for item in items]
        payloads, self._frag_id, spans = pack_tuples_spans(
            records, self.mtu, self._frag_id)
        # One JNI crossing per batch handed to the southbound library.
        cost = costs.jni_call_overhead
        src_address = self.address
        frames: List[EthernetFrame] = []
        for payload, span in zip(payloads, spans):
            cost += per_packet + len(payload) * per_byte + ring_op
            annotation = None
            if span is not None:
                start, end = span
                annotation = _TrainAnnotation()
                for j in range(start, end):
                    obj = items[j][1]
                    if obj is None:
                        annotation = None
                        break
                    annotation.append((obj, len(records[j])))
            frames.append(EthernetFrame(dst=address, src=src_address,
                                        ethertype=TYPHOON_ETHERTYPE,
                                        payload=payload, tuples=annotation))
        self.frames_sent += len(frames)
        # The whole flush rides one switch call: the train fast path
        # classifies the shared header once and replays the per-frame
        # busy-server arithmetic (identical schedule), falling back to
        # per-frame inject whenever anything non-trivial is armed.
        if len(frames) == 1:
            self.switch.inject(self.port_no, frames[0])
        elif frames:
            self.switch.inject_train(self.port_no, frames)
        return cost

    def set_batch_size(self, batch_size: int) -> None:
        self.batch_size = max(1, int(batch_size))

    # -- inbound (switch -> southbound -> northbound) ---------------------------

    def _frame_scope(self, frame: EthernetFrame) -> int:
        """Application a frame's tuples belong to. Control frames carry
        the controller/broadcast pseudo-app in ``src``; attribute those
        to the destination's application instead."""
        if frame.src.is_controller or frame.src.is_broadcast:
            return frame.dst.app_id
        return frame.src.app_id

    def _on_frame(self, frame: EthernetFrame, _tun_dst: Optional[str]) -> None:
        if self.closed or self.deliver is None:
            if self.ledger is not None:
                self.ledger.record_frame_drop(LAYER_TRANSPORT,
                                              R_CLOSED_PORT, frame)
            tracer = self._live_tracer()
            if tracer is not None:
                tracer.frame_drop(frame, LAYER_TRANSPORT, R_CLOSED_PORT)
            return
        self.frames_received += 1
        costs = self.costs
        cost = (costs.ring_op_per_packet
                + costs.depacketize_per_packet
                + len(frame) * costs.depacketize_per_byte
                + costs.jni_call_overhead)
        annotated = frame.tuples
        if annotated is not None and self._live_tracer() is None:
            # Same-process fast lane: the sender attached the original
            # tuples (all-scalar values, so a decode would reproduce them
            # exactly); reconstruct deliveries without walking the bytes.
            # Costs are charged from the authoritative encoded lengths,
            # term for term as the decode path would.
            per_tuple = costs.deserialize_per_tuple
            per_byte = costs.deserialize_per_byte
            if type(annotated) is _ChunkAnnotation:
                start = annotated.start
                end = annotated.end
                objs = annotated.objs
                if not annotated.claimed:
                    # First local delivery of a fused train window:
                    # adopt the sender's objects with one list slice —
                    # the batched send path blanked every
                    # source_component, so each object *is* what the
                    # clone below would have built.
                    annotated.claimed = True
                    tuples = objs[start:end]
                else:
                    # Replicated frame (broadcast rule, debug mirror):
                    # clone field-by-field exactly as the legacy
                    # annotation path does.
                    new = StreamTuple.__new__
                    tuples = []
                    append = tuples.append
                    for j in range(start, end):
                        src_tuple = objs[j]
                        out = new(StreamTuple)
                        out.values = src_tuple.values
                        out.stream = src_tuple.stream
                        out.source_component = ""
                        out.source_worker = src_tuple.source_worker
                        out.anchor = src_tuple.anchor
                        out.trace_id = src_tuple.trace_id
                        out.seq = src_tuple.seq
                        append(out)
                # Memoized deserialize terms: identical float
                # expression per record length, added in record order,
                # so the accumulated cost is bit-identical to the
                # per-tuple walk. The store-sizer estimate was
                # precomputed (exact integer arithmetic) at encode
                # time.
                terms = self._recv_terms
                term_get = terms.get
                prev_rlen = -1
                term = 0.0
                for rlen in annotated.rlens[start:end]:
                    if rlen != prev_rlen:
                        term = term_get(rlen)
                        if term is None:
                            term = terms[rlen] = per_tuple + rlen * per_byte
                        prev_rlen = rlen
                    cost += term
                est = annotated.est
                cost += self._pending_recv_cost
                self._pending_recv_cost = 0.0
                accepted = self.deliver(Delivery(tuples=tuples, cost=cost,
                                                 nbytes=est,
                                                 stream=annotated.stream))
                if self.ledger is not None:
                    scope = self._frame_scope(frame)
                    if accepted:
                        self.ledger.record_delivered(scope, len(tuples))
                    else:
                        self.ledger.record_drop(scope, LAYER_TRANSPORT,
                                                R_DELIVER_REJECTED,
                                                len(tuples))
                return
            tuples = []
            append = tuples.append
            # The store's OOM sizer (delivery_bytes) is prepaid here:
            # fast-lane values are guaranteed *exact* scalar types, so
            # the exact-type size checks below reproduce the sizer's
            # isinstance-based estimate identically, and the walk rides
            # the clone/adopt loop instead of a second pass per store op.
            est = 0
            if type(annotated) is _TrainAnnotation and not annotated.claimed:
                # First local delivery of a released train: adopt the
                # sender's objects by reference — the batched send path
                # already blanked source_component, so each object *is*
                # what the clone below would have built. Items buffered
                # by a non-batched send (mixed buffer) still carry their
                # component name and get a real clone.
                annotated.claimed = True
                new = StreamTuple.__new__
                for src_tuple, nbytes in annotated:
                    cost += per_tuple + nbytes * per_byte
                    if src_tuple.source_component:
                        out = new(StreamTuple)
                        values = src_tuple.values
                        out.values = values
                        out.stream = src_tuple.stream
                        out.source_component = ""
                        out.source_worker = src_tuple.source_worker
                        out.anchor = src_tuple.anchor
                        out.trace_id = src_tuple.trace_id
                        out.seq = src_tuple.seq
                        append(out)
                    else:
                        values = src_tuple.values
                        append(src_tuple)
                    est += 80
                    for value in values:
                        kind = type(value)
                        if kind is str or kind is bytes:
                            est += len(value)
                        else:
                            est += 8
            else:
                new = StreamTuple.__new__
                for src_tuple, nbytes in annotated:
                    cost += per_tuple + nbytes * per_byte
                    # Field-by-field clone via __new__ (hot path):
                    # matches what decode_tuple would build —
                    # source_component is reset to "", everything else
                    # carried over.
                    out = new(StreamTuple)
                    values = src_tuple.values
                    out.values = values
                    out.stream = src_tuple.stream
                    out.source_component = ""
                    out.source_worker = src_tuple.source_worker
                    out.anchor = src_tuple.anchor
                    out.trace_id = src_tuple.trace_id
                    out.seq = src_tuple.seq
                    append(out)
                    est += 80
                    for value in values:
                        kind = type(value)
                        if kind is str or kind is bytes:
                            est += len(value)
                        else:
                            est += 8
            cost += self._pending_recv_cost
            self._pending_recv_cost = 0.0
            accepted = self.deliver(Delivery(tuples=tuples, cost=cost,
                                             nbytes=est))
            if self.ledger is not None:
                scope = self._frame_scope(frame)
                if accepted:
                    self.ledger.record_delivered(scope, len(tuples))
                else:
                    self.ledger.record_drop(scope, LAYER_TRANSPORT,
                                            R_DELIVER_REJECTED, len(tuples))
            return
        decoded = unpack_payload(frame.payload)
        records: List[bytes]
        reassembled = False
        if isinstance(decoded, Fragment):
            # Key by (app, worker): same-numbered workers of different
            # applications must never share a reassembly stream.
            source = (frame.src.app_id, frame.src.worker_id)
            complete = self._reassembler.feed(source, decoded)
            if complete is None:
                # Partial tuple: bank the cost against the next delivery.
                self._pending_recv_cost += cost
                return
            records = [complete]
            reassembled = True
        else:
            records = decoded
        tuples = []
        tracer = self._live_tracer()
        for data in records:
            stream_tuple = decode_tuple(data)
            tuple_cost = deserialize_cost(self.costs, len(data))
            cost += tuple_cost
            if tracer is not None and stream_tuple.trace_id is not None:
                tracer.event(stream_tuple.trace_id, H_WIRE,
                             branch=self.worker_id)
                if reassembled:
                    tracer.event(stream_tuple.trace_id, H_REASSEMBLY,
                                 branch=self.worker_id)
                tracer.event(stream_tuple.trace_id, H_DESERIALIZE,
                             branch=self.worker_id, cost=tuple_cost,
                             nbytes=len(data))
            tuples.append(stream_tuple)
        cost += self._pending_recv_cost
        self._pending_recv_cost = 0.0
        accepted = self.deliver(Delivery(tuples=tuples, cost=cost))
        if self.ledger is not None:
            scope = self._frame_scope(frame)
            if accepted:
                self.ledger.record_delivered(scope, len(tuples))
            else:
                self.ledger.record_drop(scope, LAYER_TRANSPORT,
                                        R_DELIVER_REJECTED, len(tuples))
        if not accepted and tracer is not None:
            for stream_tuple in tuples:
                if stream_tuple.trace_id is not None:
                    tracer.finish_drop(stream_tuple.trace_id, LAYER_TRANSPORT,
                                       R_DELIVER_REJECTED,
                                       branch=self.worker_id)
